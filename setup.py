"""Package metadata for the photonic-rails reproduction.

Installs the ``repro`` library from ``src/`` and the ``repro-sim`` console
script (see :mod:`repro.experiments.cli`).  Kept as a plain ``setup.py`` so
``pip install -e . --no-use-pep517`` works in offline environments without
the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro-photonic-rails",
    version="0.2.0",
    description=(
        "Reproduction of photonic rail-optimized fabrics for ML training: "
        "topology builders, Opus control plane, DAG simulator, and a "
        "fabric-agnostic experiment layer"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["networkx", "numpy"],
    extras_require={
        # CI installs `.[test]` so this file stays the single source of
        # truth for what the test jobs need beyond the library itself.
        "test": ["pytest"],
    },
    entry_points={
        "console_scripts": [
            "repro-sim=repro.experiments.cli:main",
        ]
    },
)
