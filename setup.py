"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works in offline environments without the
``wheel`` package (editable installs then go through ``setup.py develop``).
"""

from setuptools import setup

setup()
