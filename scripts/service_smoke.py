#!/usr/bin/env python
"""End-to-end HTTP smoke test for ``repro-sim serve`` (the CI service-e2e job).

Boots the real server as a subprocess and drives it over real HTTP:

1. **Concurrent clients.**  Three clients submit the same small sweep at
   once; all three jobs complete and return identical results.
2. **CLI parity.**  The same sweep run via one-shot ``repro-sim sweep`` is
   bit-identical (config hashes, iteration times, metrics) to the
   HTTP-served results.
3. **Persistent store.**  The server is torn down and a *fresh* server is
   booted on the same store directory; resubmitting the sweep is answered
   100% from the content-addressed result store — 0 simulations, asserted
   via the ``/metrics`` cache counters — and the results are bit-identical.
4. **Quarantine.**  Malformed JSON and a capability-violating spec come
   back as structured 400s, land in the quarantine log with their codes,
   and the queue stays healthy (a good job still completes afterwards).

Server logs are written under ``--log-dir`` so CI can upload them as an
artifact when the smoke fails.  Exits non-zero on the first failure.
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

from repro.experiments.cli import main as cli_main
from repro.service import ServiceClient, ServiceError, wait_until_healthy

#: The sweep every phase submits: 2 grid points, cheap on CI.
SPEC = {
    "scenario": {
        "workload": "tiny",
        "cluster": "perlmutter:2",
        "backend": "electrical",
        "iterations": 2,
    },
    "grid": {"network_mode": ["analytic", "flow"]},
}

#: ``repro-sim sweep`` flags equivalent to SPEC (the parity oracle).
SWEEP_ARGS = [
    "sweep",
    "--backend", "electrical",
    "--workload", "tiny",
    "--cluster", "perlmutter:2",
    "--iterations", "2",
    "--grid", "network_mode=analytic,flow",
    "--executor", "serial",
]

BAD_SPECS = [
    ("malformed-json", '{"scenario": {'),
    (
        "capability-violation",
        json.dumps(
            {
                "scenario": {
                    "workload": "tiny",
                    "cluster": "perlmutter:2",
                    "backend": "electrical",
                    "knobs": {
                        "faults": [
                            {"time": 0.01, "kind": "link_fail", "src": "*"}
                        ]
                    },
                }
            }
        ),
    ),
]


class Server:
    """One ``repro-sim serve`` subprocess with captured logs."""

    def __init__(self, name: str, store: Path, log_dir: Path) -> None:
        self.name = name
        self.log_path = log_dir / f"{name}.log"
        self._log = self.log_path.open("w")
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.cli", "serve",
                "--port", "0",
                "--store", str(store),
                "--workers", "2",
                "--job-workers", "4",
            ],
            stdout=subprocess.PIPE,
            stderr=self._log,
            text=True,
        )
        ready: list = []

        def _read_ready() -> None:
            ready.append(self.process.stdout.readline())

        reader = threading.Thread(target=_read_ready, daemon=True)
        reader.start()
        reader.join(timeout=60.0)
        if not ready or not ready[0].strip():
            self.stop()
            raise RuntimeError(f"{name}: no ready line within 60s")
        self.url = json.loads(ready[0])["serving"]
        self.client = wait_until_healthy(self.url, timeout=30.0)
        print(f"[smoke] {name} ready at {self.url}")

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=20.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        self._log.close()


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)
    print(f"[smoke] ok: {message}")


def submit_and_wait(url: str) -> dict:
    client = ServiceClient(url)
    job = client.submit(SPEC)
    return client.wait(job["id"], timeout=240.0)


def result_fingerprint(results: list) -> list:
    """The fields that must be bit-identical across servings."""
    return [
        (
            row["config_hash"],
            row["iteration_times"],
            row["reconfigurations"],
            row["metrics"],
        )
        for row in results
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-dir",
        type=Path,
        default=Path("service-logs"),
        help="directory for server logs (uploaded by CI on failure)",
    )
    args = parser.parse_args()
    args.log_dir.mkdir(parents=True, exist_ok=True)
    store = args.log_dir / "store"

    server = Server("server-a", store, args.log_dir)
    try:
        # Phase 1: three concurrent clients, one sweep. ------------------- #
        jobs: list = [None] * 3
        errors: list = []

        def _client(slot: int) -> None:
            try:
                jobs[slot] = submit_and_wait(server.url)
            except Exception as exc:  # noqa: BLE001 — report, don't hang
                errors.append(f"client {slot}: {exc}")

        threads = [
            threading.Thread(target=_client, args=(slot,)) for slot in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        check(not errors, f"3 concurrent clients completed (errors: {errors})")
        check(all(job and job["state"] == "done" for job in jobs), "all jobs done")
        fingerprints = [result_fingerprint(job["results"]) for job in jobs]
        check(
            fingerprints[0] == fingerprints[1] == fingerprints[2],
            "concurrent clients got identical results",
        )
        # Concurrent identical jobs may race past the memo cache (there is
        # no in-flight dedup), but every returned point must be accounted
        # for as either simulated or a cache hit.
        metrics = server.client.metrics()
        scenarios = metrics["scenarios"]
        total_points = 3 * len(SPEC["grid"]["network_mode"])
        check(
            scenarios["simulated"] + scenarios["cache_hits_total"] == total_points
            and scenarios["simulated"] >= len(SPEC["grid"]["network_mode"]),
            f"all {total_points} points accounted for "
            f"(simulated={scenarios['simulated']}, "
            f"hits={scenarios['cache_hits_total']})",
        )

        # Phase 2: bit-identical to the one-shot CLI sweep. --------------- #
        sweep_out = args.log_dir / "cli-sweep.json"
        code = cli_main(SWEEP_ARGS + ["--output", str(sweep_out)])
        check(code == 0, "repro-sim sweep succeeded")
        cli_results = json.loads(sweep_out.read_text())
        check(
            result_fingerprint(cli_results) == fingerprints[0],
            "HTTP results bit-identical to `repro-sim sweep`",
        )

        # Phase 3: /results/<hash> serves every stored point. ------------- #
        for row in cli_results:
            envelope = server.client.result(row["config_hash"])
            check(
                envelope["result"]["iteration_times"] == row["iteration_times"],
                f"GET /results/{row['config_hash'][:12]}... matches",
            )
    finally:
        server.stop()
    print(f"[smoke] server-a stopped (log: {server.log_path})")

    # Phase 4: fresh server, same store — answered 100% from disk. -------- #
    server_b = Server("server-b", store, args.log_dir)
    try:
        job = submit_and_wait(server_b.url)
        check(job["state"] == "done", "resubmission on fresh server done")
        metrics = server_b.client.metrics()
        check(
            metrics["scenarios"]["simulated"] == 0,
            "resubmission ran 0 simulations",
        )
        check(
            metrics["scenarios"]["cache_hits_store"] == len(job["results"]),
            f"all {len(job['results'])} points served from the persistent "
            "result store",
        )
        check(
            result_fingerprint(job["results"]) == result_fingerprint(
                json.loads((args.log_dir / "cli-sweep.json").read_text())
            ),
            "store-served results bit-identical to fresh simulation",
        )

        # Phase 5: quarantine — structured rejections, healthy queue. ----- #
        for expected_code, body in BAD_SPECS:
            try:
                request = urllib.request.Request(
                    server_b.url + "/sweeps",
                    data=body.encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                urllib.request.urlopen(request, timeout=30.0)
                check(False, f"bad spec ({expected_code}) was not rejected")
            except urllib.error.HTTPError as exc:
                payload = json.loads(exc.read().decode("utf-8"))
                check(
                    exc.code == 400 and payload["error"] == expected_code,
                    f"bad spec rejected with structured code {expected_code}",
                )
        quarantine = server_b.client.quarantine()
        check(
            all(quarantine["by_code"].get(code, 0) >= 1 for code, _ in BAD_SPECS),
            f"quarantine log tracked rejection reasons {quarantine['by_code']}",
        )
        job = submit_and_wait(server_b.url)
        check(
            job["state"] == "done",
            "queue healthy after rejections (good job still completes)",
        )
    finally:
        server_b.stop()
    print(f"[smoke] server-b stopped (log: {server_b.log_path})")
    print("[smoke] PASS")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (AssertionError, ServiceError, RuntimeError) as exc:
        print(f"[smoke] FAIL: {exc}", file=sys.stderr)
        sys.exit(1)
