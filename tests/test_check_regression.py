"""Unit tests for the CI perf-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest


@pytest.fixture(scope="module")
def gate():
    path = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_lines(flow_wall, analytic_wall=0.01, legacy=0.08, shipped=0.008):
    return [
        "BENCH " + json.dumps({
            "bench": "flow_mode", "fabric": "electrical", "gpus": 8,
            "network_mode": "analytic", "wall_time_s": analytic_wall,
            "steady_iteration_s": 0.125, "iterations": 3,
        }),
        "unrelated output line",
        "BENCH " + json.dumps({
            "bench": "flow_mode", "fabric": "electrical", "gpus": 8,
            "network_mode": "flow", "wall_time_s": flow_wall,
            "steady_iteration_s": 0.125, "iterations": 3,
        }),
        "BENCH " + json.dumps({
            "bench": "max_min_fair", "flows": 500,
            "legacy_s": legacy, "shipped_s": shipped,
            "speedup": round(legacy / shipped, 3),
        }),
    ]


def _distilled(gate, flow_wall, **kwargs):
    return gate.distill(gate.parse_bench_lines(_bench_lines(flow_wall, **kwargs)))


def test_distill_produces_machine_normalized_ratios(gate):
    ratios, steady = _distilled(gate, flow_wall=0.025)
    assert ratios["flow_mode:electrical:8"] == pytest.approx(2.5)
    assert ratios["max_min_fair:500"] == pytest.approx(0.1)
    assert steady["flow_mode:electrical:8:flow"] == pytest.approx(0.125)


def test_gate_passes_within_tolerance(gate):
    ratios, steady = _distilled(gate, flow_wall=0.025)
    baseline = {
        "ratios": dict(ratios),
        "steady": dict(steady),
    }
    assert gate.check(ratios, steady, baseline, tolerance=1.3) == []


def test_gate_fails_on_a_2x_flow_slowdown(gate):
    base_ratios, base_steady = _distilled(gate, flow_wall=0.025)
    baseline = {"ratios": dict(base_ratios), "steady": dict(base_steady)}
    slow_ratios, slow_steady = _distilled(gate, flow_wall=0.050)  # 2x slower
    failures = gate.check(slow_ratios, slow_steady, baseline, tolerance=1.3)
    assert any("flow_mode:electrical:8" in failure for failure in failures)


def test_gate_fails_on_allocator_regression_only_when_ratio_moves(gate):
    base_ratios, base_steady = _distilled(gate, flow_wall=0.025)
    baseline = {"ratios": dict(base_ratios), "steady": dict(base_steady)}
    # The whole machine being 3x slower moves both sides of each division:
    # ratios are unchanged and the gate stays green.
    slow_machine, slow_steady = _distilled(
        gate, flow_wall=0.075, analytic_wall=0.03, legacy=0.24, shipped=0.024
    )
    assert gate.check(slow_machine, slow_steady, baseline, tolerance=1.3) == []
    # A genuine allocator regression moves only shipped_s.
    regressed, steady = _distilled(gate, flow_wall=0.025, shipped=0.03)
    failures = gate.check(regressed, steady, baseline, tolerance=1.3)
    assert any("max_min_fair:500" in failure for failure in failures)


def test_gate_flags_semantic_drift_in_simulated_time(gate):
    ratios, steady = _distilled(gate, flow_wall=0.025)
    baseline = {"ratios": dict(ratios), "steady": dict(steady)}
    drifted = dict(steady)
    drifted["flow_mode:electrical:8:flow"] *= 1.001
    failures = gate.check(ratios, drifted, baseline, tolerance=1.3)
    assert any("semantic drift" in failure for failure in failures)


def test_gate_fails_when_nothing_matches(gate):
    ratios, steady = _distilled(gate, flow_wall=0.025)
    baseline = {"ratios": {"flow_mode:warpdrive:9000": 1.0}, "steady": {}}
    failures = gate.check(ratios, steady, baseline, tolerance=1.3)
    assert any("no benchmark measurement matched" in failure for failure in failures)


def test_update_writes_a_baseline_cli_round_trip(gate, tmp_path, capsys):
    bench = tmp_path / "bench.txt"
    bench.write_text("\n".join(_bench_lines(flow_wall=0.025)) + "\n")
    baseline = tmp_path / "baseline.json"
    assert gate.main([str(bench), "--baseline", str(baseline), "--update"]) == 0
    assert gate.main([str(bench), "--baseline", str(baseline)]) == 0
    # A 2x slowdown against the freshly written baseline trips the gate.
    slow = tmp_path / "slow.txt"
    slow.write_text("\n".join(_bench_lines(flow_wall=0.050)) + "\n")
    assert gate.main([str(slow), "--baseline", str(baseline)]) == 1


def test_tolerance_overrides_match_exact_and_prefix(gate):
    overrides = {
        "flow_mode:electrical:8": 2.0,
        "flow_mode:fattree-approx*": 1.8,
        "flow_mode:fattree*": 1.5,
    }
    assert gate.tolerance_for("flow_mode:electrical:8", 1.3, overrides) == 2.0
    # Longest matching prefix wins over a broader one.
    assert gate.tolerance_for("flow_mode:fattree-approx:40", 1.3, overrides) == 1.8
    assert gate.tolerance_for("flow_mode:fattree:40", 1.3, overrides) == 1.5
    assert gate.tolerance_for("flow_mode:photonic:8", 1.3, overrides) == 1.3


def test_tolerance_override_loosens_one_identity_only(gate):
    base_ratios, base_steady = _distilled(gate, flow_wall=0.025)
    baseline = {
        "ratios": dict(base_ratios),
        "steady": dict(base_steady),
        "absolute_slack": 0.0,
        "tolerance_overrides": {"flow_mode:electrical*": 3.0},
    }
    slow_ratios, slow_steady = _distilled(gate, flow_wall=0.050)  # 2x slower
    # The override absorbs the 2x flow-mode slowdown...
    failures = gate.check(slow_ratios, base_steady, baseline, tolerance=1.3)
    assert failures == []
    # ...but the un-overridden allocator ratio still trips at default 1.3x.
    regressed, steady = _distilled(gate, flow_wall=0.025, shipped=0.03)
    failures = gate.check(regressed, base_steady, baseline, tolerance=1.3)
    assert any("max_min_fair:500" in failure for failure in failures)


def test_update_preserves_tolerance_and_slack_overrides(gate, tmp_path):
    bench = tmp_path / "bench.txt"
    bench.write_text("\n".join(_bench_lines(flow_wall=0.025)) + "\n")
    baseline = tmp_path / "baseline.json"
    assert gate.main([str(bench), "--baseline", str(baseline), "--update"]) == 0
    data = json.loads(baseline.read_text())
    data["tolerance_overrides"] = {"flow_mode:fattree-approx*": 1.8}
    data["slack_overrides"] = {"routing_overhead:*": 0.0}
    baseline.write_text(json.dumps(data))
    assert gate.main([str(bench), "--baseline", str(baseline), "--update"]) == 0
    refreshed = json.loads(baseline.read_text())
    assert refreshed["tolerance_overrides"] == {"flow_mode:fattree-approx*": 1.8}
    assert refreshed["slack_overrides"] == {"routing_overhead:*": 0.0}


def test_distill_maps_routing_overhead_records_to_ratios(gate):
    lines = [
        "BENCH " + json.dumps({
            "bench": "routing_overhead", "fabric": "fattree", "gpus": 8,
            "default_s": 0.010, "single_s": 0.0102, "ratio": 1.02,
        }),
    ]
    ratios, steady = gate.distill(gate.parse_bench_lines(lines))
    assert ratios == {"routing_overhead:fattree:8": 1.02}
    assert steady == {}


def test_update_pins_identity_ratio_references_at_one(gate, tmp_path):
    """Same-code identities get reference 1.0, not one run's noise."""
    lines = _bench_lines(flow_wall=0.025) + [
        "BENCH " + json.dumps({
            "bench": "routing_overhead", "fabric": "fattree", "gpus": 8,
            "default_s": 0.012, "single_s": 0.010, "ratio": 0.833333,
        }),
    ]
    bench = tmp_path / "bench.txt"
    bench.write_text("\n".join(lines) + "\n")
    baseline = tmp_path / "baseline.json"
    assert gate.main([str(bench), "--baseline", str(baseline), "--update"]) == 0
    data = json.loads(baseline.read_text())
    assert data["ratios"]["routing_overhead:fattree:8"] == 1.0
    # The measured flow-mode ratio is still recorded as measured.
    assert data["ratios"]["flow_mode:electrical:8"] == pytest.approx(2.5)


def test_slack_override_tightens_a_same_code_identity(gate):
    """Zero slack makes a tight tolerance meaningful on a ~1.0 ratio.

    With the global absolute slack (0.75) a ratio near 1.0 could double
    without tripping a 1.05x tolerance; the per-identity slack override
    removes that headroom for identities whose two sides run the same code.
    """
    ratios = {"routing_overhead:fattree:8": 1.2}
    baseline = {
        "ratios": {"routing_overhead:fattree:8": 1.0},
        "steady": {},
        "absolute_slack": 0.75,
        "tolerance_overrides": {"routing_overhead:*": 1.05},
    }
    # Without the slack override the global slack absorbs the regression.
    assert gate.check(dict(ratios), {}, baseline, tolerance=1.3) == []
    baseline["slack_overrides"] = {"routing_overhead:*": 0.0}
    failures = gate.check(dict(ratios), {}, baseline, tolerance=1.3)
    assert any("routing_overhead:fattree:8" in failure for failure in failures)
    # A within-noise ratio still passes under the tight gate.
    assert gate.check({"routing_overhead:fattree:8": 1.04}, {}, baseline, 1.3) == []
