"""OpusController.ensure: on-demand vs provisioned, drains, serialization.

The controller's single entry point answers "when will these circuits be
usable?".  These tests pin its time arithmetic directly (it was previously
exercised only through the end-to-end system):

* circuits already installed are granted without a switching event;
* missing circuits charge the switching delay from the issue time;
* a reconfiguration tearing a busy circuit waits for the traffic to drain
  (Objective 3);
* switching events on one rail serialize through ``switch_free_at`` while
  rails stay independent;
* the provisioned flag of the request lands on the reconfiguration record.
"""

import pytest

from repro.core.controller import OpusController
from repro.core.scheduler import ReconfigurationRequest
from repro.errors import CircuitError
from repro.topology.ocs import Circuit, CircuitConfiguration
from repro.topology.photonic import build_photonic_rail_fabric
from repro.topology.devices import perlmutter_testbed

DELAY = 0.01


@pytest.fixture()
def controller():
    cluster = perlmutter_testbed(num_nodes=4)
    fabric = build_photonic_rail_fabric(cluster)
    return OpusController(fabric, reconfiguration_delay=DELAY)


def _request(issue_time, provisioned=False, group=frozenset({0, 1}), rail=0):
    return ReconfigurationRequest.create(
        group_key=group,
        axis="dp",
        rails=(rail,),
        issue_time=issue_time,
        provisioned=provisioned,
    )


def _config(*port_pairs):
    return CircuitConfiguration(tuple(Circuit(a, b) for a, b in port_pairs))


def test_ensure_installs_missing_circuits_and_charges_the_delay(controller):
    ready, record = controller.ensure(0, _config((0, 1)), _request(issue_time=2.0))
    assert ready == pytest.approx(2.0 + DELAY)
    assert record is not None
    assert record.start == pytest.approx(2.0)
    assert record.end == pytest.approx(2.0 + DELAY)
    assert record.num_circuits_changed == 1
    assert not record.provisioned
    # The decision is mirrored onto the fabric: the OCS crossbar holds the
    # circuit and the topology view gained the circuit links.
    assert controller.fabric.rail(0).ocs.is_connected(0, 1)
    assert controller.fabric.topology.links_between("gpu0.nic0", "gpu4.nic0")


def test_ensure_grants_installed_circuits_without_a_switching_event(controller):
    controller.ensure(0, _config((0, 1)), _request(issue_time=0.0))
    ready, record = controller.ensure(0, _config((0, 1)), _request(issue_time=5.0))
    assert record is None
    assert ready == pytest.approx(5.0)
    assert controller.rail_state(0).reconfigurations == 1


def test_ensure_waits_for_an_installed_circuit_to_become_usable(controller):
    # Second request arrives while the switching event is still in progress:
    # the circuits exist but only become usable when the event finishes.
    controller.ensure(0, _config((0, 1)), _request(issue_time=1.0))
    ready, record = controller.ensure(
        0, _config((0, 1)), _request(issue_time=1.001)
    )
    assert record is None
    assert ready == pytest.approx(1.0 + DELAY)


def test_reconfiguration_waits_for_busy_circuits_to_drain(controller):
    controller.ensure(0, _config((0, 1)), _request(issue_time=0.0))
    controller.notify_traffic(0, [Circuit(0, 1)], busy_until=5.0)
    assert controller.rail_state(0).drain_time([Circuit(0, 1)]) == pytest.approx(5.0)
    # (0, 2) conflicts with the busy (0, 1) on port 0: the switching event
    # cannot start before the traffic drains at t=5 (Objective 3).
    ready, record = controller.ensure(
        0, _config((0, 2)), _request(issue_time=1.0, group=frozenset({0, 2}))
    )
    assert record is not None
    assert record.start == pytest.approx(5.0)
    assert ready == pytest.approx(5.0 + DELAY)
    assert Circuit(0, 1) not in controller.rail_state(0).installed


def test_switching_events_serialize_per_rail(controller):
    controller.ensure(0, _config((0, 1)), _request(issue_time=0.0))
    # (2, 3) conflicts with nothing, but the rail's OCS is still switching
    # until t=DELAY, so the second event starts only then.
    ready, record = controller.ensure(
        0, _config((2, 3)), _request(issue_time=0.0, group=frozenset({2, 3}))
    )
    assert record is not None
    assert record.start == pytest.approx(DELAY)
    assert ready == pytest.approx(2 * DELAY)


def test_rails_switch_independently(controller):
    controller.ensure(0, _config((0, 1)), _request(issue_time=0.0))
    ready, _record = controller.ensure(
        1, _config((0, 1)), _request(issue_time=0.0, rail=1)
    )
    assert ready == pytest.approx(DELAY)


def test_provisioned_requests_are_flagged_on_the_record(controller):
    _, record = controller.ensure(
        0, _config((0, 1)), _request(issue_time=0.0, provisioned=True)
    )
    assert record is not None
    assert record.provisioned


def test_notify_traffic_rejects_unknown_circuits(controller):
    with pytest.raises(CircuitError):
        controller.notify_traffic(0, [Circuit(0, 1)], busy_until=1.0)


def test_reset_clears_circuits_and_timing_state(controller):
    controller.ensure(0, _config((0, 1)), _request(issue_time=0.0))
    controller.notify_traffic(0, [Circuit(0, 1)], busy_until=9.0)
    controller.reset()
    state = controller.rail_state(0)
    assert not state.installed
    assert not state.busy_until
    assert state.switch_free_at == 0.0
    assert controller.total_reconfigurations() == 0
    assert not controller.fabric.rail(0).ocs.installed.circuits
