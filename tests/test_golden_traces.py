"""Golden-trace regression: canonical scenario traces pinned bit-for-bit.

Small reference scenarios — analytic, flow, photonic-flow, and a faulted
flow run — are simulated end to end and their full training traces compared
against committed JSON files.  The simulation is deterministic pure
Python/numpy, so the comparison is exact (floats survive the JSON round trip
bit-for-bit): any refactor that changes a single record is caught, not just
aggregate drift.

After an *intentional* semantics change, refresh the files with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.experiments.contention import (
    adaptive_routing_scenario,
    contention_free_scenario,
    degraded_fabric_scenario,
    provisioned_photonic_scenario,
    shared_uplink_incast_scenario,
)
from repro.experiments.backends import create_network
from repro.parallelism.dag import build_iteration_dag
from repro.parallelism.groups import GroupRegistry
from repro.simulator.executor import DAGExecutor

GOLDEN_DIR = Path(__file__).parent / "golden"

#: name -> scenario factory; one per network-mode family plus a faulted run.
GOLDEN_CASES = {
    "contention_free_analytic": lambda: contention_free_scenario(
        num_iterations=2
    ).with_knobs(network_mode="analytic"),
    "shared_uplink_flow": lambda: shared_uplink_incast_scenario(
        num_iterations=2
    ).with_knobs(network_mode="flow"),
    "provisioned_photonic_flow": lambda: provisioned_photonic_scenario(
        num_iterations=2
    ).with_knobs(network_mode="flow"),
    "degraded_fattree_flow": lambda: degraded_fabric_scenario(
        "fattree", "degraded", num_iterations=2
    ),
    # The ε-approximate engine gets its own pinned trace: approximation is
    # deterministic too, so its divergence from the exact trace is a fixed,
    # reviewable artifact rather than an unchecked degree of freedom.
    "shared_uplink_flow_approx": lambda: shared_uplink_incast_scenario(
        num_iterations=2
    ).with_knobs(
        network_mode="flow", allocator_epsilon=0.1, coarsen_quantum=1e-6
    ),
    # ECMP's per-flow hash choices are a fixed integer mix over stable path
    # enumerations, so the multipath trace is as pinnable as the single-path
    # one: any drift in hashing, path ordering, or enumeration shows up here.
    "adaptive_routing_ecmp": lambda: adaptive_routing_scenario(
        "ecmp", num_iterations=2
    ),
}


def _simulate_training_dict(scenario) -> dict:
    """The full training trace of one scenario as a canonical dict."""
    dag = build_iteration_dag(scenario.workload, scenario.cluster, scenario.dag_options)
    registry = GroupRegistry(dag.mesh)
    network = create_network(
        scenario.backend,
        scenario.cluster,
        dag.mesh,
        registry=registry,
        **dict(scenario.knobs),
    )
    executor = DAGExecutor(dag, scenario.cluster, network, config=scenario.simulation)
    training = executor.run_training(scenario.num_iterations)
    return {
        "scenario": scenario.name,
        "backend": scenario.backend,
        "iterations": [trace.to_dict() for trace in training.iterations],
    }


def _canonical(payload: dict) -> str:
    """Canonical JSON text: sorted keys, tuples collapsed to lists.

    Floats survive the round trip exactly (json uses repr), so comparing
    canonical forms is a bit-for-bit comparison of every record.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_trace_is_bit_for_bit_stable(name, update_golden):
    payload = _simulate_training_dict(GOLDEN_CASES[name]())
    path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(_canonical(payload))
        return
    assert path.exists(), (
        f"golden trace {path} missing; generate it with "
        "pytest tests/test_golden_traces.py --update-golden"
    )
    expected = json.loads(path.read_text())
    produced = json.loads(_canonical(payload))
    assert produced == expected


def test_golden_files_cover_every_case():
    missing = [
        name
        for name in GOLDEN_CASES
        if not (GOLDEN_DIR / f"{name}.json").exists()
    ]
    assert not missing, (
        f"golden files missing for {missing}; run with --update-golden"
    )


#: Scenarios of the snapshot/restore golden case — one per network-model
#: family (analytic, flow, photonic flow) plus a mid-run NIC failure, the
#: regime with the most in-flight state (pending engine events, contended
#: rates, fault schedules) a checkpoint must carry.
_SNAPSHOT_CASE_SCENARIOS = {
    "contention_free_analytic": lambda: contention_free_scenario(
        num_iterations=4
    ).with_knobs(network_mode="analytic"),
    "shared_uplink": lambda: shared_uplink_incast_scenario(
        num_iterations=4
    ).with_knobs(network_mode="flow"),
    "provisioned_photonic": lambda: provisioned_photonic_scenario(
        num_iterations=4
    ).with_knobs(network_mode="flow"),
    "degraded_fattree_failed": lambda: degraded_fabric_scenario(
        "fattree", "failed", num_iterations=4, fault_time=0.2
    ),
}


def _snapshot_restore_continue_dict() -> dict:
    """Each scenario run straight and via a midpoint checkpoint round trip.

    Both the straight trace and the resumed trace are captured so the golden
    file pins checkpoint behavior itself, not just final-state agreement.
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.experiments.session import SimulationSession

    payload: dict = {}
    for name, factory in _SNAPSHOT_CASE_SCENARIOS.items():
        scenario = factory()
        straight = SimulationSession.start(scenario)
        straight.run_to(scenario.num_iterations)

        session = SimulationSession.start(scenario)
        session.run_to(scenario.num_iterations // 2)
        with tempfile.TemporaryDirectory() as tmp:
            path = _Path(tmp) / "ckpt.bin"
            session.save(path)
            resumed = SimulationSession.load(path)
        resumed.run_to(scenario.num_iterations)

        payload[name] = {
            "straight": [t.to_dict() for t in straight.trace.iterations],
            "resumed": [t.to_dict() for t in resumed.trace.iterations],
        }
    return payload


def test_snapshot_restore_continue_golden(update_golden):
    """Midpoint checkpoint + resume is bit-for-bit the straight run — pinned.

    The in-test assertion catches restore drift directly; the golden file
    additionally pins the trace contents, so a change that breaks *both*
    paths identically (and would slip past the equality check) still shows
    up as a diff against the committed JSON.
    """
    payload = _snapshot_restore_continue_dict()
    for name, case in payload.items():
        assert case["resumed"] == case["straight"], name

    path = GOLDEN_DIR / "snapshot_restore_continue.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(_canonical(payload))
        return
    assert path.exists(), (
        f"golden trace {path} missing; generate it with "
        "pytest tests/test_golden_traces.py --update-golden"
    )
    assert json.loads(_canonical(payload)) == json.loads(path.read_text())


def test_explicit_zero_knobs_reproduce_the_exact_golden_trace():
    """ε = 0 / quantum = 0 is the exact engine, bit-for-bit.

    The contention-scaling knobs must be pure opt-ins: spelling the defaults
    out loud (as sweeps and CLI runs do) reproduces the committed pre-knob
    golden trace down to the last float.
    """
    scenario = shared_uplink_incast_scenario(num_iterations=2).with_knobs(
        network_mode="flow",
        allocator_epsilon=0.0,
        coarsen_quantum=0.0,
        fill_workers=0,
    )
    produced = json.loads(_canonical(_simulate_training_dict(scenario)))
    expected = json.loads((GOLDEN_DIR / "shared_uplink_flow.json").read_text())
    # The scenario name embeds no knob values; everything else must match.
    assert produced["iterations"] == expected["iterations"]
    assert produced["backend"] == expected["backend"]


def test_explicit_single_routing_policy_reproduces_the_golden_trace():
    """routing_policy = 'single' is the pre-knob router, bit-for-bit.

    Same contract as the zero contention-scaling knobs: spelling the default
    policy out loud must reproduce the committed single-path golden trace
    down to the last float — the policy lane is a pure opt-in.
    """
    scenario = shared_uplink_incast_scenario(num_iterations=2).with_knobs(
        network_mode="flow", routing_policy="single"
    )
    produced = json.loads(_canonical(_simulate_training_dict(scenario)))
    expected = json.loads((GOLDEN_DIR / "shared_uplink_flow.json").read_text())
    assert produced["iterations"] == expected["iterations"]
    assert produced["backend"] == expected["backend"]
