"""Metrics tests: empty-trace errors and busy-time accounting."""

import pytest

from repro.errors import SimulationError
from repro.parallelism.trace import ComputeRecord, IterationTrace, TrainingTrace
from repro.simulator.metrics import (
    iteration_metrics,
    mean_iteration_time,
    normalized_iteration_time,
)


def _trace_with_compute(intervals, iteration=0):
    trace = IterationTrace(iteration=iteration)
    for op_id, (start, end) in enumerate(intervals):
        trace.compute_records.append(
            ComputeRecord(op_id=op_id, ranks=(0,), start=start, end=end)
        )
    return trace


def test_mean_iteration_time_raises_on_empty_training_trace():
    with pytest.raises(SimulationError):
        mean_iteration_time(TrainingTrace())


def test_trace_mean_iteration_time_raises_on_empty_training_trace():
    with pytest.raises(SimulationError):
        TrainingTrace().mean_iteration_time()


def test_normalized_iteration_time_raises_on_empty_baseline():
    candidate = TrainingTrace()
    candidate.add(_trace_with_compute([(0.0, 1.0)]))
    with pytest.raises(SimulationError):
        normalized_iteration_time(candidate, TrainingTrace())


def test_mean_iteration_time_skip_first_excludes_profiling_iteration():
    training = TrainingTrace()
    training.add(_trace_with_compute([(0.0, 3.0)], iteration=0))
    training.add(_trace_with_compute([(3.0, 4.0)], iteration=1))
    training.add(_trace_with_compute([(4.0, 5.0)], iteration=2))
    assert mean_iteration_time(training) == pytest.approx(5.0 / 3.0)
    assert mean_iteration_time(training, skip_first=True) == pytest.approx(1.0)


def test_mean_iteration_time_skip_first_keeps_a_single_iteration():
    training = TrainingTrace()
    training.add(_trace_with_compute([(0.0, 2.0)]))
    assert mean_iteration_time(training, skip_first=True) == pytest.approx(2.0)


def test_iteration_metrics_merges_overlapping_compute_intervals():
    # [0, 2) and [1, 3) overlap: busy time is 3, not 4.
    trace = _trace_with_compute([(0.0, 2.0), (1.0, 3.0)])
    metrics = iteration_metrics(trace)
    assert metrics.compute_time == pytest.approx(3.0)
    assert metrics.iteration_time == pytest.approx(3.0)
    assert metrics.comm_time == 0.0
