"""FlowSimulator and max–min fair allocation tests.

Covers the edge cases the fluid engine has to get right: zero-size flows
(latency-only completion), simultaneous completions at one instant, staggered
arrivals re-triggering reallocation, and the zero-rate stall regression
(``run`` must raise instead of silently returning with active flows).
"""

import math
import random

import pytest

from repro.errors import SimulationError
from repro.simulator.flows import Flow, FlowSimulator, max_min_fair_rates
from repro.topology.base import Link, LinkKind


def make_link(bandwidth=100.0, latency=0.0, link_id=0, src="a", dst="b"):
    return Link(
        src=src,
        dst=dst,
        bandwidth=bandwidth,
        latency=latency,
        kind=LinkKind.ELECTRICAL,
        link_id=link_id,
    )


# --------------------------------------------------------------------------- #
# max–min fair allocation
# --------------------------------------------------------------------------- #


def test_single_flow_gets_the_full_link():
    link = make_link(bandwidth=100.0)
    flow = Flow(flow_id=0, path=(link,), size_bytes=1.0, start_time=0.0)
    assert max_min_fair_rates([flow]) == {0: 100.0}


def test_two_flows_share_a_bottleneck_equally():
    shared = make_link(bandwidth=100.0)
    flows = [
        Flow(flow_id=i, path=(shared,), size_bytes=1.0, start_time=0.0)
        for i in range(2)
    ]
    assert max_min_fair_rates(flows) == {0: 50.0, 1: 50.0}


def test_unconstrained_leftover_capacity_goes_to_the_other_flow():
    shared = make_link(bandwidth=100.0, link_id=0)
    narrow = make_link(bandwidth=10.0, link_id=1, src="b", dst="c")
    constrained = Flow(flow_id=0, path=(shared, narrow), size_bytes=1.0, start_time=0.0)
    free = Flow(flow_id=1, path=(shared,), size_bytes=1.0, start_time=0.0)
    rates = max_min_fair_rates([constrained, free])
    assert rates[0] == pytest.approx(10.0)
    assert rates[1] == pytest.approx(90.0)


def test_empty_path_flows_get_infinite_rate():
    flow = Flow(flow_id=0, path=(), size_bytes=1.0, start_time=0.0)
    assert math.isinf(max_min_fair_rates([flow])[0])


def test_zero_capacity_override_yields_zero_rate():
    link = make_link(bandwidth=100.0)
    flow = Flow(flow_id=0, path=(link,), size_bytes=1.0, start_time=0.0)
    rates = max_min_fair_rates([flow], capacities={link.key: 0.0})
    assert rates[0] == 0.0


def _reference_max_min(flows, capacities=None):
    """The pre-optimization algorithm, imported from the benchmark as oracle."""
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parents[1] / "benchmarks" / "bench_max_min_fair.py"
    spec = importlib.util.spec_from_file_location("bench_max_min_fair", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.legacy_max_min_fair_rates(flows, capacities)


def test_incremental_allocation_matches_the_reference_on_random_networks():
    rng = random.Random(7)
    for _ in range(25):
        num_links = rng.randint(1, 12)
        links = [
            make_link(
                bandwidth=rng.choice([10.0, 40.0, 100.0, 400.0]),
                link_id=i,
                src=f"n{i}",
                dst=f"n{i + 1}",
            )
            for i in range(num_links)
        ]
        flows = [
            Flow(
                flow_id=i,
                path=tuple(rng.sample(links, rng.randint(1, num_links))),
                size_bytes=1.0,
                start_time=0.0,
            )
            for i in range(rng.randint(1, 20))
        ]
        fast = max_min_fair_rates(flows)
        slow = _reference_max_min(flows)
        assert fast.keys() == slow.keys()
        for flow_id in fast:
            assert fast[flow_id] == pytest.approx(slow[flow_id])


# --------------------------------------------------------------------------- #
# FlowSimulator edge cases
# --------------------------------------------------------------------------- #


def test_single_flow_completion_time():
    sim = FlowSimulator()
    link = make_link(bandwidth=100.0, latency=0.25)
    flow = sim.add_flow([link], size_bytes=1000.0, start_time=1.0)
    sim.run()
    # 1000 bytes at 100 B/s from t=1, plus 0.25s propagation.
    assert flow.finish_time == pytest.approx(11.25)


def test_infinite_rate_flow_with_nonzero_size_completes_instantly():
    # An empty path means "co-located endpoints": the flow gets infinite rate
    # and must complete at its start (plus latency, which is 0 here) instead
    # of respinning the completion check at the same instant forever.
    sim = FlowSimulator()
    flow = sim.add_flow([], size_bytes=100.0, start_time=1.0)
    sim.run()
    assert flow.done
    assert flow.finish_time == pytest.approx(1.0)
    assert sim.engine.events_processed < 10


def test_zero_size_flow_completes_after_latency_only():
    sim = FlowSimulator()
    link = make_link(bandwidth=100.0, latency=0.5)
    flow = sim.add_flow([link], size_bytes=0.0, start_time=2.0)
    sim.run()
    assert flow.finish_time == pytest.approx(2.5)


def test_simultaneous_completions_at_one_instant():
    sim = FlowSimulator()
    done = []
    for link_id in range(3):
        link = make_link(bandwidth=100.0, link_id=link_id)
        sim.add_flow(
            [link], size_bytes=500.0, start_time=0.0, on_complete=done.append
        )
    sim.run()
    assert len(done) == 3
    assert all(flow.finish_time == pytest.approx(5.0) for flow in done)
    assert not sim.active_flows


def test_staggered_arrival_retriggers_reallocation():
    sim = FlowSimulator()
    shared = make_link(bandwidth=100.0)
    first = sim.add_flow([shared], size_bytes=1000.0, start_time=0.0)
    second = sim.add_flow([shared], size_bytes=500.0, start_time=5.0)
    sim.run()
    # First runs alone at 100 B/s for 5s (500 bytes left), then both share
    # 50 B/s; they drain their remaining 500 bytes together at t=15.
    assert first.finish_time == pytest.approx(15.0)
    assert second.finish_time == pytest.approx(15.0)


def test_completion_frees_bandwidth_for_the_survivor():
    sim = FlowSimulator()
    shared = make_link(bandwidth=100.0)
    short = sim.add_flow([shared], size_bytes=100.0, start_time=0.0)
    long = sim.add_flow([shared], size_bytes=500.0, start_time=0.0)
    sim.run()
    # Shared phase: 50 B/s each; short drains at t=2, long has 400 bytes left
    # and finishes them alone at 100 B/s.
    assert short.finish_time == pytest.approx(2.0)
    assert long.finish_time == pytest.approx(6.0)


def test_sub_resolution_remainder_does_not_livelock():
    # Two flows share a 1 TB/s link; the longer one is left with 1e-5 bytes
    # when its peer completes at t=2.  Its residual drain time (1e-17 s) is
    # below the clock's floating-point resolution, so ``now + time_left ==
    # now``: the completion check must finish it instead of rescheduling the
    # same instant forever.
    sim = FlowSimulator()
    shared = make_link(bandwidth=1e12)
    short = sim.add_flow([shared], size_bytes=1e12, start_time=0.0)
    long = sim.add_flow([shared], size_bytes=1e12 + 1e-5, start_time=0.0)
    sim.run()
    assert short.done and long.done
    assert long.finish_time == pytest.approx(2.0)
    assert sim.engine.events_processed < 20


def test_zero_rate_stall_raises_instead_of_returning_silently():
    sim = FlowSimulator()
    link = make_link(bandwidth=100.0)
    sim.add_flow([link], size_bytes=1000.0, start_time=0.0)
    # The link goes dark after the flow was admitted (e.g. a failure study):
    # progressive filling now allocates rate 0 and the flow can never finish.
    link.bandwidth = 0.0
    with pytest.raises(SimulationError, match="stalled"):
        sim.run()


def test_stall_detection_spares_runs_bounded_by_until():
    sim = FlowSimulator()
    link = make_link(bandwidth=100.0)
    flow = sim.add_flow([link], size_bytes=1000.0, start_time=0.0)
    stop = sim.run(until=5.0)
    # Stopping early with work left is not a stall: a completion is scheduled.
    assert stop == 5.0
    assert not flow.done
    assert sim.engine.pending == 1


def test_negative_flow_size_is_rejected():
    sim = FlowSimulator()
    with pytest.raises(SimulationError):
        sim.add_flow([make_link()], size_bytes=-1.0)


def test_foreign_same_instant_events_do_not_defer_reallocation():
    # The simulator may share its engine with other event sources; an
    # unrelated event at a flow's arrival instant must not be mistaken for a
    # sibling arrival (which would skip the reallocation and stall the flow).
    from repro.simulator.engine import SimulationEngine

    engine = SimulationEngine()
    sim = FlowSimulator(engine=engine)
    flow = sim.add_flow([make_link(bandwidth=100.0)], size_bytes=1000.0, start_time=0.0)
    engine.schedule(0.0, lambda _e, _p: None)
    sim.run()
    assert flow.done
    assert flow.finish_time == pytest.approx(10.0)


# --------------------------------------------------------------------------- #
# Contention-scaling knobs: quantization, validation, ε-skips, sealed batches
# --------------------------------------------------------------------------- #


def test_negative_knobs_are_rejected():
    with pytest.raises(SimulationError):
        FlowSimulator(allocator_epsilon=-0.1)
    with pytest.raises(SimulationError):
        FlowSimulator(coarsen_quantum=-1e-6)
    with pytest.raises(SimulationError):
        FlowSimulator(fill_workers=-1)


def test_quantize_rounds_up_and_passes_zero_through():
    sim = FlowSimulator(coarsen_quantum=0.5)
    assert sim._quantize(0.0) == 0.0
    assert sim._quantize(0.2) == 0.5
    assert sim._quantize(0.5) == 0.5  # boundary values stay put
    assert sim._quantize(0.500001) == 1.0
    exact = FlowSimulator()
    assert exact._quantize(0.123456) == 0.123456


def test_coarsening_merges_staggered_arrivals_into_one_instant():
    link = make_link(bandwidth=100.0)
    sim = FlowSimulator(coarsen_quantum=1.0)
    first = sim.add_flow((link,), 100.0, start_time=0.3)
    second = sim.add_flow((link,), 100.0, start_time=0.7)
    sim.run()
    # Both arrivals round up to t=1.0, start together, and split the link.
    assert first.start_time == second.start_time == 1.0
    assert first.finish_time == second.finish_time == pytest.approx(3.0)


def test_allocator_stats_count_invocations_and_epsilon_skips():
    from repro.simulator.flows import AllocatorStats

    stats = AllocatorStats()
    link = make_link(bandwidth=100.0)
    sim = FlowSimulator(allocator_epsilon=0.9, stats=stats)
    # One short flow among ten long ones: the short completion's freed share
    # is within ε of the survivors' load, so redistribution is skipped.
    sim.add_flow((link,), 2.0 * 100.0 / 11.0, start_time=0.0)
    longs = [sim.add_flow((link,), 1000.0, start_time=0.0) for _ in range(10)]
    sim.run()
    assert stats.allocator_invocations > 0
    assert stats.epsilon_skips >= 1
    as_dict = stats.as_dict()
    assert as_dict["epsilon_skips"] == stats.epsilon_skips
    assert as_dict["rerated_flows"] >= as_dict["rerated_components"]
    # Every long flow still finishes (deferred debt delays, never deadlocks).
    assert all(flow.finish_time is not None for flow in longs)


def test_epsilon_skip_delays_survivors_by_at_most_epsilon():
    link = make_link(bandwidth=100.0)
    exact_sim = FlowSimulator()
    approx_sim = FlowSimulator(allocator_epsilon=0.1)
    finishes = {}
    for label, sim in (("exact", exact_sim), ("approx", approx_sim)):
        sim.add_flow((link,), 2.0 * 100.0 / 11.0, start_time=0.0)
        longs = [
            sim.add_flow((link,), 1000.0, start_time=0.0) for _ in range(10)
        ]
        sim.run()
        finishes[label] = max(flow.finish_time for flow in longs)
    assert finishes["approx"] >= finishes["exact"] * (1 - 1e-9)
    assert finishes["approx"] <= finishes["exact"] * 1.1 * (1 + 1e-9)


def _uniform_batch(sim, link_count=2, flows_per_link=40):
    """A self-contained batch large enough to take the sealed fast path."""
    links = [
        make_link(bandwidth=100.0, link_id=i, src=f"s{i}", dst=f"d{i}")
        for i in range(link_count)
    ]
    flows = []
    for link in links:
        flows.extend(
            sim.add_flow((link,), 1000.0, start_time=0.0)
            for _ in range(flows_per_link)
        )
    return links, flows


def test_sealed_batch_completes_in_bulk_and_replays_identically():
    # Two identical injections of the same batch shape: the second run
    # replays the memoized allocation (phantom markers) yet must finish at
    # exactly the same per-flow times as the first.
    sim = FlowSimulator()
    _links, first = _uniform_batch(sim)
    sim.run()
    first_times = sorted(flow.finish_time for flow in first)
    assert sim._sealed_outstanding == 0
    assert not sim._phantoms
    assert not sim._link_users

    again = FlowSimulator()
    _links, warmup = _uniform_batch(again)
    again.run()
    offset = again.engine.now
    _links, replayed = _uniform_batch_at(again, offset)
    again.run()
    assert sorted(
        flow.finish_time - offset for flow in replayed
    ) == pytest.approx(first_times)
    assert not again._phantoms  # replay retired its markers


def _uniform_batch_at(sim, start_time, link_count=2, flows_per_link=40):
    links = [
        make_link(bandwidth=100.0, link_id=i, src=f"s{i}", dst=f"d{i}")
        for i in range(link_count)
    ]
    flows = []
    for link in links:
        flows.extend(
            sim.add_flow((link,), 1000.0, start_time=start_time)
            for _ in range(flows_per_link)
        )
    return links, flows


def test_disturbed_sealed_batch_falls_back_to_exact_processing():
    # A straggler joining one of the sealed batch's links mid-flight forces
    # the seal to fall back: everyone still finishes at the exact times.
    sim = FlowSimulator()
    links, batch = _uniform_batch(sim, link_count=1, flows_per_link=40)
    straggler = sim.add_flow((links[0],), 100.0, start_time=100.0)
    sim.run()
    assert straggler.finish_time is not None
    assert all(flow.finish_time is not None for flow in batch)
    # 40 flows at 2.5 B/s each for 100 s leaves 750 B; the straggler makes
    # 41 sharers at 100/41 B/s.
    reference = FlowSimulator()
    ref_links, ref_batch = _uniform_batch(reference, 1, 40)
    ref_straggler = reference.add_flow((ref_links[0],), 100.0, start_time=100.0)
    reference.run()
    assert straggler.finish_time == ref_straggler.finish_time
    assert sorted(f.finish_time for f in batch) == sorted(
        f.finish_time for f in ref_batch
    )
