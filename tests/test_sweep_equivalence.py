"""The ExperimentRunner-based Fig. 8 sweep must reproduce the direct-path numbers.

The original ``reconfiguration_latency_sweep`` looped over
``PhotonicRailSystem.run`` / ``run_baseline`` inline.  This suite recomputes
the sweep that way and checks the new runner-driven implementation (parallel
workers, memoized scenarios, fresh DAG per scenario) produces the same
numbers.
"""

import pytest

from repro.core.system import (
    PhotonicRailSystem,
    SystemConfig,
    reconfiguration_latency_sweep,
)
from repro.experiments import ExperimentRunner
from repro.simulator.metrics import mean_iteration_time

DELAYS = [1e-5, 0.015]
ITERATIONS = 3


def _direct_sweep(workload, cluster):
    """The pre-refactor computation, written out longhand."""
    system = PhotonicRailSystem(
        workload, cluster, SystemConfig(num_iterations=ITERATIONS)
    )
    baseline = system.run_baseline()
    baseline_time = mean_iteration_time(baseline, skip_first=True)
    points = []
    for delay in DELAYS:
        for provisioning in (False, True):
            trace, _network = system.run(
                reconfiguration_delay=delay, provisioning=provisioning
            )
            steady = list(trace.iterations)[1:] or list(trace.iterations)
            mean_time = sum(t.iteration_time for t in steady) / len(steady)
            reconfigs = sum(t.num_reconfigurations() for t in steady) / len(steady)
            exposed = sum(
                t.total_reconfiguration_blocking() for t in steady
            ) / len(steady)
            points.append(
                (delay, provisioning, mean_time, mean_time / baseline_time, reconfigs, exposed)
            )
    return points


def test_runner_sweep_reproduces_direct_path_numbers(tiny_workload, tiny_cluster):
    expected = _direct_sweep(tiny_workload, tiny_cluster)
    runner = ExperimentRunner(max_workers=4)
    points = reconfiguration_latency_sweep(
        tiny_workload, tiny_cluster, DELAYS, num_iterations=ITERATIONS, runner=runner
    )
    assert len(points) == len(expected)
    for point, (delay, provisioning, mean_time, normalized, reconfigs, exposed) in zip(
        points, expected
    ):
        assert point.reconfiguration_delay == delay
        assert point.provisioning == provisioning
        assert point.iteration_time == pytest.approx(mean_time, rel=1e-9)
        assert point.normalized_iteration_time == pytest.approx(normalized, rel=1e-9)
        assert point.reconfigurations_per_iteration == pytest.approx(reconfigs)
        assert point.exposed_reconfig_time == pytest.approx(exposed, abs=1e-12)
    # The photonic grid plus the electrical baseline were all cache misses...
    assert runner.cache_misses == len(DELAYS) * 2 + 1
    # ...and re-running the sweep is served entirely from the cache.
    runner_hits_before = runner.cache_hits
    reconfiguration_latency_sweep(
        tiny_workload, tiny_cluster, DELAYS, num_iterations=ITERATIONS, runner=runner
    )
    assert runner.cache_misses == len(DELAYS) * 2 + 1
    assert runner.cache_hits == runner_hits_before + len(DELAYS) * 2 + 1
