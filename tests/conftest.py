"""Shared fixtures: a tiny workload/cluster pair every suite can afford."""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest

from repro.parallelism.workloads import small_test_workload
from repro.topology.devices import perlmutter_testbed


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden trace files from the current simulation "
        "output instead of comparing against them",
    )


@pytest.fixture
def update_golden(request):
    """Whether golden-trace tests should rewrite their reference files."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def tiny_workload():
    """An 8-rank Tiny-1B workload (TP=2, FSDP=2, PP=2)."""
    return small_test_workload()


@pytest.fixture(scope="session")
def tiny_cluster():
    """Two Perlmutter nodes (8 GPUs, 4 rails) — just fits the tiny workload."""
    return perlmutter_testbed(num_nodes=2)
