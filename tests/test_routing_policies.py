"""Routing policies and the telemetry-driven reconfiguration loop.

Scenario-level assertions for the ``routing_policy`` knob on the packet
fabrics and the ``provisioning="reactive"`` mode on the photonic control
plane:

* multipath policies (ecmp / adaptive / spray) never lose to single-path
  routing on the shared-uplink incast, and the congestion-aware ones beat it
  outright;
* the reactive controller detects the circuit-thrash phase structure online
  and lands strictly under no-provisioning, within a small factor of the
  profile-driven design it needs no profiling iteration for;
* fault reroutes stay under the run's policy (the simulator's route hook is
  the router, not the raw shortest path), and a policy-routed run survives
  the NIC-attachment failure of the degraded-fabric family;
* the sealed-replay fast lane never serves a stale rate after a capacity
  change, including for recurring policy-routed batches.
"""

import math
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.experiments.backends import create_network
from repro.experiments.contention import (
    REACTIVE_SCENARIO_MODES,
    adaptive_routing_grid,
    degraded_fabric_scenario,
    mini_fat_tree_cluster,
    reactive_vs_profile_scenario,
)
from repro.experiments.runner import run_scenario
from repro.parallelism.config import ParallelismConfig
from repro.parallelism.mesh import DeviceMesh
from repro.simulator.flow_network import fat_tree_flow_network
from repro.simulator.flows import FlowSimulator
from repro.topology.base import LinkKind, NodeKind, Topology


# --------------------------------------------------------------------------- #
# Routing policies on the shared-uplink incast
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def routing_results():
    return {
        scenario.name.rsplit("-", 1)[-1]: run_scenario(scenario)
        for scenario in adaptive_routing_grid()
    }


def test_multipath_never_loses_to_single_path_on_incast(routing_results):
    single = routing_results["single"].metrics["steady_iteration_time"]
    for policy in ("ecmp", "adaptive", "spray"):
        steady = routing_results[policy].metrics["steady_iteration_time"]
        assert steady <= single * (1 + 1e-9), (policy, steady, single)


def test_congestion_spreading_policies_beat_single_path_outright(routing_results):
    """The incast is constructed so spreading genuinely relieves the uplink.

    Four concurrent rings pile onto one deterministic uplink under single-path
    routing while the twin uplink idles; any policy that spreads over the
    equal-cost set must therefore win by a real margin, not merely tie.
    """
    single = routing_results["single"].metrics["steady_iteration_time"]
    for policy in ("ecmp", "adaptive", "spray"):
        steady = routing_results[policy].metrics["steady_iteration_time"]
        assert steady < single * 0.999, (policy, steady, single)


def test_adaptive_is_at_least_as_good_as_ecmp_on_incast(routing_results):
    """Congestion-aware choice can only improve on oblivious hashing here."""
    ecmp = routing_results["ecmp"].metrics["steady_iteration_time"]
    adaptive = routing_results["adaptive"].metrics["steady_iteration_time"]
    assert adaptive <= ecmp * (1 + 1e-9)


# --------------------------------------------------------------------------- #
# Reactive vs profile-driven provisioning
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def reactive_results():
    return {
        mode: run_scenario(reactive_vs_profile_scenario(mode))
        for mode in REACTIVE_SCENARIO_MODES
    }


def test_reactive_strictly_beats_no_provisioning(reactive_results):
    """Detected hotspots/blocking must translate into hidden switching time."""
    none = reactive_results["none"].metrics["steady_iteration_time"]
    reactive = reactive_results["reactive"].metrics["steady_iteration_time"]
    assert reactive < none * (1 - 1e-6), (reactive, none)
    # The win comes from where it should: less switching delay exposed on
    # the critical path, not from doing less switching overall.
    assert (
        reactive_results["reactive"].metrics["exposed_reconfig_time"]
        < reactive_results["none"].metrics["exposed_reconfig_time"]
    )


def test_reactive_lands_within_five_percent_of_profile_driven(reactive_results):
    profile = reactive_results["profile"].metrics["steady_iteration_time"]
    reactive = reactive_results["reactive"].metrics["steady_iteration_time"]
    assert reactive <= profile * 1.05, (reactive, profile)


def test_reactive_converges_to_the_profiled_steady_state(reactive_results):
    """After the online-learning runway, iterations match the profiled ones.

    The reactive run pays for learning in its first iterations (it has no
    profiling iteration to lean on), then speculates from the same phase
    structure the profiler would have recorded — so its *final* iteration
    should be indistinguishable from profile-driven steady state.
    """
    profile_final = reactive_results["profile"].iteration_times[-1]
    reactive_times = reactive_results["reactive"].iteration_times
    assert reactive_times[-1] == pytest.approx(profile_final, rel=1e-3)
    # And the learning runway is visible: the first iteration is the worst.
    assert reactive_times[0] >= max(reactive_times[1:])


def test_reactive_needs_no_profiling_iteration(reactive_results):
    """Iteration 0 of the reactive run reconfigures on demand, nothing more.

    The profile mode's iteration 0 is a dedicated profiling pass; reactive
    mode starts cold and must not be *worse* than the no-provisioning
    baseline's own first iteration by more than its on-demand switching —
    i.e. both run the same demand-driven lane at iteration 0.
    """
    none_first = reactive_results["none"].iteration_times[0]
    reactive_first = reactive_results["reactive"].iteration_times[0]
    # Reactive may speculate late in iteration 0 (arming is evidence-driven),
    # so allow a budgeted overshoot but no profiling-scale blowup.
    assert reactive_first <= none_first * 1.15


# --------------------------------------------------------------------------- #
# Knob validation
# --------------------------------------------------------------------------- #


def _mini_mesh():
    cluster = mini_fat_tree_cluster(num_nodes=4)
    return cluster, DeviceMesh(ParallelismConfig(tp=4, dp=4), cluster)


def test_routing_policy_rejected_in_analytic_mode():
    cluster, mesh = _mini_mesh()
    with pytest.raises(ConfigurationError, match="network_mode='flow'"):
        create_network(
            "fattree", cluster, mesh, network_mode="analytic", routing_policy="ecmp"
        )


def test_unknown_routing_policy_rejected():
    cluster, mesh = _mini_mesh()
    with pytest.raises(ConfigurationError, match="routing_policy"):
        create_network(
            "fattree", cluster, mesh, network_mode="flow", routing_policy="vlb"
        )


def test_reactive_provisioning_rejected_in_analytic_mode():
    from repro.topology.devices import perlmutter_testbed

    cluster = perlmutter_testbed(num_nodes=2)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=2), cluster)
    with pytest.raises(ConfigurationError, match="reactive"):
        create_network(
            "photonic", cluster, mesh, network_mode="analytic", provisioning="reactive"
        )


def test_unknown_provisioning_mode_rejected():
    from repro.topology.devices import perlmutter_testbed

    cluster = perlmutter_testbed(num_nodes=2)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=2), cluster)
    with pytest.raises(ConfigurationError, match="provisioning"):
        create_network(
            "photonic", cluster, mesh, network_mode="flow", provisioning="telepathy"
        )


# --------------------------------------------------------------------------- #
# Fault reroutes stay under the policy
# --------------------------------------------------------------------------- #


def test_fault_reroute_hook_is_the_policy_router():
    cluster, mesh = _mini_mesh()
    model = fat_tree_flow_network(cluster, mesh, routing_policy="ecmp")
    assert model.simulator.route_policy == model._router.reroute
    # Single-path models keep the raw shortest-path reroute lane.
    plain = fat_tree_flow_network(cluster, mesh)
    assert plain.simulator.route_policy is None


@pytest.mark.parametrize("policy", ("ecmp", "adaptive", "spray"))
def test_policy_routed_run_survives_nic_attachment_failure(policy):
    """The degraded-fabric NIC failure must reroute within the policy's lane."""
    base = degraded_fabric_scenario(backend="fattree", condition="failed")
    healthy = degraded_fabric_scenario(backend="fattree", condition="healthy")

    def _with_policy(scenario):
        knobs = dict(scenario.knobs)
        knobs["routing_policy"] = policy
        return replace(scenario, knobs=knobs, name=f"{scenario.name}-{policy}")

    failed_time = run_scenario(_with_policy(base)).metrics["steady_iteration_time"]
    healthy_time = run_scenario(_with_policy(healthy)).metrics[
        "steady_iteration_time"
    ]
    assert math.isfinite(failed_time) and failed_time > 0.0
    # Losing a NIC attachment never speeds the workload up, policy or not.
    assert failed_time >= healthy_time * (1 - 1e-9)


# --------------------------------------------------------------------------- #
# Sealed-replay staleness
# --------------------------------------------------------------------------- #


def test_sealed_replay_never_serves_a_stale_rate_after_degradation():
    """Recurring batches must re-rate after a capacity change, not replay.

    Three identical 32-flow batches on one bottleneck link: the second batch
    replays the first's memoized shape bit-for-bit; between the second and
    third the link is degraded to half capacity, so the third batch must take
    exactly twice as long — a replayed (stale) rate would finish it at the
    healthy speed.
    """
    topology = Topology(name="bottleneck")
    topology.add_node("a", NodeKind.GPU)
    topology.add_node("b", NodeKind.GPU)
    topology.add_bidirectional_link(
        "a", "b", bandwidth=100.0, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    path = tuple(topology.shortest_path("a", "b"))
    sim = FlowSimulator()
    sim.topology = topology

    def _batch(start):
        return [sim.add_flow(path, 1000.0, start_time=start) for _ in range(32)]

    first = _batch(0.0)
    second = _batch(1000.0)
    sim.run(until=2000.0)
    first_duration = max(f.finish_time for f in first)
    assert first_duration == pytest.approx(320.0)
    # The second batch is a sealed replay of the first: bit-identical drain.
    assert [f.finish_time - 1000.0 for f in second] == [
        f.finish_time for f in first
    ]

    link = path[0]
    topology.degrade_link(link.link_id, 0.5)
    sim.apply_link_change([link.key])
    third = _batch(3000.0)
    sim.run()
    third_duration = max(f.finish_time for f in third) - 3000.0
    assert third_duration == pytest.approx(2.0 * first_duration)


# --------------------------------------------------------------------------- #
# Iteration-level speculation control (unit level)
# --------------------------------------------------------------------------- #


@pytest.fixture
def reactive_guard():
    from repro.core.controller import ReactiveReconfigurator

    return ReactiveReconfigurator()


def _iteration(guard, blocking, speculate):
    """Drive one iteration's books: optional speculation, then blocking."""
    if speculate and guard.should_speculate(0):
        guard.note_speculation(0, "dp")
    guard.note_blocking(0, blocking)
    guard.end_iteration()


def test_regressing_speculation_iteration_disables_the_lane(reactive_guard):
    _iteration(reactive_guard, blocking=0.1, speculate=False)  # baseline 0.1
    _iteration(reactive_guard, blocking=0.3, speculate=True)  # worse: shut off
    assert not reactive_guard.should_speculate(0)


def test_improving_speculation_keeps_the_lane_open(reactive_guard):
    _iteration(reactive_guard, blocking=0.1, speculate=False)
    for _ in range(5):
        _iteration(reactive_guard, blocking=0.05, speculate=True)
        assert reactive_guard.should_speculate(0)


def test_failed_probes_back_off_geometrically(reactive_guard):
    """Each failed probe doubles the quiet gap before the next one."""
    _iteration(reactive_guard, blocking=0.1, speculate=False)
    gaps = []
    for _ in range(3):
        # The lane is open (a probe iteration): speculate and regress.
        _iteration(reactive_guard, blocking=0.3, speculate=True)
        quiet = 0
        while not reactive_guard.should_speculate(0):
            _iteration(reactive_guard, blocking=0.1, speculate=False)
            quiet += 1
        gaps.append(quiet)
    assert gaps == [1, 2, 4]


def test_successful_probe_resets_the_backoff(reactive_guard):
    _iteration(reactive_guard, blocking=0.1, speculate=False)
    _iteration(reactive_guard, blocking=0.3, speculate=True)  # fail: wait 1
    _iteration(reactive_guard, blocking=0.1, speculate=False)  # quiet, reopen
    _iteration(reactive_guard, blocking=0.05, speculate=True)  # probe succeeds
    _iteration(reactive_guard, blocking=0.3, speculate=True)  # fail again
    quiet = 0
    while not reactive_guard.should_speculate(0):
        _iteration(reactive_guard, blocking=0.1, speculate=False)
        quiet += 1
    assert quiet == 1  # backoff restarted from the beginning, not at 2


def test_speculating_from_iteration_zero_forces_a_calibration(reactive_guard):
    """With no quiet iteration yet there is no baseline to judge against,
    so the first speculating iteration buys one measurement iteration."""
    _iteration(reactive_guard, blocking=0.2, speculate=True)
    assert not reactive_guard.should_speculate(0)  # calibration iteration
    _iteration(reactive_guard, blocking=0.1, speculate=False)
    assert reactive_guard.should_speculate(0)  # probe, judged against 0.1
    _iteration(reactive_guard, blocking=0.3, speculate=True)
    assert not reactive_guard.should_speculate(0)


def test_reset_restores_the_speculation_lane(reactive_guard):
    _iteration(reactive_guard, blocking=0.1, speculate=False)
    _iteration(reactive_guard, blocking=0.3, speculate=True)
    assert not reactive_guard.should_speculate(0)
    reactive_guard.reset()
    assert reactive_guard.should_speculate(0)
    assert reactive_guard.blocking_observed == 0.0
