"""Persistent result-store tests: atomicity, versioning, cross-process hits."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.experiments.runner as runner_module
from repro.errors import StoreError
from repro.experiments.runner import (
    ExperimentRunner,
    Scenario,
    ScenarioResult,
    scenario_hash,
)
from repro.service.store import STORE_FORMAT_VERSION, STORE_MAGIC, ResultStore

SRC = Path(__file__).resolve().parents[1] / "src"


def make_result(config_hash: str = "ab" * 32, name: str = "point") -> ScenarioResult:
    """A hand-built result: exercising the store must not need a simulation."""
    return ScenarioResult(
        name=name,
        backend="ideal",
        config_hash=config_hash,
        num_iterations=1,
        knobs={"network_mode": "analytic"},
        iteration_times=(0.125, 0.25),
        reconfigurations=(0, 1),
        reconfig_blocking=(0.0, 0.0625),
        metrics={"mean_iteration_time": 0.1875},
        worker="123:MainThread",
        wall_time=0.5,
    )


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


# --------------------------------------------------------------------------- #
# Round trip + layout
# --------------------------------------------------------------------------- #


def test_roundtrip_is_bit_identical(store):
    result = make_result()
    assert store.put(result) is True
    loaded = store.get(result.config_hash)
    assert loaded == result
    assert isinstance(loaded.iteration_times, tuple)
    assert loaded.iteration_times == (0.125, 0.25)


def test_entries_are_sharded_by_hash_prefix(store):
    result = make_result(config_hash="cd" + "0" * 62)
    store.put(result)
    path = store.root / "results" / "cd" / (result.config_hash + ".json")
    assert path.exists()
    envelope = json.loads(path.read_text())
    assert envelope["format"] == STORE_MAGIC
    assert envelope["version"] == STORE_FORMAT_VERSION
    assert envelope["config_hash"] == result.config_hash


def test_put_refuses_to_overwrite_existing_entry(store):
    result = make_result()
    assert store.put(result) is True
    assert store.put(result) is False
    assert len(store) == 1


def test_absent_entry_is_none_not_error(store):
    assert store.get("0" * 64) is None
    assert store.get_envelope("0" * 64) is None
    assert ("0" * 64) not in store


@pytest.mark.parametrize(
    "bad_hash",
    ["", "short", "G" * 64, "ab" * 31 + "XY", "AB" * 32, "../../../etc/passwd"],
)
def test_invalid_hash_is_rejected_before_touching_disk(store, bad_hash):
    with pytest.raises(StoreError):
        store.get(bad_hash)


# --------------------------------------------------------------------------- #
# Atomicity: a killed worker cannot publish a partial entry
# --------------------------------------------------------------------------- #


def test_killed_worker_leaves_no_partial_entry(store, monkeypatch):
    result = make_result()

    def die_mid_write(fd):
        raise KeyboardInterrupt("worker killed mid-write")

    monkeypatch.setattr(os, "fsync", die_mid_write)
    with pytest.raises(KeyboardInterrupt):
        store.put(result)
    # Nothing published, nothing visible, temp file cleaned up.
    assert store.get(result.config_hash) is None
    assert list(store.hashes()) == []
    shard = store.root / "results" / result.config_hash[:2]
    assert not shard.exists() or list(shard.iterdir()) == []


def test_leftover_temp_files_are_invisible_to_readers(store):
    # A SIGKILLed process can leave the dot-prefixed temp file behind; it
    # must never surface as a (partial) entry.
    result = make_result()
    store.put(result)
    shard = store.root / "results" / result.config_hash[:2]
    (shard / ".tmp-orphan.json").write_text('{"truncated":')
    assert list(store.hashes()) == [result.config_hash]
    assert len(store) == 1
    assert store.get(result.config_hash) == result


# --------------------------------------------------------------------------- #
# Envelope discipline: refuse what we cannot vouch for
# --------------------------------------------------------------------------- #


def entry_path(store, config_hash):
    return store.root / "results" / config_hash[:2] / (config_hash + ".json")


def test_version_mismatch_is_refused(store):
    result = make_result()
    store.put(result)
    path = entry_path(store, result.config_hash)
    envelope = json.loads(path.read_text())
    envelope["version"] = 999
    path.write_text(json.dumps(envelope))
    with pytest.raises(StoreError, match="version"):
        store.get(result.config_hash)


def test_corrupt_json_is_refused(store):
    config_hash = "ef" + "1" * 62
    path = entry_path(store, config_hash)
    path.parent.mkdir(parents=True)
    path.write_text('{"format": "repro-sim-result", "version')
    with pytest.raises(StoreError, match="not valid JSON"):
        store.get(config_hash)


def test_foreign_file_is_refused(store):
    config_hash = "0d" + "2" * 62
    path = entry_path(store, config_hash)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"some": "other", "json": "file"}))
    with pytest.raises(StoreError, match="envelope"):
        store.get(config_hash)


def test_renamed_entry_is_refused(store):
    # Content addressing: the file name must match the hash inside.
    result = make_result()
    store.put(result)
    wrong_hash = "9" * 64
    src = entry_path(store, result.config_hash)
    dst = entry_path(store, wrong_hash)
    dst.parent.mkdir(parents=True, exist_ok=True)
    src.rename(dst)
    with pytest.raises(StoreError, match="content addressing"):
        store.get(wrong_hash)


# --------------------------------------------------------------------------- #
# Cross-process cache hits
# --------------------------------------------------------------------------- #

_WRITER_SCRIPT = """\
import json, sys
from repro.experiments.runner import Scenario, run_scenario
from repro.parallelism.workloads import small_test_workload
from repro.service.store import ResultStore
from repro.topology.devices import perlmutter_testbed

scenario = Scenario(
    workload=small_test_workload(),
    cluster=perlmutter_testbed(num_nodes=2),
    backend="ideal",
    num_iterations=1,
    name="xproc",
)
store = ResultStore(sys.argv[1])
result = run_scenario(scenario)
assert store.put(result) is True
print(json.dumps(result.to_dict()))
"""


def test_cross_process_cache_hit_is_bit_identical(
    tmp_path, tiny_workload, tiny_cluster, monkeypatch
):
    """A result simulated by another process is served from the store —
    without simulating — and is bit-identical to the writer's result."""
    store_dir = tmp_path / "shared-store"
    env = dict(os.environ, PYTHONPATH=str(SRC))
    completed = subprocess.run(
        [sys.executable, "-c", _WRITER_SCRIPT, str(store_dir)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    written = json.loads(completed.stdout)

    scenario = Scenario(
        workload=tiny_workload,
        cluster=tiny_cluster,
        backend="ideal",
        num_iterations=1,
        name="xproc",
    )
    assert scenario_hash(scenario) == written["config_hash"]

    # Prove the reader cannot simulate: any attempt must blow up.
    def forbidden(_scenario):
        raise AssertionError("served by simulation, not by the store")

    monkeypatch.setattr(runner_module, "_execute_scenario", forbidden)
    hits = []
    runner = ExperimentRunner(executor="serial", store=ResultStore(store_dir))
    results = runner.run_many(
        [scenario], on_hit=lambda result, tier: hits.append(tier)
    )
    assert hits == ["store"]
    assert runner.store_hits == 1

    loaded = results[0].to_dict()
    # Bit-identical simulation payload; only execution provenance differs.
    for key in (
        "config_hash",
        "iteration_times",
        "reconfigurations",
        "reconfig_blocking",
        "metrics",
        "num_iterations",
        "backend",
    ):
        assert loaded[key] == written[key], key


def test_store_survives_runner_cache_clear(tmp_path, tiny_workload, tiny_cluster):
    scenario = Scenario(
        workload=tiny_workload,
        cluster=tiny_cluster,
        backend="ideal",
        num_iterations=1,
    )
    store = ResultStore(tmp_path / "store")
    runner = ExperimentRunner(executor="serial", store=store)
    first = runner.run(scenario)
    assert len(store) == 1
    runner.clear_cache()
    again = runner.run(scenario)
    assert runner.store_hits == 1
    assert again.iteration_times == first.iteration_times
    assert again.metrics == first.metrics


def test_fresh_simulation_files_result_in_store(tmp_path, tiny_workload, tiny_cluster):
    scenario = Scenario(
        workload=tiny_workload,
        cluster=tiny_cluster,
        backend="ideal",
        num_iterations=1,
    )
    store = ResultStore(tmp_path / "store")
    runner = ExperimentRunner(executor="serial", store=store)
    result = runner.run(scenario)
    assert list(store.hashes()) == [result.config_hash]
    assert store.get(result.config_hash) == result
