"""Backend registry tests: lookup, knob validation, model construction."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.backends import (
    FabricBackend,
    available_backends,
    create_network,
    get_backend,
    register_backend,
)
from repro.parallelism.mesh import DeviceMesh
from repro.simulator.fabric_network import (
    FatTreeNetworkModel,
    OCSReconfigurableNetworkModel,
    RailOptimizedNetworkModel,
)
from repro.simulator.network import NetworkModel

EXPECTED_BACKENDS = {"photonic", "electrical", "ideal", "fattree", "railopt", "ocs"}


@pytest.fixture()
def tiny_mesh(tiny_workload, tiny_cluster):
    return DeviceMesh(tiny_workload.parallelism, tiny_cluster)


def test_registry_contains_all_builtin_backends():
    assert EXPECTED_BACKENDS <= set(available_backends())


def test_unknown_backend_raises_with_known_names():
    with pytest.raises(ConfigurationError, match="registered"):
        get_backend("carrier-pigeon")


def test_duplicate_registration_raises():
    spec = get_backend("ideal")
    with pytest.raises(ConfigurationError):
        register_backend(
            FabricBackend(name="ideal", description="dup", factory=spec.factory)
        )


@pytest.mark.parametrize("name", sorted(EXPECTED_BACKENDS))
def test_every_backend_builds_a_network_model(name, tiny_cluster, tiny_mesh):
    network = create_network(name, tiny_cluster, tiny_mesh)
    assert isinstance(network, NetworkModel)


def test_unknown_knob_is_rejected(tiny_cluster, tiny_mesh):
    with pytest.raises(ConfigurationError, match="does not accept"):
        create_network("ideal", tiny_cluster, tiny_mesh, warp_speed=True)


def test_backend_knobs_reach_the_model(tiny_cluster, tiny_mesh):
    network = create_network(
        "ocs", tiny_cluster, tiny_mesh, reconfiguration_delay=0.123
    )
    assert isinstance(network, OCSReconfigurableNetworkModel)
    assert network.reconfiguration_delay == pytest.approx(0.123)


def test_fattree_model_bottleneck_never_exceeds_port_bandwidth(
    tiny_cluster, tiny_mesh
):
    network = create_network("fattree", tiny_cluster, tiny_mesh)
    assert isinstance(network, FatTreeNetworkModel)
    # A cross-domain dp-style pair: ranks 0 and 4 live in different domains.
    link = network.group_link_parameters((0, 4))
    assert 0 < link.bandwidth <= tiny_cluster.scaleout_port_bandwidth
    assert link.latency > 0


def test_railopt_model_routes_along_the_rail(tiny_cluster, tiny_mesh):
    network = create_network("railopt", tiny_cluster, tiny_mesh)
    assert isinstance(network, RailOptimizedNetworkModel)
    link = network.group_link_parameters((0, 4))
    assert 0 < link.bandwidth <= tiny_cluster.scaleout_port_bandwidth


def test_ocs_model_charges_delay_only_on_schedule_changes(tiny_cluster, tiny_mesh):
    from repro.collectives.primitives import CollectiveOp, CollectiveType
    from repro.parallelism.dag import OpKind, Operation

    network = create_network(
        "ocs", tiny_cluster, tiny_mesh, reconfiguration_delay=0.5
    )
    op = Operation(
        op_id=0,
        kind=OpKind.COMMUNICATION,
        ranks=(0, 4),
        deps=(),
        collective=CollectiveOp(
            collective=CollectiveType.ALL_REDUCE,
            group=(0, 4),
            size_bytes=1e6,
            parallelism="dp",
        ),
    )
    first = network.timing(op, ready_time=0.0)
    assert first.start == pytest.approx(0.5)  # cold rails: pay the switch time
    assert len(first.reconfigs) == 1
    second = network.timing(op, ready_time=first.end)
    assert second.start == pytest.approx(second.end - first.duration)
    assert second.start == pytest.approx(first.end)  # schedule unchanged: free
    assert second.reconfigs == ()
