"""Closed-form checks of the ring/tree alpha–beta collective cost models."""

import math

import pytest

from repro.collectives.cost_model import LinkParameters, RingCostModel, TreeCostModel
from repro.collectives.primitives import CollectiveOp, CollectiveType

LINK = LinkParameters(bandwidth=50e9, latency=2e-6, per_message_overhead=5e-6)
ALPHA = LINK.latency + LINK.per_message_overhead
BETA = 1.0 / LINK.bandwidth


def _op(collective, n, size):
    return CollectiveOp(collective=collective, group=tuple(range(n)), size_bytes=size)


def test_link_parameters_expose_alpha_beta():
    assert LINK.alpha == pytest.approx(7e-6)
    assert LINK.beta == pytest.approx(2e-11)


@pytest.mark.parametrize("n,size", [(2, 1e6), (4, 64e6), (8, 512e6)])
def test_ring_allreduce_formula(n, size):
    # AllReduce over a ring: 2(n-1) steps, 2 S (n-1)/n bytes on the wire.
    expected = 2 * (n - 1) * ALPHA + 2.0 * size * (n - 1) / n * BETA
    got = RingCostModel().collective_time(_op(CollectiveType.ALL_REDUCE, n, size), LINK)
    assert got == pytest.approx(expected, rel=1e-12)


@pytest.mark.parametrize("n,size", [(2, 1e6), (4, 64e6)])
def test_ring_allgather_formula(n, size):
    # AllGather: (n-1) steps, S (n-1) bytes (per-rank shard convention).
    expected = (n - 1) * ALPHA + size * (n - 1) * BETA
    got = RingCostModel().collective_time(_op(CollectiveType.ALL_GATHER, n, size), LINK)
    assert got == pytest.approx(expected, rel=1e-12)


def test_ring_reduce_scatter_formula():
    n, size = 4, 32e6
    expected = (n - 1) * ALPHA + size * (n - 1) / n * BETA
    got = RingCostModel().collective_time(
        _op(CollectiveType.REDUCE_SCATTER, n, size), LINK
    )
    assert got == pytest.approx(expected, rel=1e-12)


def test_send_recv_formula():
    size = 16e6
    expected = ALPHA + size * BETA
    got = RingCostModel().collective_time(_op(CollectiveType.SEND_RECV, 2, size), LINK)
    assert got == pytest.approx(expected, rel=1e-12)


def test_single_rank_collectives_are_free():
    op = _op(CollectiveType.ALL_REDUCE, 1, 1e9)
    assert RingCostModel().collective_time(op, LINK) == 0.0
    assert TreeCostModel().collective_time(op, LINK) == 0.0


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_tree_allreduce_formula(n):
    # Double binary tree: log2(n) latency rounds, 2 S bandwidth term.
    size = 128e6
    rounds = max(1, math.ceil(math.log2(n)))
    expected = rounds * ALPHA + 2.0 * size * BETA
    got = TreeCostModel().collective_time(_op(CollectiveType.ALL_REDUCE, n, size), LINK)
    assert got == pytest.approx(expected, rel=1e-12)


def test_tree_beats_ring_on_latency_dominated_collectives():
    # Tiny payload, large group: the log2(n) latency term must win.
    op = _op(CollectiveType.ALL_REDUCE, 16, 1024)
    ring = RingCostModel().collective_time(op, LINK)
    tree = TreeCostModel().collective_time(op, LINK)
    assert tree < ring


def test_ring_beats_tree_on_bandwidth_dominated_allgather():
    # AllGather moves (n-1)S on a ring either way, but the ring never pays
    # more than tree's recursive-doubling latency for huge payloads.
    op = _op(CollectiveType.ALL_REDUCE, 4, 4e9)
    ring = RingCostModel().collective_time(op, LINK)
    tree = TreeCostModel().collective_time(op, LINK)
    # 2S(n-1)/n < 2S: ring sends strictly less on the wire.
    assert ring < tree
