"""Snapshot/restore/fork across every stateful layer.

Each layer — the event engine, the flow simulator, the topology, the
simulation session — must capture its state with ``snapshot()`` (or a
checkpoint file) and continue bit-for-bit identically after ``restore()``
or ``fork()``.  These tests exercise each layer in isolation plus the
end-to-end checkpoint file format; cross-layer equality over many seeds
lives in ``tests/test_properties.py``.
"""

from dataclasses import replace

import pytest

from repro.errors import SnapshotError
from repro.experiments.contention import (
    degraded_fabric_scenario,
    shared_uplink_incast_scenario,
)
from repro.experiments.runner import run_scenario
from repro.experiments.session import SimulationSession
from repro.simulator.engine import SimulationEngine
from repro.simulator.flows import FlowSimulator
from repro.simulator.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SimState,
    encode_callback,
    register_continuation,
)
from repro.topology.base import LinkKind, NodeKind, Topology

# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #

#: Event log of the registered test continuation (cleared per test).
_LOG = []


@register_continuation("tests.snapshot.log")
def _log_event(engine, payload):
    _LOG.append((engine.now, payload))
    if payload == "chain":
        engine.schedule_in(0.5, _log_event, "tail")


def test_engine_snapshot_restore_continues_identically():
    engine = SimulationEngine()
    engine.schedule(1.0, _log_event, "a")
    engine.schedule(2.0, _log_event, "chain")
    engine.run(until=1.5)
    assert _LOG == [(1.0, "a")]

    state = engine.snapshot()
    engine.run()
    expected_tail = _LOG[1:]
    expected_now = engine.now
    assert expected_tail == [(2.0, "chain"), (2.5, "tail")]

    _LOG.clear()
    fresh = SimulationEngine()
    fresh.restore(state)
    assert fresh.now == 1.5
    fresh.run()
    assert _LOG == expected_tail
    assert fresh.now == expected_now
    _LOG.clear()


def test_engine_snapshot_rejects_closure_callbacks():
    engine = SimulationEngine()
    engine.schedule(1.0, lambda _e, _p: None)
    with pytest.raises(SnapshotError, match="not snapshot-safe"):
        engine.snapshot()


def test_encode_callback_rejects_unregistered_functions():
    def local(_engine, _payload):
        pass

    with pytest.raises(SnapshotError, match="not snapshot-safe"):
        encode_callback(local)


def test_continuation_names_are_unique():
    with pytest.raises(SnapshotError, match="already registered"):

        @register_continuation("tests.snapshot.log")
        def _different(_engine, _payload):
            pass


def test_snapshot_kind_and_version_are_checked():
    engine = SimulationEngine()
    state = engine.snapshot()
    with pytest.raises(SnapshotError, match="cannot restore"):
        Topology(name="t").restore(state)
    stale = SimState(
        kind=state.kind,
        payload=state.payload,
        format_version=SNAPSHOT_FORMAT_VERSION + 1,
    )
    with pytest.raises(SnapshotError, match="format version"):
        SimulationEngine().restore(stale)


# --------------------------------------------------------------------------- #
# Flow simulator
# --------------------------------------------------------------------------- #


def _incast_sim():
    """Two flows sharing one bottleneck link, one arriving later."""
    topology = Topology(name="incast")
    for name in ("a", "b", "sink"):
        topology.add_node(name, NodeKind.ELECTRICAL_SWITCH)
    shared = topology.add_link(
        "b", "sink", bandwidth=1e9, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    feed = topology.add_link(
        "a", "b", bandwidth=2e9, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    sim = FlowSimulator()
    flows = [
        sim.add_flow((feed, shared), 1e9, start_time=0.0),
        sim.add_flow((shared,), 1e9, start_time=0.3),
    ]
    return sim, flows


def test_flow_simulator_forks_mid_transfer():
    straight_sim, straight_flows = _incast_sim()
    straight_sim.run()
    expected = [flow.finish_time for flow in straight_flows]

    sim, flows = _incast_sim()
    sim.run(until=0.5)  # both flows in flight, mid-contention
    forked = sim.fork()
    final = sim.run()
    assert [flow.finish_time for flow in flows] == expected
    # The fork continues to the same makespan as both full runs.
    assert forked.run() == final == max(expected)


def test_flow_simulator_fork_is_independent():
    sim, _ = _incast_sim()
    sim.run(until=0.5)
    forked = sim.fork()
    parent_clock = sim.engine.now
    forked.run()
    # Running the fork never moves the parent.
    assert sim.engine.now == parent_clock
    assert sim.active_flows  # parent still mid-transfer


# --------------------------------------------------------------------------- #
# Topology
# --------------------------------------------------------------------------- #


def _two_link_topology():
    topology = Topology(name="pair")
    topology.add_node("a", NodeKind.ELECTRICAL_SWITCH)
    topology.add_node("b", NodeKind.ELECTRICAL_SWITCH)
    first = topology.add_link(
        "a", "b", bandwidth=1e9, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    second = topology.add_link(
        "a", "b", bandwidth=2e9, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    return topology, first, second


def test_topology_restore_heals_the_same_link_objects():
    topology, first, second = _two_link_topology()
    state = topology.snapshot()
    version = topology.version

    topology.fail_link(first.link_id)
    topology.degrade_link(second.link_id, 0.5)
    topology.restore(state)

    # Health lands on the *existing* Link objects (identity preserved), and
    # the version only ever moves forward so route caches cannot be poisoned
    # by a rewind.
    assert topology.link(first.link_id) is first
    assert not topology.failed_links()
    assert second.bandwidth == 2e9
    assert topology.version > version


def test_topology_restore_rejects_structural_mismatch():
    topology, _, _ = _two_link_topology()
    state = topology.snapshot()
    other = Topology(name="pair")
    other.add_node("a", NodeKind.ELECTRICAL_SWITCH)
    other.add_node("b", NodeKind.ELECTRICAL_SWITCH)
    other.add_link("a", "b", bandwidth=1e9, latency=0.0, kind=LinkKind.ELECTRICAL)
    with pytest.raises(SnapshotError, match="structurally"):
        other.restore(state)


# --------------------------------------------------------------------------- #
# Sessions and checkpoint files
# --------------------------------------------------------------------------- #


def _comparable(result):
    """Result fields that must survive a checkpoint (process-specific dropped)."""
    return (
        list(result.iteration_times),
        {key: value for key, value in result.metrics.items()},
        result.config_hash,
    )


def test_checkpoint_roundtrip_resumes_bit_for_bit(tmp_path):
    scenario = degraded_fabric_scenario(
        backend="fattree", condition="failed", num_iterations=3, fault_time=0.2
    )
    expected = _comparable(run_scenario(scenario))

    session = SimulationSession.start(scenario)
    session.run_to(1)
    path = tmp_path / "ckpt.bin"
    session.save(path)

    resumed = SimulationSession.load(path)
    resumed.run_to(scenario.num_iterations)
    assert _comparable(resumed.result()) == expected


def test_checkpoint_header_describes_progress(tmp_path):
    scenario = shared_uplink_incast_scenario(num_iterations=2)
    session = SimulationSession.start(scenario)
    session.run_to(1)
    path = tmp_path / "ckpt.bin"
    session.save(path)

    header = SimulationSession.read_header(path)
    assert header["format"] == "repro-sim-checkpoint"
    assert header["version"] == SNAPSHOT_FORMAT_VERSION
    assert header["scenario_name"] == scenario.name
    assert header["completed_iterations"] == 1
    assert header["clock"] == session.clock
    assert "payload" not in header


def test_checkpoint_rejects_foreign_files(tmp_path):
    path = tmp_path / "not_a_checkpoint.bin"
    path.write_bytes(b"garbage")
    with pytest.raises(SnapshotError):
        SimulationSession.read_header(path)
    with pytest.raises(SnapshotError):
        SimulationSession.load(path)


def test_session_fork_leaves_the_parent_untouched():
    scenario = shared_uplink_incast_scenario(num_iterations=3)
    parent = SimulationSession.start(scenario)
    parent.run_to(1)
    clock, completed = parent.clock, parent.completed

    child = parent.fork()
    child.run_to(3)
    assert (parent.clock, parent.completed) == (clock, completed)

    parent.run_to(3)
    assert _comparable(parent.result()) == _comparable(child.result())
    assert parent.fork_wall > 0.0


def test_session_result_refuses_unfinished_runs():
    scenario = shared_uplink_incast_scenario(num_iterations=2)
    session = SimulationSession.start(scenario)
    session.run_to(1)
    from repro.errors import ScenarioError

    with pytest.raises(ScenarioError):
        session.result()
    session.run_to(2)
    assert session.result().num_iterations == 2


def test_resume_can_run_past_the_original_iteration_count(tmp_path):
    scenario = shared_uplink_incast_scenario(num_iterations=2)
    session = SimulationSession.start(scenario)
    session.run_to(2)
    path = tmp_path / "done.bin"
    session.save(path)

    longer = SimulationSession.load(path)
    extended = replace(longer.scenario, num_iterations=4)
    longer.run_to(4)
    result = longer.result(scenario=extended)
    assert result.num_iterations == 4
    assert _comparable(result) == _comparable(
        run_scenario(replace(scenario, num_iterations=4))
    )
