"""Circuit-switched flow mode: photonic/OCS fabrics in the flow simulator.

Acceptance tests of the circuit-switched flow mode:

* the bundled provisioned contention-free scenario agrees with the analytic
  photonic model within 5% (tier-1 equivalence check);
* the bundled circuit-thrash scenario (alternating DP/EP axes defeating
  coalescing) is strictly slower at flow level — reconfiguration stalls and
  circuit contention the analytic model underprices;
* ``repro-sim run --backend photonic --network-mode flow`` works end to end;

plus unit coverage of the machinery underneath: topology versioning, the
version-keyed route cache, circuit install/tear hooks, deferred path
resolution, and torn-circuit rejection.
"""

import json

import pytest

from repro.errors import SimulationError
from repro.experiments.backends import create_network
from repro.experiments.cli import main
from repro.experiments.contention import (
    circuit_thrash_scenario,
    compare_network_modes,
    provisioned_photonic_scenario,
)
from repro.parallelism.config import ParallelismConfig
from repro.parallelism.mesh import DeviceMesh
from repro.simulator.flow_network import PhotonicFlowNetworkModel
from repro.simulator.flows import FlowSimulator
from repro.topology.base import LinkKind, NodeKind, Topology
from repro.topology.devices import perlmutter_testbed
from repro.topology.ocs import CircuitConfiguration
from repro.topology.photonic import RailEndpoint, build_photonic_rail_fabric


# --------------------------------------------------------------------------- #
# Acceptance: bundled scenarios
# --------------------------------------------------------------------------- #


def test_photonic_flow_matches_analytic_on_provisioned_scenario():
    comparison = compare_network_modes(provisioned_photonic_scenario())
    assert comparison.analytic_time > 0
    assert comparison.slowdown == pytest.approx(1.0, rel=0.05)


def test_circuit_thrash_flow_mode_is_strictly_slower():
    comparison = compare_network_modes(circuit_thrash_scenario())
    assert comparison.slowdown > 1.05, (
        "flow mode must expose the circuit contention and drain-coupled "
        "reconfiguration stalls the analytic model underprices, got slowdown "
        f"{comparison.slowdown:.4f}"
    )
    # The thrash is real: both modes keep reconfiguring in steady state
    # (the DP and EP configurations conflict on every rail).
    for result in (comparison.analytic, comparison.flow):
        assert all(count > 0 for count in result.reconfigurations[1:]), result


def test_cli_runs_photonic_flow_end_to_end(capsys):
    exit_code = main(
        [
            "run",
            "--backend",
            "photonic",
            "--network-mode",
            "flow",
            "--workload",
            "tiny",
            "--cluster",
            "perlmutter:2",
            "--iterations",
            "2",
        ]
    )
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["knobs"]["network_mode"] == "flow"
    assert all(value > 0 for value in payload["iteration_times"])
    assert sum(payload["reconfigurations"]) > 0


def test_bare_ocs_flow_backend_reconfigures_on_demand(tiny_workload, tiny_cluster):
    from repro.experiments import ExperimentRunner, Scenario

    runner = ExperimentRunner(executor="serial")
    result = runner.run(
        Scenario(
            workload=tiny_workload,
            cluster=tiny_cluster,
            backend="ocs",
            knobs={"network_mode": "flow"},
            num_iterations=2,
            name="ocs-flow",
        )
    )
    assert all(value > 0 for value in result.iteration_times)
    # No profiling iteration on bare OCS: the cold-start switching events
    # land in iteration 0 and the same circuits serve iteration 1.
    assert result.reconfigurations[0] > 0


def test_network_mode_knob_selects_the_photonic_flow_model(tiny_workload, tiny_cluster):
    mesh = DeviceMesh(tiny_workload.parallelism, tiny_cluster)
    for backend in ("photonic", "ocs"):
        analytic = create_network(backend, tiny_cluster, mesh)
        flow = create_network(backend, tiny_cluster, mesh, network_mode="flow")
        assert not getattr(analytic, "flow_mode", False)
        assert isinstance(flow, PhotonicFlowNetworkModel)


def test_photonic_flow_model_is_reusable_across_training_runs(
    tiny_workload, tiny_cluster
):
    from repro.parallelism.dag import build_iteration_dag
    from repro.simulator.executor import DAGExecutor

    dag = build_iteration_dag(tiny_workload, tiny_cluster)
    network = create_network("photonic", tiny_cluster, dag.mesh, network_mode="flow")
    executor = DAGExecutor(dag, tiny_cluster, network)
    first = executor.run_training(2)
    # A second run rewinds simulated time to 0: the model must reset the
    # control plane (circuits, profiles, clocks) and reproduce the first run.
    second = executor.run_training(2)
    assert [i.end for i in second.iterations] == [i.end for i in first.iterations]


def test_analytic_fallback_refuses_to_tear_live_circuits():
    from repro.collectives.primitives import CollectiveOp, CollectiveType
    from repro.parallelism.dag import OpKind, Operation

    cluster = perlmutter_testbed(num_nodes=4)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=4), cluster)
    network = create_network("photonic", cluster, mesh, network_mode="flow")

    def _op(op_id, collective, group):
        return Operation(
            op_id=op_id,
            kind=OpKind.COMMUNICATION,
            ranks=group,
            deps=(),
            collective=CollectiveOp(
                collective=collective, group=group, size_bytes=1e6, parallelism="dp"
            ),
        )

    # An expanded collective holds the (domain 0, domain 1) circuit on rail 0
    # while its flows are on the wire...
    network.begin_comm(_op(0, CollectiveType.ALL_GATHER, (0, 4)), 0.0, lambda end: None)
    # ...so an analytically-priced scale-out collective needing the
    # conflicting (domain 0, domain 2) circuit cannot be served: timing()
    # answers synchronously and must not tear live circuits.
    with pytest.raises(SimulationError, match="conflict with live flows"):
        network.timing(_op(1, CollectiveType.BROADCAST, (0, 8)), 0.0)


# --------------------------------------------------------------------------- #
# Topology versioning and the route cache
# --------------------------------------------------------------------------- #


def test_topology_version_bumps_on_link_changes():
    topology = Topology(name="versioned")
    topology.add_node("a", NodeKind.GPU)
    topology.add_node("b", NodeKind.GPU)
    before = topology.version
    link = topology.add_link("a", "b", bandwidth=1e9, latency=0.0, kind=LinkKind.HOST)
    assert topology.version == before + 1
    assert topology.has_link(link.link_id)
    topology.remove_link(link.link_id)
    assert topology.version == before + 2
    assert not topology.has_link(link.link_id)


def test_path_cache_invalidates_on_topology_version_bump(tiny_cluster):
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=2), tiny_cluster)
    network = create_network("photonic", tiny_cluster, mesh, network_mode="flow")
    fabric = network.fabric
    rail = fabric.rail(0)
    ring = rail.pairwise_configuration([(0, 1)])
    fabric.apply_configuration(0, ring)
    path = network.path_between(0, 4)
    assert any(link.kind == LinkKind.OPTICAL_CIRCUIT for link in path)
    assert network.path_between(0, 4) is path  # cached
    fabric.clear_rail(0)
    with pytest.raises(SimulationError):
        network.path_between(0, 4)
    fabric.apply_configuration(0, ring)
    fresh = network.path_between(0, 4)
    assert fresh is not path
    assert all(fabric.topology.has_link(link.link_id) for link in fresh)


def test_circuit_change_listeners_fire_on_install_and_tear(tiny_cluster):
    from repro.errors import CircuitError

    fabric = build_photonic_rail_fabric(tiny_cluster)
    events = []
    fabric.add_circuit_listener(events.append)
    configuration = fabric.rail(0).pairwise_configuration([(0, 1)])
    fabric.apply_configuration(0, configuration)
    (circuit,) = configuration.circuits
    assert fabric.circuit_links(0, circuit) == events[0].link_ids
    fabric.clear_rail(0)
    assert [event.installed for event in events] == [True, False]
    assert events[0].rail == 0
    assert events[0].link_ids == events[1].link_ids
    assert not any(
        fabric.topology.has_link(link_id) for link_id in events[1].link_ids
    )
    with pytest.raises(CircuitError):
        fabric.circuit_links(0, circuit)


# --------------------------------------------------------------------------- #
# Flow simulator: deferred routes and torn circuits
# --------------------------------------------------------------------------- #


def _two_node_topology():
    topology = Topology(name="pair")
    topology.add_node("a", NodeKind.GPU)
    topology.add_node("b", NodeKind.GPU)
    link = topology.add_link(
        "a", "b", bandwidth=100.0, latency=0.0, kind=LinkKind.OPTICAL_CIRCUIT
    )
    return topology, link


def test_deferred_path_resolution_resolves_at_flow_start():
    topology, link = _two_node_topology()
    simulator = FlowSimulator(topology=topology)
    resolutions = []

    def resolver():
        resolutions.append(simulator.engine.now)
        return (link,)

    flow = simulator.add_flow(resolver, size_bytes=100.0, start_time=2.0)
    assert flow.path == ()  # not resolved at scheduling time
    assert resolutions == []
    end = simulator.run()
    assert resolutions == [2.0]
    assert flow.path == (link,)
    assert end == pytest.approx(3.0)  # 100 B at 100 B/s from t=2


def test_flows_over_torn_links_raise_a_clear_error():
    topology, link = _two_node_topology()
    simulator = FlowSimulator(topology=topology)
    simulator.add_flow((link,), size_bytes=100.0, start_time=0.0)
    topology.remove_link(link.link_id)
    with pytest.raises(SimulationError, match="torn-down link"):
        simulator.run()


def test_deferred_flows_see_circuits_installed_after_scheduling(tiny_cluster):
    fabric = build_photonic_rail_fabric(tiny_cluster)
    simulator = FlowSimulator(topology=fabric.topology)
    rail = fabric.rail(0)

    def resolver():
        return fabric.topology.shortest_path("gpu0.nic0", "gpu4.nic0")

    flow = simulator.add_flow(resolver, size_bytes=1e6, start_time=1.0)
    # The circuit is installed between scheduling and flow start — exactly
    # what a switching event completing before the launch looks like.
    fabric.apply_configuration(
        0,
        CircuitConfiguration(
            (rail.circuit_between(RailEndpoint(0, 0), RailEndpoint(1, 0)),)
        ),
    )
    simulator.run()
    assert flow.finish_time is not None
    assert any(link.kind == LinkKind.OPTICAL_CIRCUIT for link in flow.path)


# --------------------------------------------------------------------------- #
# Reconfiguration records flow into the trace
# --------------------------------------------------------------------------- #


def test_flow_mode_reconfigurations_land_in_the_trace():
    from repro.experiments import ExperimentRunner

    runner = ExperimentRunner(executor="serial")
    scenario = provisioned_photonic_scenario(num_iterations=2)
    result = runner.run(scenario.with_knobs(network_mode="flow"))
    # Profiling iteration installs the DP circuits (one event per rail used);
    # the steady iteration reuses them.
    assert result.reconfigurations[0] == 4
    assert result.reconfigurations[1] == 0
