"""CLI tests: repro-sim backends / run / sweep / fig8 and the value parsers."""

import csv
import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main, parse_cluster, parse_grid, parse_value


# --------------------------------------------------------------------------- #
# Parsers
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "text,expected",
    [
        ("true", True),
        ("False", False),
        ("none", None),
        ("42", 42),
        ("0.015", 0.015),
        ("1e-5", 1e-5),
        ("ring", "ring"),
    ],
)
def test_parse_value(text, expected):
    assert parse_value(text) == expected


def test_parse_cluster_perlmutter():
    cluster = parse_cluster("perlmutter:2")
    assert cluster.num_gpus == 8


def test_parse_cluster_dgx():
    cluster = parse_cluster("dgx-h200:16:2")
    assert cluster.num_gpus == 16
    assert cluster.nic_ports_per_gpu == 2


def test_parse_cluster_rejects_unknown_family():
    with pytest.raises(ConfigurationError):
        parse_cluster("abacus:3")


def test_parse_grid():
    grid = parse_grid(["reconfiguration_delay=1e-5,0.015", "provisioning=false,true"])
    assert grid == {
        "reconfiguration_delay": [1e-5, 0.015],
        "provisioning": [False, True],
    }


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #


def test_backends_subcommand_lists_all_backends(capsys):
    assert main(["backends", "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert {"photonic", "electrical", "ideal", "fattree", "railopt", "ocs"} <= {
        row["name"] for row in rows
    }


@pytest.mark.parametrize(
    "backend", ["photonic", "electrical", "ideal", "fattree", "railopt", "ocs"]
)
def test_run_subcommand_works_on_every_backend(backend, capsys):
    code = main(
        [
            "run",
            "--backend",
            backend,
            "--workload",
            "tiny",
            "--cluster",
            "perlmutter:2",
            "--iterations",
            "1",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["backend"] == backend
    assert payload["metrics"]["mean_iteration_time"] > 0


@pytest.mark.parametrize("backend", ["electrical", "fattree", "railopt"])
def test_run_subcommand_accepts_the_flow_network_mode(backend, capsys):
    code = main(
        [
            "run",
            "--backend",
            backend,
            "--network-mode",
            "flow",
            "--workload",
            "tiny",
            "--cluster",
            "perlmutter:2",
            "--iterations",
            "1",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["knobs"]["network_mode"] == "flow"
    assert payload["metrics"]["mean_iteration_time"] > 0


def test_sweep_subcommand_accepts_a_network_mode_grid(capsys):
    code = main(
        [
            "sweep",
            "--backend",
            "electrical",
            "--workload",
            "tiny",
            "--cluster",
            "perlmutter:2",
            "--iterations",
            "1",
            "--grid",
            "network_mode=analytic,flow",
            "--executor",
            "serial",
        ]
    )
    assert code == 0
    rows = json.loads(capsys.readouterr().out)
    assert [row["knobs"]["network_mode"] for row in rows] == ["analytic", "flow"]


def test_run_subcommand_rejects_unknown_backend(capsys):
    assert main(["run", "--backend", "carrier-pigeon"]) == 2
    assert "unknown backend" in capsys.readouterr().err


def test_run_subcommand_rejects_unknown_workload(capsys):
    assert main(["run", "--workload", "cobol-monolith"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_run_subcommand_csv_output(capsys):
    code = main(
        ["run", "--backend", "ideal", "--iterations", "1", "--format", "csv"]
    )
    assert code == 0
    rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
    assert len(rows) == 1
    assert rows[0]["backend"] == "ideal"
    assert float(rows[0]["mean_iteration_time"]) > 0


def test_sweep_subcommand_runs_a_grid(capsys):
    code = main(
        [
            "sweep",
            "--backend",
            "ocs",
            "--iterations",
            "1",
            "--grid",
            "reconfiguration_delay=1e-5,0.015",
            "--workers",
            "2",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    rows = json.loads(captured.out)
    assert len(rows) == 2
    assert "2 points" in captured.err
    delays = [row["name"] for row in rows]
    assert delays == sorted(delays, key=lambda n: float(n.split("=")[1].rstrip("]")))


def test_sweep_subcommand_requires_a_grid(capsys):
    assert main(["sweep", "--backend", "ideal"]) == 2
    assert "--grid" in capsys.readouterr().err


def test_sweep_csv_includes_swept_knob_columns(capsys):
    code = main(
        [
            "sweep",
            "--backend",
            "ocs",
            "--iterations",
            "1",
            "--grid",
            "reconfiguration_delay=1e-5,0.015",
            "--format",
            "csv",
        ]
    )
    assert code == 0
    rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
    assert [float(row["reconfiguration_delay"]) for row in rows] == [1e-5, 0.015]


def test_single_point_sweep_still_emits_a_json_array(capsys):
    code = main(
        [
            "sweep",
            "--backend",
            "ideal",
            "--iterations",
            "1",
            "--grid",
            "num_iterations=1",
        ]
    )
    assert code == 0
    rows = json.loads(capsys.readouterr().out)
    assert isinstance(rows, list) and len(rows) == 1


def test_non_numeric_delay_inputs_get_clean_errors(capsys):
    assert main(["fig8", "--delays", "1e-5,abc"]) == 2
    assert "comma-separated seconds" in capsys.readouterr().err
    assert main(["run", "--backend", "ocs", "--knob", "reconfiguration_delay=fast"]) == 2
    assert "must be a number" in capsys.readouterr().err


def test_grid_resolves_technology_names(capsys):
    code = main(
        [
            "sweep",
            "--backend",
            "ocs",
            "--iterations",
            "1",
            "--grid",
            "technology=PLZT,Piezo",
        ]
    )
    assert code == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 2
    delays = [row["metrics"]["exposed_reconfig_time"] for row in rows]
    assert delays[0] < delays[1]  # PLZT switches ~6 orders faster than piezo


def test_fig8_subcommand(capsys, tmp_path):
    out = tmp_path / "fig8.json"
    code = main(
        [
            "fig8",
            "--delays",
            "1e-5,0.015",
            "--iterations",
            "2",
            "--output",
            str(out),
        ]
    )
    assert code == 0
    rows = json.loads(out.read_text())
    assert len(rows) == 4  # two delays x (provisioning off/on)
    for row in rows:
        assert row["normalized_iteration_time"] >= 1.0 - 1e-9
