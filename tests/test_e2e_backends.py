"""End-to-end regression: one tiny scenario through every registered backend.

Asserts the invariants any sane fabric model must satisfy: finite positive
iteration times, a monotonically advancing clock, and the ideal (zero-cost)
backend lower-bounding every real fabric.
"""

import math

import pytest

from repro.experiments import ExperimentRunner, Scenario, available_backends

ITERATIONS = 2


@pytest.fixture(scope="module")
def results(tiny_workload, tiny_cluster):
    runner = ExperimentRunner(max_workers=2)
    out = {}
    for name in available_backends():
        out[name] = runner.run(
            Scenario(
                workload=tiny_workload,
                cluster=tiny_cluster,
                backend=name,
                num_iterations=ITERATIONS,
                name=f"e2e-{name}",
            )
        )
    return out


def test_all_backends_were_exercised(results):
    assert {"photonic", "electrical", "ideal", "fattree", "railopt", "ocs"} <= set(
        results
    )


def test_iteration_times_are_finite_and_positive(results):
    for name, result in results.items():
        assert len(result.iteration_times) == ITERATIONS
        for value in result.iteration_times:
            assert math.isfinite(value), f"{name}: non-finite iteration time"
            assert value > 0, f"{name}: non-positive iteration time"


def test_simulation_clock_advances_monotonically(results):
    for name, result in results.items():
        # total_time is the end of the last iteration; every iteration adds a
        # positive makespan, so the cumulative clock must strictly increase.
        assert result.metrics["total_time"] >= sum(result.iteration_times) - 1e-9, name
        assert result.metrics["total_time"] > 0, name


def test_ideal_backend_lower_bounds_every_fabric(results):
    ideal = results["ideal"].metrics["steady_iteration_time"]
    for name, result in results.items():
        assert (
            result.metrics["steady_iteration_time"] >= ideal - 1e-12
        ), f"{name} beat the zero-cost network"


def test_real_fabrics_pay_for_communication(results):
    ideal = results["ideal"].metrics["steady_iteration_time"]
    for name in ("electrical", "photonic", "fattree", "railopt", "ocs"):
        assert results[name].metrics["steady_iteration_time"] > ideal, name
        assert results[name].metrics["scaleout_comm_time"] > 0, name


def test_only_circuit_fabrics_reconfigure(results):
    for name in ("electrical", "ideal", "fattree", "railopt"):
        assert sum(results[name].reconfigurations) == 0, name
    # The bare OCS fabric must pay at least the cold-start reconfiguration.
    assert sum(results["ocs"].reconfigurations) > 0
