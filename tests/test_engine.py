"""Unit tests for the discrete-event engine: ordering, FIFO ties, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import SimulationEngine


def test_events_execute_in_time_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(3.0, lambda _e, p: order.append(p), "late")
    engine.schedule(1.0, lambda _e, p: order.append(p), "early")
    engine.schedule(2.0, lambda _e, p: order.append(p), "middle")
    engine.run()
    assert order == ["early", "middle", "late"]
    assert engine.now == 3.0
    assert engine.events_processed == 3


def test_same_time_events_keep_fifo_order():
    engine = SimulationEngine()
    order = []
    for label in ("first", "second", "third"):
        engine.schedule(5.0, lambda _e, p: order.append(p), label)
    engine.run()
    assert order == ["first", "second", "third"]


def test_cancelled_events_are_skipped():
    engine = SimulationEngine()
    order = []
    keep = engine.schedule(1.0, lambda _e, p: order.append(p), "keep")
    drop = engine.schedule(2.0, lambda _e, p: order.append(p), "drop")
    drop.cancel()
    engine.run()
    assert order == ["keep"]
    assert engine.events_processed == 1
    assert keep.cancelled is False


def test_pending_excludes_cancelled_events():
    engine = SimulationEngine()
    keep = engine.schedule(1.0, lambda _e, _p: None)
    drop_head = engine.schedule(0.5, lambda _e, _p: None)
    drop_tail = engine.schedule(2.0, lambda _e, _p: None)
    assert engine.pending == 3
    drop_tail.cancel()
    assert engine.pending == 2
    drop_head.cancel()
    assert engine.pending == 1
    # Double-cancel must not corrupt the live-event count.
    drop_head.cancel()
    assert engine.pending == 1
    keep.cancel()
    assert engine.pending == 0
    engine.run()
    assert engine.events_processed == 0


def test_cancelling_an_already_executed_event_leaves_pending_intact():
    engine = SimulationEngine()
    fired = engine.schedule(1.0, lambda _e, _p: None)
    engine.schedule(2.0, lambda _e, _p: None)
    engine.step()
    # The "cancel a possibly-fired timeout" pattern: a late cancel of an
    # event that already ran must not corrupt the live-event count.
    fired.cancel()
    assert engine.pending == 1
    engine.run()
    assert engine.events_processed == 2


def test_next_event_time_skips_cancelled_heads():
    engine = SimulationEngine()
    first = engine.schedule(1.0, lambda _e, _p: None)
    engine.schedule(2.0, lambda _e, _p: None)
    assert engine.next_event_time == 1.0
    first.cancel()
    assert engine.next_event_time == 2.0
    engine.run()
    assert engine.next_event_time is None


def test_scheduling_in_the_past_raises():
    engine = SimulationEngine()
    engine.schedule(2.0, lambda _e, _p: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(1.0, lambda _e, _p: None)
    with pytest.raises(SimulationError):
        engine.schedule_in(-0.5, lambda _e, _p: None)


def test_events_scheduled_from_callbacks_run_in_order():
    engine = SimulationEngine()
    order = []

    def chain(eng, payload):
        order.append(payload)
        if payload < 3:
            eng.schedule_in(1.0, chain, payload + 1)

    engine.schedule(0.0, chain, 1)
    engine.run()
    assert order == [1, 2, 3]
    assert engine.now == 2.0


def test_run_until_stops_the_clock_without_draining():
    engine = SimulationEngine()
    fired = []
    engine.schedule(1.0, lambda _e, p: fired.append(p), "a")
    engine.schedule(10.0, lambda _e, p: fired.append(p), "b")
    stopped_at = engine.run(until=5.0)
    assert fired == ["a"]
    assert stopped_at == 5.0
    assert engine.pending == 1


def test_run_until_advances_the_clock_on_an_empty_queue():
    """``run(until=t)`` must land the clock on ``t`` even with nothing queued.

    The clock used to stay wherever the last event left it when the queue
    drained before ``until``, so a subsequent ``schedule(now + dt)`` computed
    against a stale instant — visible as faults scheduled relative to ``now``
    landing in the past after an idle window.
    """
    engine = SimulationEngine()
    assert engine.run(until=3.0) == 3.0
    assert engine.now == 3.0  # empty queue from the start

    fired = []
    engine.schedule(4.0, lambda _e, p: fired.append(p), "a")
    assert engine.run(until=9.0) == 9.0
    assert fired == ["a"]
    assert engine.now == 9.0  # queue drained at 4.0, clock still reaches 9.0

    # A later `until` in the past of the clock must never rewind it.
    assert engine.run(until=1.0) == 9.0
    assert engine.now == 9.0


def test_event_budget_guards_runaway_loops():
    engine = SimulationEngine()

    def forever(eng, _payload):
        eng.schedule_in(1.0, forever)

    engine.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        engine.run(max_events=100)
