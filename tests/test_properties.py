"""Property-based differential harness: seeded random fabrics and flow mixes.

Each case builds a small random topology (a connected line plus random chords,
random per-link capacities) and a random mix of point-to-point transfers
routed over it, then asserts invariants that must hold for *any* such input:

* **flow >= analytic** — the flow-level completion of every transfer is never
  earlier than its analytic lower bound (size / path bottleneck + latency);
  max–min fair sharing can only slow a flow down, never speed it up;
* **equality when contention-free** — when the sampled paths are pairwise
  link-disjoint, the two models agree exactly;
* **capacity feasibility** — max–min fair allocations never oversubscribe any
  link, including on degraded capacity sets;
* **degradation monotonicity** — degrading a random subset of links never
  *decreases* the makespan of the same flow mix;
* **allocator agreement** — the numpy water-filling and the pure-Python
  progressive filling agree bit-for-bit, including on faulted (links removed)
  and degraded (capacities scaled) variants of the sharing graph.

Everything is seeded (25 cases per invariant in tier-1) so the suite is
deterministic — no flakes, no hypothesis dependency.
"""

import math
import random

import pytest

from repro.simulator.flows import (
    FlowSimulator,
    _max_min_fair_rates_numpy,
    _max_min_fair_rates_python,
    max_min_fair_rates,
)
from repro.topology.base import LinkKind, NodeKind, Topology

SEEDS = range(25)

_CAPACITIES = (50.0, 100.0, 200.0, 400.0)


def _random_topology(rng):
    """A connected random digraph: a bidirectional line plus random chords."""
    num_nodes = rng.randint(4, 9)
    topology = Topology(name="random")
    names = [f"n{i}" for i in range(num_nodes)]
    for name in names:
        topology.add_node(name, NodeKind.GPU)
    for i in range(num_nodes - 1):
        topology.add_bidirectional_link(
            names[i],
            names[i + 1],
            bandwidth=rng.choice(_CAPACITIES),
            latency=rng.choice([0.0, 1e-6]),
            kind=LinkKind.ELECTRICAL,
        )
    for _ in range(rng.randint(0, num_nodes)):
        a, b = rng.sample(names, 2)
        topology.add_bidirectional_link(
            a,
            b,
            bandwidth=rng.choice(_CAPACITIES),
            latency=rng.choice([0.0, 1e-6]),
            kind=LinkKind.ELECTRICAL,
        )
    return topology, names


def _random_transfers(rng, topology, names):
    """Random (path, size) transfers routed over the topology."""
    transfers = []
    for _ in range(rng.randint(2, 8)):
        src, dst = rng.sample(names, 2)
        path = tuple(topology.shortest_path(src, dst))
        size = rng.choice([1e3, 1e4, 1e5]) * rng.randint(1, 9)
        transfers.append((path, size))
    return transfers


def _analytic_time(path, size):
    """The alpha-beta lower bound: bottleneck-rate drain plus path latency."""
    bottleneck = min(link.bandwidth for link in path)
    latency = sum(link.latency for link in path)
    return size / bottleneck + latency


def _run_flow(transfers):
    """Simulate the transfers together from t=0; returns per-flow finishes."""
    sim = FlowSimulator()
    flows = [
        sim.add_flow(path, size, start_time=0.0) for path, size in transfers
    ]
    sim.run()
    return [flow.finish_time for flow in flows]


@pytest.mark.parametrize("seed", SEEDS)
def test_flow_time_never_beats_the_analytic_bound(seed):
    rng = random.Random(seed)
    topology, names = _random_topology(rng)
    transfers = _random_transfers(rng, topology, names)
    finishes = _run_flow(transfers)
    for (path, size), finish in zip(transfers, finishes):
        bound = _analytic_time(path, size)
        assert finish >= bound * (1 - 1e-9), (path, size, finish, bound)


@pytest.mark.parametrize("seed", SEEDS)
def test_flow_equals_analytic_when_paths_are_disjoint(seed):
    rng = random.Random(seed)
    topology, names = _random_topology(rng)
    transfers = _random_transfers(rng, topology, names)
    # Keep only transfers that share no link with an earlier-kept one.
    used = set()
    disjoint = []
    for path, size in transfers:
        keys = {link.key for link in path}
        if keys & used:
            continue
        used |= keys
        disjoint.append((path, size))
    finishes = _run_flow(disjoint)
    for (path, size), finish in zip(disjoint, finishes):
        assert finish == pytest.approx(_analytic_time(path, size), rel=1e-9)


def _per_link_load(transfers, rates):
    load = {}
    capacity = {}
    for index, (path, _size) in enumerate(transfers):
        rate = rates[index]
        if math.isinf(rate):
            continue
        for link in path:
            load[link.key] = load.get(link.key, 0.0) + rate
            capacity[link.key] = link.bandwidth
    return load, capacity


@pytest.mark.parametrize("seed", SEEDS)
def test_max_min_allocation_never_oversubscribes_a_link(seed):
    rng = random.Random(seed)
    topology, names = _random_topology(rng)
    transfers = _random_transfers(rng, topology, names)
    # Degrade a random subset of links first: feasibility must hold against
    # whatever capacities the fabric currently has.
    for link in topology.links():
        if rng.random() < 0.3:
            topology.degrade_link(link.link_id, rng.choice([0.1, 0.5, 0.9]))
    sim = FlowSimulator()
    flows = [
        sim.add_flow(path, size, start_time=0.0) for path, size in transfers
    ]
    sim.engine.run(until=0.0)  # start the flows, allocating rates
    rates = [flow.rate for flow in flows]
    load, capacity = _per_link_load(transfers, rates)
    for key, total in load.items():
        assert total <= capacity[key] * (1 + 1e-9), (key, total, capacity[key])


@pytest.mark.parametrize("seed", SEEDS)
def test_degrading_links_never_decreases_the_makespan(seed):
    rng = random.Random(seed)
    topology, names = _random_topology(rng)
    transfers = _random_transfers(rng, topology, names)
    healthy_makespan = max(_run_flow(transfers))
    degraded_any = False
    for link in topology.links():
        if rng.random() < 0.4:
            topology.degrade_link(link.link_id, rng.choice([0.1, 0.5, 0.9]))
            degraded_any = True
    if not degraded_any:
        first = topology.links()[0]
        topology.degrade_link(first.link_id, 0.5)
    degraded_makespan = max(_run_flow(transfers))
    assert degraded_makespan >= healthy_makespan * (1 - 1e-9)


@pytest.mark.parametrize("seed", SEEDS)
def test_allocators_agree_on_faulted_and_degraded_link_sets(seed):
    from repro.simulator.flows import Flow

    rng = random.Random(seed)
    topology, names = _random_topology(rng)
    transfers = _random_transfers(rng, topology, names)
    # Degrade some capacities in place (mutates link.bandwidth)...
    for link in topology.links():
        if rng.random() < 0.3:
            topology.degrade_link(link.link_id, rng.choice([0.1, 0.5]))
    # ...and model failures of non-path links by a capacities override that
    # zeroes a random *unused* link (failed links under live flows raise in
    # the simulator; the allocators themselves only see capacity sets).
    used = {link.key for path, _size in transfers for link in path}
    overrides = {}
    for link in topology.links():
        if link.key not in used and rng.random() < 0.2:
            overrides[link.key] = 0.0
    flows = [
        Flow(flow_id=i, path=path, size_bytes=size, start_time=0.0)
        for i, (path, size) in enumerate(transfers)
    ]
    reference = _max_min_fair_rates_python(flows, overrides or None)
    vectorized = _max_min_fair_rates_numpy(flows, overrides or None)
    dispatched = max_min_fair_rates(flows, overrides or None)
    assert reference.keys() == vectorized.keys() == dispatched.keys()
    for flow_id, expected in reference.items():
        assert vectorized[flow_id] == pytest.approx(expected, rel=1e-9)
        assert dispatched[flow_id] == pytest.approx(expected, rel=1e-9)


# --------------------------------------------------------------------- #
# ε-approximate allocation: bounded, monotone, and exact at ε = 0
# --------------------------------------------------------------------- #

_EPSILONS = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)


def _run_flow_with_knobs(transfers, **knobs):
    sim = FlowSimulator(**knobs)
    flows = [
        sim.add_flow(path, size, start_time=0.0) for path, size in transfers
    ]
    sim.run()
    return [flow.finish_time for flow in flows]


def _incast_makespan(epsilon):
    """24 staggered flows through one 100-B/s link; returns the makespan.

    Sizes 1000·(i+1) make completions arrive one at a time, so every
    completion is a chance for ε-approximation to skip redistributing the
    freed bandwidth — the construction maximizes divergence pressure.
    """
    topology = Topology(name="incast")
    topology.add_node("a", NodeKind.GPU)
    topology.add_node("b", NodeKind.GPU)
    topology.add_bidirectional_link(
        "a", "b", bandwidth=100.0, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    path = tuple(topology.shortest_path("a", "b"))
    sim = FlowSimulator(allocator_epsilon=epsilon)
    flows = [
        sim.add_flow(path, 1000.0 * (i + 1), start_time=0.0) for i in range(24)
    ]
    sim.run()
    return max(flow.finish_time for flow in flows)


def test_epsilon_divergence_is_bounded_and_monotone():
    makespans = [_incast_makespan(epsilon) for epsilon in _EPSILONS]
    exact = makespans[0]
    for epsilon, makespan in zip(_EPSILONS, makespans):
        # An ε-approximate run never under-runs the exact engine (skipped
        # redistribution only leaves bandwidth idle) and its makespan stays
        # within the advertised (1 + ε) envelope.
        assert makespan >= exact * (1 - 1e-9)
        assert makespan <= exact * (1 + epsilon) * (1 + 1e-9), (epsilon, makespan)
    for smaller, larger in zip(makespans, makespans[1:]):
        assert larger >= smaller * (1 - 1e-9)


@pytest.mark.parametrize("seed", SEEDS)
def test_epsilon_zero_with_explicit_knobs_is_bit_identical(seed):
    rng = random.Random(seed)
    topology, names = _random_topology(rng)
    transfers = _random_transfers(rng, topology, names)
    baseline = _run_flow(transfers)
    explicit = _run_flow_with_knobs(
        transfers, allocator_epsilon=0.0, coarsen_quantum=0.0, fill_workers=0
    )
    assert explicit == baseline  # bitwise, not approx


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_water_filling_is_bit_identical_to_serial(seed):
    rng = random.Random(seed)
    topology, names = _random_topology(rng)
    transfers = _random_transfers(rng, topology, names)
    serial = _run_flow(transfers)
    parallel = _run_flow_with_knobs(transfers, fill_workers=2)
    assert parallel == serial  # bitwise, not approx


@pytest.mark.parametrize("seed", SEEDS)
def test_epsilon_allocation_never_oversubscribes_a_link(seed):
    rng = random.Random(seed)
    topology, names = _random_topology(rng)
    transfers = _random_transfers(rng, topology, names)
    sim = FlowSimulator(allocator_epsilon=0.25)
    flows = [
        sim.add_flow(path, size, start_time=0.0) for path, size in transfers
    ]
    sim.engine.run(until=0.0)  # start the flows, allocating rates
    rates = [flow.rate for flow in flows]
    load, capacity = _per_link_load(transfers, rates)
    for key, total in load.items():
        assert total <= capacity[key] * (1 + 1e-9), (key, total, capacity[key])


# --------------------------------------------------------------------------- #
# Routing policies: single bit-identity, multipath feasibility, spray sums
# --------------------------------------------------------------------------- #


def _policy_model(policy):
    """A mini fat-tree flow model (4 nodes, radix-4 switches) under a policy."""
    from repro.experiments.contention import mini_fat_tree_cluster
    from repro.parallelism.config import ParallelismConfig
    from repro.parallelism.mesh import DeviceMesh
    from repro.simulator.flow_network import fat_tree_flow_network

    cluster = mini_fat_tree_cluster(num_nodes=4)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=4), cluster)
    return fat_tree_flow_network(cluster, mesh, routing_policy=policy)


def _random_rank_transfers(rng, num_ranks=16):
    transfers = []
    for _ in range(rng.randint(2, 8)):
        src, dst = rng.sample(range(num_ranks), 2)
        size = rng.choice([1e5, 1e6, 1e7]) * rng.randint(1, 9)
        transfers.append((src, dst, size))
    return transfers


@pytest.mark.parametrize("seed", SEEDS)
def test_single_policy_trace_is_bit_identical_to_default(seed):
    """routing_policy='single' must not perturb a single event time.

    The policy knob's default lane is load-bearing for every committed golden
    trace: an explicit 'single' takes the identical code path (no router is
    even instantiated), so seeded random send/recv mixes must replay
    bit-for-bit — equality on floats, not approx.
    """
    from repro.experiments.backends import create_network
    from repro.experiments.contention import mini_fat_tree_cluster
    from repro.parallelism.config import ParallelismConfig
    from repro.parallelism.mesh import DeviceMesh
    from repro.parallelism.workloads import small_test_workload
    from repro.simulator.executor import DAGExecutor

    rng = random.Random(seed)
    cluster = mini_fat_tree_cluster(num_nodes=4)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=4), cluster)
    workload = small_test_workload(pp=1, dp=4, tp=4)
    pairs = [(src, dst) for src, dst, _ in _random_rank_transfers(rng)]
    size = rng.choice([1e6, 1e7])

    def _trace(**knobs):
        from tests.test_flow_network import _send_recv_dag

        dag = _send_recv_dag(workload, mesh, pairs, size)
        network = create_network(
            "fattree", cluster, mesh, network_mode="flow", **knobs
        )
        return DAGExecutor(dag, cluster, network).run_training(1)

    default = _trace()
    explicit = _trace(routing_policy="single")
    default_records = [
        (r.tag, r.start, r.end) for r in default.iterations[0].comm_records
    ]
    explicit_records = [
        (r.tag, r.start, r.end) for r in explicit.iterations[0].comm_records
    ]
    assert default_records == explicit_records  # bitwise, not approx


@pytest.mark.parametrize("policy", ("ecmp", "adaptive"))
@pytest.mark.parametrize("seed", SEEDS)
def test_multipath_allocations_never_oversubscribe_a_link(seed, policy):
    """Policy-chosen paths must stay feasible under max-min fair sharing."""
    rng = random.Random(seed)
    model = _policy_model(policy)
    router = model._router
    sim = model.simulator
    transfers = _random_rank_transfers(rng)
    flows = []
    paths = []
    for index, (src, dst, size) in enumerate(transfers):
        path = router.resolve(src, dst, salt=index)
        paths.append(path)
        flows.append(sim.add_flow(path, size, start_time=0.0))
    sim.engine.run(until=0.0)  # start the flows, allocating rates
    load, capacity = _per_link_load(
        [(path, size) for path, (_, _, size) in zip(paths, transfers)],
        [flow.rate for flow in flows],
    )
    for key, total in load.items():
        assert total <= capacity[key] * (1 + 1e-9), (key, total, capacity[key])


@pytest.mark.parametrize("seed", SEEDS)
def test_ecmp_resolution_is_deterministic_and_equal_cost(seed):
    rng = random.Random(seed)
    model = _policy_model("ecmp")
    router = model._router
    for index, (src, dst, _size) in enumerate(_random_rank_transfers(rng)):
        path_set = router.path_set(src, dst)
        chosen = router.resolve(src, dst, salt=index)
        again = router.resolve(src, dst, salt=index)
        assert chosen is again, "same coordinates must share the path tuple"
        assert chosen in path_set
        hops = {len(path) for path in path_set}
        assert hops == {len(chosen)}, "every candidate must be minimum-hop"


@pytest.mark.parametrize("seed", SEEDS)
def test_spray_subflow_sizes_sum_exactly_to_the_transfer_size(seed):
    from repro.collectives.schedule import Transfer

    rng = random.Random(seed)
    model = _policy_model("spray")
    router = model._router
    for index, (src, dst, size) in enumerate(_random_rank_transfers(rng)):
        items = router.transfer_items(
            Transfer(src=src, dst=dst, size_bytes=size),
            step_index=index,
            position=0,
            deferred=False,
        )
        assert sum(share for _path, share in items) == size  # bitwise
        assert all(share > 0.0 for _path, share in items)
        if len(router.path_set(src, dst)) > 1:
            assert len(items) > 1, "multipath pairs must actually spray"
            routes = {tuple(link.link_id for link in path) for path, _ in items}
            assert len(routes) == len(items), "sub-flows must take distinct paths"


# --------------------------------------------------------------------------- #
# Fork-sweeps vs independent straight runs
# --------------------------------------------------------------------------- #

#: (backend, network mode, fault kinds that combination supports) — the three
#: network-model families, with seeded random fault schedules drawn from each
#: family's supported kinds.
_FORK_FAMILIES = None  # populated lazily; the imports are heavier than flows'


def _fork_families():
    global _FORK_FAMILIES
    if _FORK_FAMILIES is None:
        from repro.simulator.faults import FaultKind

        _FORK_FAMILIES = (
            ("fattree", "analytic", (FaultKind.COMPUTE_SLOWDOWN,)),
            (
                "fattree",
                "flow",
                (
                    FaultKind.COMPUTE_SLOWDOWN,
                    FaultKind.LINK_DEGRADE,
                    FaultKind.LINK_FAIL,
                ),
            ),
            (
                "photonic",
                "flow",
                (
                    FaultKind.COMPUTE_SLOWDOWN,
                    FaultKind.LINK_DEGRADE,
                    FaultKind.LINK_FAIL,
                ),
            ),
        )
    return _FORK_FAMILIES


def _random_fault_event(rng, backend, kinds, time):
    from repro.simulator.faults import FaultEvent, FaultKind

    kind = rng.choice(kinds)
    if kind is FaultKind.COMPUTE_SLOWDOWN:
        return FaultEvent(
            time=time,
            kind=kind,
            rank=rng.choice((None, 0, 1)),
            factor=round(rng.uniform(1.1, 2.0), 3),
        )
    if kind is FaultKind.LINK_DEGRADE:
        return FaultEvent(
            time=time,
            kind=kind,
            link_kind="host" if backend == "photonic" else "electrical",
            fraction=round(rng.uniform(0.6, 0.95), 3),
        )
    # LINK_FAIL: the degraded-fabric family's NIC-attachment failure — the
    # one link whose loss genuinely shrinks the bottleneck cut on every
    # backend (parallel fabric links are absorbed by single-path routing).
    return FaultEvent(time=time, kind=kind, src="gpu0", dst="gpu0.nic*")


def _random_fork_grid(rng, seed):
    """Three scenarios differing only in seeded random fault schedules.

    Some seeds produce no fault plans at all (members then differ in
    iteration count: the divergence-free fast path), some share a leading
    event (a non-empty common prefix), and members may coincide entirely
    (exercising memoization around the fork path).
    """
    from dataclasses import replace

    from repro.experiments.contention import degraded_fabric_scenario
    from repro.simulator.faults import FaultPlan

    backend, mode, kinds = _fork_families()[seed % len(_fork_families())]
    base = lambda n: degraded_fabric_scenario(
        backend=backend,
        condition="healthy",
        network_mode=mode,
        num_iterations=n,
    )
    if rng.random() < 0.25:  # no faults anywhere: members differ in length
        return [
            replace(base(n), name=f"fork-{backend}-{mode}-n{n}")
            for n in (1, 2, 3)
        ]
    iterations = rng.choice((2, 3))
    shared_event = (
        _random_fault_event(rng, backend, kinds, 0.1)
        if rng.random() < 0.5
        else None
    )
    from repro.simulator.faults import FaultKind

    scenarios = []
    for member in range(3):
        events = [] if shared_event is None else [shared_event]
        for _ in range(rng.randint(0, 2)):
            # The NIC-attachment LINK_FAIL kills every matching link at
            # once, so a second one would find nothing to fail — keep at
            # most one per plan.
            available = tuple(
                kind
                for kind in kinds
                if kind is not FaultKind.LINK_FAIL
                or not any(e.kind is FaultKind.LINK_FAIL for e in events)
            )
            events.append(
                _random_fault_event(
                    rng, backend, available, round(rng.uniform(0.15, 0.35), 3)
                )
            )
        scenario = base(iterations)
        knobs = dict(scenario.knobs)
        if events:
            knobs["faults"] = FaultPlan(
                events=tuple(sorted(events, key=lambda event: event.time))
            )
        scenarios.append(
            replace(
                scenario,
                knobs=knobs,
                name=f"fork-{backend}-{mode}-m{member}",
            )
        )
    return scenarios


@pytest.mark.parametrize("seed", SEEDS)
def test_fork_sweeps_equal_independent_straight_runs(seed):
    """``run_many(fork=True)`` is bit-for-bit ``run_many()`` on any grid.

    Shared-prefix forking is a pure execution strategy: for seeded random
    grids over all three network-model families — analytic, flow, and
    photonic flow, with and without fault plans — every member's iteration
    times *and* every metric (including allocator work counters, the most
    fragile state across a fork) must equal an independent straight run's.
    """
    from repro.experiments.runner import ExperimentRunner

    rng = random.Random(seed)
    scenarios = _random_fork_grid(rng, seed)
    straight = ExperimentRunner().run_many(scenarios)
    forked = ExperimentRunner().run_many(scenarios, fork=True)
    for scenario, one, other in zip(scenarios, straight, forked):
        assert list(one.iteration_times) == list(other.iteration_times), (
            scenario.name
        )
        assert dict(one.metrics) == dict(other.metrics), scenario.name
