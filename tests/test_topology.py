"""Topology construction tests: fat-tree port counts, rail-opt inventory, OCS."""

import pytest

from repro.errors import CircuitConflictError, CircuitError, TopologyError
from repro.topology.base import LinkKind, NodeKind, Topology, nic_port_node_name
from repro.topology.devices import dgx_h200_cluster, perlmutter_testbed
from repro.topology.fattree import build_fat_tree_fabric, fat_tree_inventory
from repro.topology.ocs import Circuit, CircuitConfiguration, OpticalCircuitSwitch
from repro.topology.railopt import build_rail_optimized_fabric, rail_optimized_inventory


# --------------------------------------------------------------------------- #
# Fat tree
# --------------------------------------------------------------------------- #


def test_fat_tree_every_nic_port_attaches_to_one_edge_switch():
    cluster = perlmutter_testbed(num_nodes=2)
    fabric = build_fat_tree_fabric(cluster)
    topology = fabric.topology
    ports_per_gpu = cluster.nic_port_config.num_ports
    for gpu in range(cluster.num_gpus):
        for port in range(ports_per_gpu):
            name = nic_port_node_name(gpu, port)
            edge_links = [
                link
                for link in topology.out_links(name)
                if topology.node(link.dst).kind == NodeKind.ELECTRICAL_SWITCH
            ]
            assert len(edge_links) == 1, f"{name} must uplink to exactly one edge"


def test_fat_tree_edge_switch_port_counts_respect_radix():
    cluster = dgx_h200_cluster(num_gpus=64)
    fabric = build_fat_tree_fabric(cluster)
    topology = fabric.topology
    radix = cluster.electrical_switch.radix
    switches = topology.nodes(NodeKind.ELECTRICAL_SWITCH)
    assert len(switches) == fabric.edge_switches + fabric.aggregation_switches + (
        fabric.core_switches
    )
    for switch in switches:
        # Each bidirectional neighbor pair is one physical port (possibly a
        # fat aggregate); the un-aggregated host-facing side is exact.
        down = [
            link
            for link in topology.in_links(switch.name)
            if topology.node(link.src).kind == NodeKind.NIC_PORT
        ]
        assert len(down) <= radix


def test_fat_tree_inventory_matches_graph_construction():
    cluster = perlmutter_testbed(num_nodes=4)
    inventory = fat_tree_inventory(cluster)
    fabric = build_fat_tree_fabric(cluster)
    assert fabric.inventory == inventory
    assert inventory.electrical_switches > 0
    assert inventory.ocs_ports == 0


def test_fat_tree_is_fully_connected_across_domains():
    cluster = perlmutter_testbed(num_nodes=2)
    topology = build_fat_tree_fabric(cluster).topology
    # GPU 0 (domain 0) must reach GPU 4 (domain 1) through the packet fabric.
    path = topology.shortest_path("gpu0", "gpu4")
    assert path, "expected a multi-hop path between domains"
    assert topology.path_bottleneck_bandwidth(path) > 0


# --------------------------------------------------------------------------- #
# Rail-optimized
# --------------------------------------------------------------------------- #


def test_rail_optimized_inventory_matches_graph_construction():
    cluster = perlmutter_testbed(num_nodes=4)
    fabric = build_rail_optimized_fabric(cluster)
    assert fabric.inventory == rail_optimized_inventory(cluster)
    # One leaf per rail suffices for 4 endpoints against a 64-radix switch.
    assert fabric.leaf_switches_per_rail == 1
    assert fabric.spine_switches >= 1


# --------------------------------------------------------------------------- #
# Deterministic routing and equal-cost path enumeration
# --------------------------------------------------------------------------- #


def _diamond(order):
    """A two-tier diamond (s -> m<i> -> t) built in the given middle order."""
    topo = Topology("diamond")
    topo.add_node("s", NodeKind.ELECTRICAL_SWITCH)
    topo.add_node("t", NodeKind.ELECTRICAL_SWITCH)
    for middle in order:
        topo.add_node(middle, NodeKind.ELECTRICAL_SWITCH)
    for middle in order:
        topo.add_link("s", middle, bandwidth=1.0, latency=0.0, kind=LinkKind.ELECTRICAL)
        topo.add_link(middle, "t", bandwidth=1.0, latency=0.0, kind=LinkKind.ELECTRICAL)
    return topo


def test_shortest_path_ties_break_by_name_not_insertion_order():
    middles = ["m1", "m2", "m10", "m3"]
    forward = _diamond(middles)
    shuffled = _diamond(list(reversed(middles)))
    forward_names = [link.dst for link in forward.shortest_path("s", "t")]
    shuffled_names = [link.dst for link in shuffled.shortest_path("s", "t")]
    assert forward_names == shuffled_names
    # Natural order: the digit run compares as an int, so m2 < m10.
    assert forward_names[0] == "m1"


def test_equal_cost_paths_enumerates_all_minimum_hop_paths():
    topo = _diamond(["m1", "m2", "m3"])
    paths = topo.equal_cost_paths("s", "t")
    assert len(paths) == 3
    assert [path[0].dst for path in paths] == ["m1", "m2", "m3"]
    hop_count = len(topo.shortest_path("s", "t"))
    assert all(len(path) == hop_count for path in paths)
    # The single-path route is the first entry of the equal-cost set.
    assert list(paths[0]) == topo.shortest_path("s", "t")


def test_equal_cost_paths_insertion_order_invariant():
    middles = ["m1", "m2", "m10", "m3"]
    forward = _diamond(middles)
    shuffled = _diamond(list(reversed(middles)))
    forward_mids = [[link.dst for link in path] for path in forward.equal_cost_paths("s", "t")]
    shuffled_mids = [[link.dst for link in path] for path in shuffled.equal_cost_paths("s", "t")]
    assert forward_mids == shuffled_mids
    assert [mids[0] for mids in forward_mids] == ["m1", "m2", "m3", "m10"]


def test_equal_cost_paths_respects_max_paths_and_self_and_missing():
    topo = _diamond(["m1", "m2", "m3"])
    truncated = topo.equal_cost_paths("s", "t", max_paths=2)
    assert len(truncated) == 2
    assert truncated == topo.equal_cost_paths("s", "t")[:2]
    assert topo.equal_cost_paths("s", "s") == [()]
    topo.add_node("island", NodeKind.ELECTRICAL_SWITCH)
    with pytest.raises(TopologyError):
        topo.equal_cost_paths("s", "island")


def test_equal_cost_paths_excludes_longer_detours():
    topo = _diamond(["m1", "m2"])
    # A 3-hop detour must not appear in the 2-hop equal-cost set.
    topo.add_node("d1", NodeKind.ELECTRICAL_SWITCH)
    topo.add_node("d2", NodeKind.ELECTRICAL_SWITCH)
    topo.add_link("s", "d1", bandwidth=1.0, latency=0.0, kind=LinkKind.ELECTRICAL)
    topo.add_link("d1", "d2", bandwidth=1.0, latency=0.0, kind=LinkKind.ELECTRICAL)
    topo.add_link("d2", "t", bandwidth=1.0, latency=0.0, kind=LinkKind.ELECTRICAL)
    paths = topo.equal_cost_paths("s", "t")
    assert len(paths) == 2
    assert all(len(path) == 2 for path in paths)


def test_fat_tree_has_multiple_equal_cost_cross_domain_paths():
    # The tiny radix-4 switch forces cross-node routes through the redundant
    # aggregation tier; the default 64-radix switch would collapse four nodes
    # onto one edge switch and leave a single path.
    from repro.experiments.contention import mini_fat_tree_cluster

    topology = build_fat_tree_fabric(mini_fat_tree_cluster(num_nodes=4)).topology
    paths = topology.equal_cost_paths("gpu0", "gpu4")
    assert len(paths) >= 2
    assert list(paths[0]) == topology.shortest_path("gpu0", "gpu4")
    signatures = {tuple(link.link_id for link in path) for path in paths}
    assert len(signatures) == len(paths), "equal-cost paths must be distinct"


# --------------------------------------------------------------------------- #
# OCS circuits
# --------------------------------------------------------------------------- #


def test_circuit_normalizes_port_order():
    assert Circuit(7, 3) == Circuit(3, 7)
    assert Circuit(7, 3).ports == (3, 7)


def test_circuit_rejects_self_loops_and_negative_ports():
    with pytest.raises(CircuitError):
        Circuit(4, 4)
    with pytest.raises(CircuitError):
        Circuit(-1, 2)


def test_configuration_rejects_port_conflicts():
    with pytest.raises(CircuitConflictError):
        CircuitConfiguration((Circuit(0, 1), Circuit(1, 2)))


def test_switch_apply_reports_delta_and_preserves_shared_circuits():
    switch = OpticalCircuitSwitch("test.ocs")
    first = CircuitConfiguration((Circuit(0, 1), Circuit(2, 3)))
    torn, set_up = switch.apply(first)
    assert (torn, set_up) == (0, 2)
    # Keep 0<->1, replace 2<->3 with 2<->4.
    second = CircuitConfiguration((Circuit(0, 1), Circuit(2, 4)))
    torn, set_up = switch.apply(second)
    assert (torn, set_up) == (1, 1)
    assert switch.is_connected(0, 1)
    assert switch.is_connected(2, 4)
    assert switch.reconfiguration_count == 2
    # A no-op apply does not count as a reconfiguration.
    torn, set_up = switch.apply(second)
    assert (torn, set_up) == (0, 0)
    assert switch.reconfiguration_count == 2


def test_switch_rejects_ports_outside_radix():
    switch = OpticalCircuitSwitch("test.ocs")
    with pytest.raises(CircuitError):
        switch.install(Circuit(0, switch.radix))


def test_switch_install_conflict_raises():
    switch = OpticalCircuitSwitch("test.ocs")
    switch.install(Circuit(0, 1))
    with pytest.raises(CircuitConflictError):
        switch.install(Circuit(1, 2))
