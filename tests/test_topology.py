"""Topology construction tests: fat-tree port counts, rail-opt inventory, OCS."""

import pytest

from repro.errors import CircuitConflictError, CircuitError
from repro.topology.base import NodeKind, nic_port_node_name
from repro.topology.devices import dgx_h200_cluster, perlmutter_testbed
from repro.topology.fattree import build_fat_tree_fabric, fat_tree_inventory
from repro.topology.ocs import Circuit, CircuitConfiguration, OpticalCircuitSwitch
from repro.topology.railopt import build_rail_optimized_fabric, rail_optimized_inventory


# --------------------------------------------------------------------------- #
# Fat tree
# --------------------------------------------------------------------------- #


def test_fat_tree_every_nic_port_attaches_to_one_edge_switch():
    cluster = perlmutter_testbed(num_nodes=2)
    fabric = build_fat_tree_fabric(cluster)
    topology = fabric.topology
    ports_per_gpu = cluster.nic_port_config.num_ports
    for gpu in range(cluster.num_gpus):
        for port in range(ports_per_gpu):
            name = nic_port_node_name(gpu, port)
            edge_links = [
                link
                for link in topology.out_links(name)
                if topology.node(link.dst).kind == NodeKind.ELECTRICAL_SWITCH
            ]
            assert len(edge_links) == 1, f"{name} must uplink to exactly one edge"


def test_fat_tree_edge_switch_port_counts_respect_radix():
    cluster = dgx_h200_cluster(num_gpus=64)
    fabric = build_fat_tree_fabric(cluster)
    topology = fabric.topology
    radix = cluster.electrical_switch.radix
    switches = topology.nodes(NodeKind.ELECTRICAL_SWITCH)
    assert len(switches) == fabric.edge_switches + fabric.aggregation_switches + (
        fabric.core_switches
    )
    for switch in switches:
        # Each bidirectional neighbor pair is one physical port (possibly a
        # fat aggregate); the un-aggregated host-facing side is exact.
        down = [
            link
            for link in topology.in_links(switch.name)
            if topology.node(link.src).kind == NodeKind.NIC_PORT
        ]
        assert len(down) <= radix


def test_fat_tree_inventory_matches_graph_construction():
    cluster = perlmutter_testbed(num_nodes=4)
    inventory = fat_tree_inventory(cluster)
    fabric = build_fat_tree_fabric(cluster)
    assert fabric.inventory == inventory
    assert inventory.electrical_switches > 0
    assert inventory.ocs_ports == 0


def test_fat_tree_is_fully_connected_across_domains():
    cluster = perlmutter_testbed(num_nodes=2)
    topology = build_fat_tree_fabric(cluster).topology
    # GPU 0 (domain 0) must reach GPU 4 (domain 1) through the packet fabric.
    path = topology.shortest_path("gpu0", "gpu4")
    assert path, "expected a multi-hop path between domains"
    assert topology.path_bottleneck_bandwidth(path) > 0


# --------------------------------------------------------------------------- #
# Rail-optimized
# --------------------------------------------------------------------------- #


def test_rail_optimized_inventory_matches_graph_construction():
    cluster = perlmutter_testbed(num_nodes=4)
    fabric = build_rail_optimized_fabric(cluster)
    assert fabric.inventory == rail_optimized_inventory(cluster)
    # One leaf per rail suffices for 4 endpoints against a 64-radix switch.
    assert fabric.leaf_switches_per_rail == 1
    assert fabric.spine_switches >= 1


# --------------------------------------------------------------------------- #
# OCS circuits
# --------------------------------------------------------------------------- #


def test_circuit_normalizes_port_order():
    assert Circuit(7, 3) == Circuit(3, 7)
    assert Circuit(7, 3).ports == (3, 7)


def test_circuit_rejects_self_loops_and_negative_ports():
    with pytest.raises(CircuitError):
        Circuit(4, 4)
    with pytest.raises(CircuitError):
        Circuit(-1, 2)


def test_configuration_rejects_port_conflicts():
    with pytest.raises(CircuitConflictError):
        CircuitConfiguration((Circuit(0, 1), Circuit(1, 2)))


def test_switch_apply_reports_delta_and_preserves_shared_circuits():
    switch = OpticalCircuitSwitch("test.ocs")
    first = CircuitConfiguration((Circuit(0, 1), Circuit(2, 3)))
    torn, set_up = switch.apply(first)
    assert (torn, set_up) == (0, 2)
    # Keep 0<->1, replace 2<->3 with 2<->4.
    second = CircuitConfiguration((Circuit(0, 1), Circuit(2, 4)))
    torn, set_up = switch.apply(second)
    assert (torn, set_up) == (1, 1)
    assert switch.is_connected(0, 1)
    assert switch.is_connected(2, 4)
    assert switch.reconfiguration_count == 2
    # A no-op apply does not count as a reconfiguration.
    torn, set_up = switch.apply(second)
    assert (torn, set_up) == (0, 0)
    assert switch.reconfiguration_count == 2


def test_switch_rejects_ports_outside_radix():
    switch = OpticalCircuitSwitch("test.ocs")
    with pytest.raises(CircuitError):
        switch.install(Circuit(0, switch.radix))


def test_switch_install_conflict_raises():
    switch = OpticalCircuitSwitch("test.ocs")
    switch.install(Circuit(0, 1))
    with pytest.raises(CircuitConflictError):
        switch.install(Circuit(1, 2))
