"""Fault injection: plans, topology primitives, flow reaction, end-to-end.

Covers the fault subsystem layer by layer:

* :class:`FaultPlan` / :class:`FaultEvent` — validation, JSON round trips,
  knob coercion;
* :class:`Topology` — fail / degrade / restore semantics and version bumps;
* :class:`FlowSimulator` — mid-flight re-rating on degradation, the typed
  :class:`LinkFailedError` with the fail / re-route policy, restore;
* the Opus control plane — failed OCS ports are permanently conflicting and
  circuits route around them;
* end-to-end — the ``faults=`` backend knob, capability validation, the
  fault-free-plan bitwise-equivalence guarantee, compute slowdowns, trace
  records, and the degraded-fabric scenario family's severity ordering
  (healthy < degraded < failed on all three fabrics).
"""

import json

import pytest

from repro.errors import (
    CircuitError,
    ConfigurationError,
    ControlPlaneError,
    FaultError,
    LinkFailedError,
)
from repro.experiments.contention import (
    DEGRADED_BACKENDS,
    degraded_fabric_scenario,
)
from repro.experiments.runner import Scenario, run_scenario
from repro.parallelism.workloads import small_test_workload
from repro.simulator.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    as_fault_plan,
)
from repro.simulator.flows import FlowSimulator
from repro.topology.base import LinkKind, NodeKind, Topology
from repro.topology.devices import perlmutter_testbed
from repro.topology.ocs import Circuit, OpticalCircuitSwitch
from repro.topology.photonic import build_photonic_rail_fabric


# --------------------------------------------------------------------------- #
# FaultPlan / FaultEvent
# --------------------------------------------------------------------------- #


def test_fault_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        events=(
            FaultEvent(
                time=1.5,
                kind=FaultKind.LINK_DEGRADE,
                src="edge.*",
                dst="agg.*",
                fraction=0.5,
            ),
            FaultEvent(time=2.0, kind=FaultKind.LINK_FAIL, link_kind="host"),
            FaultEvent(time=3.0, kind=FaultKind.OCS_PORT_FAIL, rail=0, port=2),
            FaultEvent(
                time=4.0, kind=FaultKind.COMPUTE_SLOWDOWN, rank=3, factor=2.0
            ),
        ),
        on_link_fail="fail",
    )
    path = tmp_path / "faults.json"
    plan.to_file(path)
    assert FaultPlan.from_file(path) == plan
    assert FaultPlan.from_dict(json.loads(path.read_text())) == plan


def test_fault_event_validation():
    with pytest.raises(ConfigurationError):
        FaultEvent(time=-1.0, kind=FaultKind.LINK_FAIL, src="a")
    with pytest.raises(ConfigurationError):
        FaultEvent(time=0.0, kind=FaultKind.LINK_FAIL)  # no target
    with pytest.raises(ConfigurationError):
        FaultEvent(time=0.0, kind=FaultKind.LINK_DEGRADE, src="a", fraction=0.0)
    with pytest.raises(ConfigurationError):
        FaultEvent(time=0.0, kind=FaultKind.LINK_FAIL, src="a", fraction=0.5)
    with pytest.raises(ConfigurationError):
        FaultEvent(time=0.0, kind=FaultKind.OCS_PORT_FAIL, rail=0)  # no port
    with pytest.raises(ConfigurationError):
        FaultEvent(time=0.0, kind=FaultKind.COMPUTE_SLOWDOWN, factor=0.5)
    with pytest.raises(ConfigurationError):
        FaultEvent.from_dict({"time": 0.0, "kind": "link_fail", "oops": 1})
    with pytest.raises(ConfigurationError):
        FaultPlan(on_link_fail="explode")


def test_as_fault_plan_coercions():
    plan = as_fault_plan(
        [{"time": 0.0, "kind": "compute_slowdown", "factor": 2.0}]
    )
    assert plan.events[0].kind == FaultKind.COMPUTE_SLOWDOWN
    assert as_fault_plan(plan) is plan
    assert as_fault_plan(plan.to_dict()) == plan
    with pytest.raises(ConfigurationError):
        as_fault_plan("faults.json")


def test_require_supported_names_the_offenders():
    plan = as_fault_plan([{"time": 0.0, "kind": "link_fail", "src": "a"}])
    with pytest.raises(ConfigurationError, match="link_fail"):
        plan.require_supported({FaultKind.COMPUTE_SLOWDOWN}, context="test")


# --------------------------------------------------------------------------- #
# Topology primitives
# --------------------------------------------------------------------------- #


def _line_topology(bandwidths=(100.0, 100.0)):
    topology = Topology(name="line")
    names = [f"n{i}" for i in range(len(bandwidths) + 1)]
    for name in names:
        topology.add_node(name, NodeKind.GPU)
    links = [
        topology.add_link(
            names[i], names[i + 1], bandwidth=bw, latency=0.0,
            kind=LinkKind.ELECTRICAL,
        )
        for i, bw in enumerate(bandwidths)
    ]
    return topology, links


def test_fail_and_restore_link_round_trip():
    topology, (first, second) = _line_topology()
    version = topology.version
    failed = topology.fail_link(first.link_id)
    assert failed is first
    assert topology.version == version + 1
    assert not topology.has_link(first.link_id)
    assert topology.link_failed(first.link_id)
    assert topology.failed_links() == [first]
    with pytest.raises(Exception):
        topology.shortest_path("n0", "n1")
    restored = topology.restore_link(first.link_id)
    assert restored is first
    assert topology.has_link(first.link_id)
    assert not topology.link_failed(first.link_id)
    assert [link.link_id for link in topology.shortest_path("n0", "n1")] == [
        first.link_id
    ]


def test_degrade_link_composes_against_original_capacity():
    topology, (first, _second) = _line_topology()
    topology.degrade_link(first.link_id, 0.5)
    assert first.bandwidth == pytest.approx(50.0)
    assert topology.link_degradation(first.link_id) == pytest.approx(0.5)
    # A second degradation is relative to the original 100, not the 50.
    topology.degrade_link(first.link_id, 0.25)
    assert first.bandwidth == pytest.approx(25.0)
    assert topology.degraded_links() == [first]
    topology.degrade_link(first.link_id, 1.0)
    assert first.bandwidth == pytest.approx(100.0)
    assert topology.degraded_links() == []
    with pytest.raises(Exception):
        topology.degrade_link(first.link_id, 0.0)


def test_injector_matches_patterns_and_records():
    topology, (first, second) = _line_topology()
    plan = FaultPlan(
        events=(
            FaultEvent(
                time=1.0, kind=FaultKind.LINK_DEGRADE, src="n0", dst="n1",
                fraction=0.5,
            ),
            FaultEvent(time=2.0, kind=FaultKind.LINK_RESTORE, src="n0", dst="n1"),
        )
    )
    injector = FaultInjector(plan, topology=topology)
    injector.advance_to(0.5)
    assert injector.pending == 2
    injector.advance_to(1.0)
    assert first.bandwidth == pytest.approx(50.0)
    assert second.bandwidth == pytest.approx(100.0)
    injector.advance_to(10.0)
    assert first.bandwidth == pytest.approx(100.0)
    records = injector.pop_records()
    assert [record.kind for record in records] == ["link_degrade", "link_restore"]
    assert all(record.num_links == 1 for record in records)
    assert injector.pop_records() == []


def test_injector_rejects_matchless_events():
    topology, _links = _line_topology()
    plan = FaultPlan(
        events=(FaultEvent(time=0.0, kind=FaultKind.LINK_FAIL, src="nope"),)
    )
    injector = FaultInjector(plan, topology=topology)
    with pytest.raises(FaultError, match="matched no installed link"):
        injector.advance_to(0.0)


def test_restore_after_degrade_then_fail_does_not_crash():
    """A degraded link that later fails must not poison restore events.

    Regression: ``fail_link`` removes the link from the installed table but
    its degradation record survives; ``degraded_links()`` used to KeyError on
    it, aborting any later ``link_restore`` event (even one targeting a
    different link).  Restoring the link brings it back at its degraded
    capacity, and a matching restore event heals it fully.
    """
    topology, (first, second) = _line_topology()
    topology.degrade_link(first.link_id, 0.5)
    topology.fail_link(first.link_id)
    assert topology.link_degradation(first.link_id) == pytest.approx(0.5)
    # Restoring an unrelated degraded link must not trip over the failed one.
    topology.degrade_link(second.link_id, 0.5)
    plan = FaultPlan(
        events=(FaultEvent(time=1.0, kind=FaultKind.LINK_RESTORE, src="n1", dst="n2"),)
    )
    FaultInjector(plan, topology=topology).advance_to(1.0)
    assert second.bandwidth == pytest.approx(100.0)
    # A restore matching the failed+degraded link reinstalls it at full health.
    plan = FaultPlan(
        events=(FaultEvent(time=2.0, kind=FaultKind.LINK_RESTORE, src="n0", dst="n1"),)
    )
    FaultInjector(plan, topology=topology).advance_to(2.0)
    assert topology.has_link(first.link_id)
    assert first.bandwidth == pytest.approx(100.0)


def test_fault_plan_rejects_unknown_top_level_keys():
    with pytest.raises(ConfigurationError, match="on_linkfail"):
        FaultPlan.from_dict({"on_linkfail": "fail", "events": []})


def test_empty_plan_binds_no_injector():
    """faults=FaultPlan() must leave the model exactly as with no knob —
    no injector, no failure-policy flip, no rewind restriction."""
    from repro.experiments.backends import create_network
    from repro.parallelism.config import ParallelismConfig
    from repro.parallelism.mesh import DeviceMesh

    cluster = perlmutter_testbed(num_nodes=2)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=2), cluster)
    model = create_network(
        "fattree", cluster, mesh, network_mode="flow", faults=FaultPlan()
    )
    assert model.fault_injector is None
    assert model.simulator.link_failure_policy == "fail"


def test_compute_factor_latest_event_wins():
    plan = FaultPlan(
        events=(
            FaultEvent(time=1.0, kind=FaultKind.COMPUTE_SLOWDOWN, factor=3.0),
            FaultEvent(
                time=2.0, kind=FaultKind.COMPUTE_SLOWDOWN, rank=1, factor=1.5
            ),
            FaultEvent(time=3.0, kind=FaultKind.COMPUTE_SLOWDOWN, factor=1.0),
        )
    )
    injector = FaultInjector(plan)
    assert injector.compute_factor((0, 1), 0.5) == 1.0
    assert injector.compute_factor((0, 1), 1.0) == 3.0
    # The later rank-1 event overrides the global slowdown for rank 1 only.
    assert injector.compute_factor((1,), 2.5) == 1.5
    assert injector.compute_factor((0,), 2.5) == 3.0
    # The t=3 global reset clears both.
    assert injector.compute_factor((0, 1), 3.5) == 1.0


# --------------------------------------------------------------------------- #
# FlowSimulator reaction
# --------------------------------------------------------------------------- #


def _sim_with_plan(topology, plan):
    sim = FlowSimulator(topology=topology)
    sim.link_failure_policy = plan.on_link_fail
    injector = FaultInjector(plan, topology=topology)
    injector.on_links_failed = sim.fail_links
    injector.on_links_changed = sim.apply_link_change
    injector.schedule_on(sim.engine)
    return sim, injector


def test_mid_flight_degradation_rerates_the_flow():
    topology, (first, _second) = _line_topology()
    plan = FaultPlan(
        events=(
            FaultEvent(
                time=5.0, kind=FaultKind.LINK_DEGRADE, src="n0", dst="n1",
                fraction=0.5,
            ),
        )
    )
    sim, _ = _sim_with_plan(topology, plan)
    flow = sim.add_flow((first,), 1000.0, start_time=0.0)
    sim.run()
    # 500 B drain in the first 5 s at 100 B/s; the rest at 50 B/s.
    assert flow.finish_time == pytest.approx(15.0)


def test_mid_flight_restore_rerates_back():
    topology, (first, _second) = _line_topology()
    plan = FaultPlan(
        events=(
            FaultEvent(
                time=5.0, kind=FaultKind.LINK_DEGRADE, src="n0", dst="n1",
                fraction=0.5,
            ),
            FaultEvent(time=10.0, kind=FaultKind.LINK_RESTORE, src="n0", dst="n1"),
        )
    )
    sim, _ = _sim_with_plan(topology, plan)
    flow = sim.add_flow((first,), 1000.0, start_time=0.0)
    sim.run()
    # 0-5 s: 500 B at 100; 5-10 s: 250 B at 50; remaining 250 B at 100.
    assert flow.finish_time == pytest.approx(12.5)


def test_degradation_forces_exact_rerating_regardless_of_epsilon():
    """Fault events always re-rate exactly, even under an extreme ε.

    ε-approximation may skip redistribution on arrivals and completions, but
    a fault invalidates the capacities those skips were judged against — the
    simulator must drop every deferred approximation and re-solve the
    affected component exactly.
    """
    topology, (first, _second) = _line_topology()
    plan = FaultPlan(
        events=(
            FaultEvent(
                time=5.0, kind=FaultKind.LINK_DEGRADE, src="n0", dst="n1",
                fraction=0.7,
            ),
        )
    )
    sim, _ = _sim_with_plan(topology, plan)
    sim.allocator_epsilon = 0.9
    share = 100.0 / 11.0  # 11 flows split the 100 B/s link
    short = sim.add_flow((first,), 2.0 * share, start_time=0.0)
    longs = [sim.add_flow((first,), 1000.0, start_time=0.0) for _ in range(10)]
    # The short flow drains at t=2.  Its freed share is well within ε of the
    # survivors' load, so redistribution is skipped: the ten survivors keep
    # their 100/11 B/s as deferred debt against the link.
    sim.engine.run(until=4.5)
    assert short.finish_time == pytest.approx(2.0)
    assert sim.stats.epsilon_skips >= 1
    for flow in longs:
        assert flow.rate == pytest.approx(share)
    # The t=5 degradation (capacity 100 -> 70) must force an exact re-rate —
    # the skipped allocation (10 x 100/11 ~ 90.9 B/s) would oversubscribe the
    # degraded link.  Every survivor drops to the fair 7 B/s and no deferred
    # debt survives the fault.
    sim.engine.run(until=5.0)
    for flow in longs:
        assert flow.rate == pytest.approx(7.0)
    assert not sim._deferred_debt
    sim.run()
    # (100/11) x 5 B drained by t=5, the rest at 7 B/s.
    expected = 5.0 + (1000.0 - 5.0 * share) / 7.0
    for flow in longs:
        assert flow.finish_time == pytest.approx(expected)


def _detour_topology(detour_bandwidth=50.0):
    """a->b direct plus an a->c->b detour at ``detour_bandwidth``."""
    topology = Topology(name="detour")
    for name in ("a", "b", "c"):
        topology.add_node(name, NodeKind.GPU)
    direct = topology.add_link(
        "a", "b", bandwidth=100.0, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    topology.add_link(
        "a", "c", bandwidth=detour_bandwidth, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    topology.add_link(
        "c", "b", bandwidth=detour_bandwidth, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    return topology, direct


def test_mid_flight_failure_default_policy_raises_typed_error():
    topology, direct = _detour_topology()
    plan = FaultPlan(
        events=(FaultEvent(time=5.0, kind=FaultKind.LINK_FAIL, src="a", dst="b"),),
        on_link_fail="fail",
    )
    sim, _ = _sim_with_plan(topology, plan)
    flow = sim.add_flow((direct,), 1000.0, start_time=0.0)
    with pytest.raises(LinkFailedError) as excinfo:
        sim.run()
    assert excinfo.value.flow_id == flow.flow_id
    assert excinfo.value.link_key == direct.key


def test_mid_flight_failure_reroute_policy_moves_the_flow():
    topology, direct = _detour_topology(detour_bandwidth=50.0)
    plan = FaultPlan(
        events=(FaultEvent(time=5.0, kind=FaultKind.LINK_FAIL, src="a", dst="b"),),
    )
    sim, injector = _sim_with_plan(topology, plan)
    flow = sim.add_flow((direct,), 1000.0, start_time=0.0)
    sim.run()
    # 500 B drain before the failure; the detour carries the rest at 50 B/s.
    assert flow.finish_time == pytest.approx(15.0)
    assert [link.dst for link in flow.path] == ["c", "b"]
    assert [record.kind for record in injector.pop_records()] == ["link_fail"]


def test_mid_flight_failure_without_surviving_route_raises():
    topology, (first, _second) = _line_topology()
    plan = FaultPlan(
        events=(FaultEvent(time=5.0, kind=FaultKind.LINK_FAIL, src="n0", dst="n1"),),
    )
    sim, _ = _sim_with_plan(topology, plan)
    sim.add_flow((first,), 1000.0, start_time=0.0)
    with pytest.raises(LinkFailedError, match="no surviving route"):
        sim.run()


def test_pending_flow_over_failed_link_is_rerouted_or_rejected():
    # The flow starts after the failure: 1000 B over the 50 B/s detour.
    for policy, expectation in (("reroute", 2.0 + 1000.0 / 50.0), ("fail", None)):
        topology, direct = _detour_topology(detour_bandwidth=50.0)
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=FaultKind.LINK_FAIL, src="a", dst="b"),
            ),
            on_link_fail=policy,
        )
        sim, _ = _sim_with_plan(topology, plan)
        flow = sim.add_flow((direct,), 1000.0, start_time=2.0)
        if expectation is None:
            with pytest.raises(LinkFailedError):
                sim.run()
        else:
            sim.run()
            assert flow.finish_time == pytest.approx(expectation)


def test_failure_rerates_the_survivors_on_shared_links():
    # Two flows share the detour after the direct link dies: both at 25 B/s.
    topology, direct = _detour_topology(detour_bandwidth=50.0)
    hop_ac = topology.shortest_path("a", "c")
    hop_cb = topology.shortest_path("c", "b")
    detour = tuple(hop_ac + hop_cb)
    plan = FaultPlan(
        events=(FaultEvent(time=10.0, kind=FaultKind.LINK_FAIL, src="a", dst="b"),),
    )
    sim, _ = _sim_with_plan(topology, plan)
    bystander = sim.add_flow(detour, 1000.0, start_time=0.0)
    victim = sim.add_flow((direct,), 2000.0, start_time=0.0)
    sim.run()
    # Bystander alone on the detour until t=10 (500 B done), then shares it:
    # 25 B/s each for the remaining 500 B -> t=30.  The victim drained
    # 1000 B by t=10, then moves 1000 B at 25 B/s -> t=50 (alone after 30:
    # the last 500 B run at 50 B/s, so 30 + 10 = 40... computed: at t=30,
    # victim has 1000 - 25*20 = 500 B left, alone at 50 B/s -> t=40).
    assert bystander.finish_time == pytest.approx(30.0)
    assert victim.finish_time == pytest.approx(40.0)


# --------------------------------------------------------------------------- #
# OCS port failures through the control plane
# --------------------------------------------------------------------------- #


def test_ocs_fail_port_tears_and_blocks_installs():
    ocs = OpticalCircuitSwitch(name="test.ocs")
    ocs.install(Circuit(0, 1))
    victim = ocs.fail_port(0)
    assert victim == Circuit(0, 1)
    assert ocs.peer_of(1) is None
    assert ocs.port_failed(0)
    with pytest.raises(CircuitError, match="failed"):
        ocs.install(Circuit(0, 2))
    ocs.clear()
    assert ocs.port_failed(0)  # hardware faults survive crossbar clears
    assert 0 not in ocs.free_ports()


def test_photonic_rail_routes_pairs_around_failed_ports():
    cluster = perlmutter_testbed(num_nodes=2)
    fabric = build_photonic_rail_fabric(cluster)
    rail = fabric.rail(0)
    # Domain 0's preferred (only cabled, single-port NIC) port is port 0.
    healthy = rail.pairwise_configuration([(0, 1)])
    assert healthy.circuits == frozenset({Circuit(0, 1)})
    # With 2-port NICs a failed preferred port falls back to the survivor.
    from dataclasses import replace

    cluster2 = replace(perlmutter_testbed(num_nodes=2), nic_ports_per_gpu=2)
    fabric2 = build_photonic_rail_fabric(cluster2)
    rail2 = fabric2.rail(0)
    rail2.fail_port(0)  # domain 0, nic 0
    rerouted = rail2.pairwise_configuration([(0, 1)])
    assert rerouted.circuits == frozenset({Circuit(1, 2)})
    assert rail2.healthy_nic_ports(0) == (1,)
    # A ring needs two healthy ports per member: domain 0 has only one left.
    with pytest.raises(CircuitError, match="two healthy NIC ports"):
        rail2.ring_configuration([0, 1, 2, 3], nic_ports=(0, 1))


def test_controller_fail_port_tears_topology_links_and_guards_ensure():
    from repro.core.controller import OpusController
    from repro.core.scheduler import ReconfigurationRequest

    cluster = perlmutter_testbed(num_nodes=2)
    fabric = build_photonic_rail_fabric(cluster)
    controller = OpusController(fabric, reconfiguration_delay=1e-3)
    rail = fabric.rail(0)
    target = rail.pairwise_configuration([(0, 1)])

    def request(issue_time):
        return ReconfigurationRequest.create(
            group_key=frozenset({0}),
            axis="dp",
            rails=(0,),
            issue_time=issue_time,
            provisioned=False,
        )

    ready, record = controller.ensure(0, target, request(0.0))
    assert record is not None
    (circuit,) = target.circuits
    link_ids = fabric.circuit_links(0, circuit)
    assert all(fabric.topology.has_link(link_id) for link_id in link_ids)

    victim = controller.fail_port(0, circuit.port_a)
    assert victim == circuit
    assert circuit not in controller.rail_state(0).installed
    assert all(not fabric.topology.has_link(link_id) for link_id in link_ids)
    # Re-ensuring the stale configuration hits the failed port loudly.
    with pytest.raises(FaultError, match="has failed"):
        controller.ensure(0, target, request(1.0))


def test_planner_routes_around_failed_ports():
    from dataclasses import replace

    from repro.core.circuits import CircuitPlanner
    from repro.parallelism.config import ParallelismConfig
    from repro.parallelism.mesh import DeviceMesh

    cluster = replace(perlmutter_testbed(num_nodes=2), nic_ports_per_gpu=2)
    fabric = build_photonic_rail_fabric(cluster)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=2), cluster)
    planner = CircuitPlanner(fabric, mesh)
    healthy = planner.configuration_for_group((0, 4)).configuration(0)
    assert healthy.circuits == frozenset({Circuit(0, 2)})

    fabric.rail(0).fail_port(0)
    planner.clear_cache()
    rerouted = planner.configuration_for_group((0, 4)).configuration(0)
    assert rerouted.circuits == frozenset({Circuit(1, 2)})

    fabric.rail(0).fail_port(1)
    planner.clear_cache()
    with pytest.raises(ControlPlaneError, match="failed OCS ports"):
        planner.configuration_for_group((0, 4))


# --------------------------------------------------------------------------- #
# End-to-end: knob, capabilities, equivalence, ordering
# --------------------------------------------------------------------------- #


def _tiny_scenario(backend, knobs, num_iterations=2):
    return Scenario(
        workload=small_test_workload(pp=1, dp=2, tp=4),
        cluster=perlmutter_testbed(num_nodes=2),
        backend=backend,
        knobs=knobs,
        num_iterations=num_iterations,
        name=f"faults-{backend}",
    )


def test_backend_capability_validation():
    link_fault = as_fault_plan([{"time": 0.0, "kind": "link_fail", "src": "x"}])
    with pytest.raises(ConfigurationError, match="does not support fault kinds"):
        run_scenario(_tiny_scenario("electrical", {"faults": link_fault}))
    port_fault = as_fault_plan(
        [{"time": 0.0, "kind": "ocs_port_fail", "rail": 0, "port": 0}]
    )
    with pytest.raises(ConfigurationError, match="does not support fault kinds"):
        run_scenario(_tiny_scenario("fattree", {"faults": port_fault}))


@pytest.mark.parametrize(
    "backend,knobs",
    [
        ("electrical", {"network_mode": "analytic"}),
        ("fattree", {"network_mode": "flow"}),
        ("photonic", {"network_mode": "flow"}),
    ],
)
def test_fault_free_plan_is_bit_for_bit_identical(backend, knobs):
    baseline = run_scenario(_tiny_scenario(backend, dict(knobs)))
    empty = run_scenario(
        _tiny_scenario(backend, {**knobs, "faults": FaultPlan()})
    )
    assert empty.iteration_times == baseline.iteration_times
    assert empty.metrics == baseline.metrics


def test_compute_slowdown_stretches_iterations_and_lands_in_trace():
    slow = as_fault_plan(
        [{"time": 0.0, "kind": "compute_slowdown", "factor": 2.0}]
    )
    baseline = run_scenario(_tiny_scenario("ideal", {}))
    slowed = run_scenario(_tiny_scenario("ideal", {"faults": slow}))
    assert (
        slowed.metrics["steady_iteration_time"]
        > 1.5 * baseline.metrics["steady_iteration_time"]
    )


def test_fault_records_reach_the_iteration_trace():
    from repro.experiments.backends import create_network
    from repro.parallelism.dag import build_iteration_dag
    from repro.simulator.executor import DAGExecutor

    scenario = degraded_fabric_scenario("fattree", "degraded")
    dag = build_iteration_dag(scenario.workload, scenario.cluster, scenario.dag_options)
    network = create_network(
        scenario.backend, scenario.cluster, dag.mesh, **dict(scenario.knobs)
    )
    executor = DAGExecutor(dag, scenario.cluster, network)
    training = executor.run_training(2)
    first, second = training.iterations
    assert [record.kind for record in first.fault_records] == ["link_degrade"]
    assert first.fault_records[0].num_links > 0
    assert second.fault_records == []
    # Round trip through the JSON schema.
    from repro.parallelism.trace import IterationTrace

    rebuilt = IterationTrace.from_dict(first.to_dict())
    assert rebuilt.fault_records == first.fault_records
    assert rebuilt.num_faults() == 1


def test_mid_run_fault_slows_only_later_iterations():
    # Strike after iteration 1 finishes: iteration 1 matches the healthy
    # run, later iterations pay for the degraded fabric.
    healthy = run_scenario(
        _tiny_scenario("fattree", {"network_mode": "flow"}, num_iterations=3)
    )
    strike_at = healthy.iteration_times[0] + healthy.iteration_times[1] / 2
    plan = FaultPlan(
        events=(
            FaultEvent(
                time=strike_at,
                kind=FaultKind.LINK_DEGRADE,
                link_kind="electrical",
                fraction=0.25,
            ),
        )
    )
    faulted = run_scenario(
        _tiny_scenario(
            "fattree", {"network_mode": "flow", "faults": plan}, num_iterations=3
        )
    )
    assert faulted.iteration_times[0] == pytest.approx(
        healthy.iteration_times[0], rel=1e-12
    )
    assert faulted.iteration_times[1] > healthy.iteration_times[1]
    assert faulted.iteration_times[2] > healthy.iteration_times[2]


@pytest.mark.parametrize("backend", DEGRADED_BACKENDS)
def test_degraded_family_orders_severity(backend):
    times = {}
    for condition in ("healthy", "degraded", "failed"):
        result = run_scenario(degraded_fabric_scenario(backend, condition))
        times[condition] = result.metrics["steady_iteration_time"]
    assert times["healthy"] < times["degraded"] < times["failed"], times


def test_degraded_family_rejects_unknown_points():
    with pytest.raises(ConfigurationError):
        degraded_fabric_scenario("fattree", "melted")
    with pytest.raises(ConfigurationError):
        degraded_fabric_scenario("electrical", "degraded")


@pytest.mark.slow
def test_degraded_family_smoke_at_1k_endpoints():
    """1k-endpoint faulted smoke: the family survives and stays ordered."""
    times = {}
    for condition in ("healthy", "degraded", "failed"):
        scenario = degraded_fabric_scenario(
            "fattree", condition, num_nodes=250, num_iterations=1
        )
        times[condition] = run_scenario(scenario).metrics["mean_iteration_time"]
    assert times["healthy"] < times["degraded"] < times["failed"], times
