"""Cache coverage: route tables, collective-expansion memo, bulk flow batches.

The scaling work leans on three caches, each of which can silently corrupt a
simulation if it over-lives its inputs:

* the per-pair route table and per-schedule flow-item lists, keyed on the
  topology ``version`` (circuit fabrics mutate connectivity mid-run);
* the collective-expansion memo, keyed on ``(collective, group, size)`` so
  same-shape collectives share one schedule and different groups never
  collide;
* the allocator dispatch (python / numpy / component decomposition), which
  must agree with the reference progressive-filling algorithm bit-for-bit.
"""

import math
import random

import pytest

from repro.collectives.primitives import CollectiveOp, CollectiveType
from repro.collectives.schedule import (
    expand,
    expand_cached,
    expansion_cache_clear,
)
from repro.errors import SimulationError
from repro.parallelism.config import ParallelismConfig
from repro.parallelism.mesh import DeviceMesh
from repro.simulator.flow_network import FlowNetworkModel
from repro.simulator.flows import (
    FlowSimulator,
    _max_min_fair_rates_numpy,
    _max_min_fair_rates_python,
    max_min_fair_rates,
)
from repro.topology.base import Link, LinkKind, NodeKind, Topology, gpu_node_name
from repro.topology.photonic import build_photonic_rail_fabric


# --------------------------------------------------------------------------- #
# Multi-target BFS route tables
# --------------------------------------------------------------------------- #


def test_paths_from_matches_shortest_path_on_a_real_fabric(tiny_cluster):
    from repro.topology.electrical import build_fully_connected_rail_topology

    topology = build_fully_connected_rail_topology(tiny_cluster)
    gpus = [gpu_node_name(gpu) for gpu in range(tiny_cluster.num_gpus)]
    for src in gpus:
        table = topology.paths_from(src, gpus)
        for dst in gpus:
            assert table[dst] == topology.shortest_path(src, dst)


def test_paths_from_omits_unreachable_destinations():
    topology = Topology(name="split")
    for name in ("a", "b", "island"):
        topology.add_node(name, NodeKind.GPU)
    topology.add_link("a", "b", bandwidth=1e9, latency=0.0, kind=LinkKind.HOST)
    table = topology.paths_from("a", ["b", "island", "a"])
    assert [link.dst for link in table["b"]] == ["b"]
    assert table["a"] == []  # source maps to the empty path
    assert "island" not in table


def test_route_table_and_step_items_invalidate_on_version_bump(tiny_cluster):
    """Mutating a circuit mid-run must refresh routes *and* flow-item lists."""
    fabric = build_photonic_rail_fabric(tiny_cluster)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=2), tiny_cluster)
    model = FlowNetworkModel(tiny_cluster, mesh, fabric.topology)

    rail = fabric.rail(0)
    fabric.apply_configuration(0, rail.pairwise_configuration([(0, 1)]))
    op = CollectiveOp(
        collective=CollectiveType.SEND_RECV,
        group=(0, 4),
        size_bytes=1e6,
        parallelism="pp",
    )
    steps = expand(op)
    model._prefetch_routes(steps)
    items = model.step_items(steps)
    path = model.path_between(0, 4)
    assert any(link.kind == LinkKind.OPTICAL_CIRCUIT for link in path)
    # Same version: identical objects come back (the caches are hit).
    assert model.step_items(steps) is items
    assert model.path_between(0, 4) is path

    # Tear the circuit down and install it again: the version advances, the
    # stale routes (which embed torn Link objects) must all be dropped.
    fabric.clear_rail(0)
    fabric.apply_configuration(0, rail.pairwise_configuration([(0, 1)]))
    model._prefetch_routes(steps)
    fresh_items = model.step_items(steps)
    fresh_path = model.path_between(0, 4)
    assert fresh_items is not items
    assert fresh_path is not path
    assert all(fabric.topology.has_link(link.link_id) for link in fresh_path)


# --------------------------------------------------------------------------- #
# Collective-expansion memo
# --------------------------------------------------------------------------- #


def _collective(collective, group, size, tag=""):
    return CollectiveOp(
        collective=collective,
        group=group,
        size_bytes=size,
        parallelism="dp",
        tag=tag,
    )


def test_expansion_cache_matches_uncached_and_is_shared():
    expansion_cache_clear()
    op = _collective(CollectiveType.ALL_REDUCE, (0, 1, 2, 3), 4096.0)
    cached = expand_cached(op)
    assert cached == expand(op)
    # A same-shape collective with a different tag / object identity shares
    # the schedule object outright.
    twin = _collective(CollectiveType.ALL_REDUCE, (0, 1, 2, 3), 4096.0, tag="other")
    assert expand_cached(twin) is cached


def test_expansion_cache_does_not_collide_across_groups_sizes_or_types():
    expansion_cache_clear()
    base = _collective(CollectiveType.ALL_GATHER, (0, 1, 2), 1024.0)
    other_group = _collective(CollectiveType.ALL_GATHER, (4, 5, 6), 1024.0)
    other_size = _collective(CollectiveType.ALL_GATHER, (0, 1, 2), 2048.0)
    other_type = _collective(CollectiveType.REDUCE_SCATTER, (0, 1, 2), 1024.0)
    schedules = [expand_cached(op) for op in (base, other_group, other_size, other_type)]
    assert len({id(schedule) for schedule in schedules}) == 4
    for op, schedule in zip((base, other_group, other_size, other_type), schedules):
        assert schedule == expand(op)


# --------------------------------------------------------------------------- #
# Allocator dispatch: python / numpy / decomposition agreement
# --------------------------------------------------------------------------- #


def _random_flows(rng, num_links, num_flows):
    from repro.simulator.flows import Flow

    links = [
        Link(
            src=f"n{i}",
            dst=f"n{i + 1}",
            bandwidth=rng.choice([10.0, 40.0, 100.0, 400.0]),
            latency=0.0,
            kind=LinkKind.ELECTRICAL,
            link_id=i,
        )
        for i in range(num_links)
    ]
    return [
        Flow(
            flow_id=i,
            path=tuple(rng.sample(links, rng.randint(1, min(4, num_links)))),
            size_bytes=1.0,
            start_time=0.0,
        )
        for i in range(num_flows)
    ]


def test_vectorized_allocator_agrees_with_python_on_large_random_networks():
    rng = random.Random(11)
    for _ in range(10):
        flows = _random_flows(rng, num_links=rng.randint(4, 40), num_flows=200)
        reference = _max_min_fair_rates_python(flows, None)
        vectorized = _max_min_fair_rates_numpy(flows, None)
        dispatched = max_min_fair_rates(flows)
        assert reference.keys() == vectorized.keys() == dispatched.keys()
        for flow_id in reference:
            assert vectorized[flow_id] == pytest.approx(reference[flow_id])
            assert dispatched[flow_id] == pytest.approx(reference[flow_id])


def test_component_decomposition_handles_disjoint_fan_workloads():
    # 8 independent single-link components with distinct fair shares: the
    # decomposed solve must equal the joint progressive filling.
    from repro.simulator.flows import Flow

    flows = []
    for component in range(8):
        link = Link(
            src=f"c{component}",
            dst=f"c{component}x",
            bandwidth=100.0 * (component + 1),
            latency=0.0,
            kind=LinkKind.ELECTRICAL,
            link_id=component,
        )
        for member in range(12):
            flows.append(
                Flow(
                    flow_id=component * 12 + member,
                    path=(link,),
                    size_bytes=1.0,
                    start_time=0.0,
                )
            )
    rates = max_min_fair_rates(flows)
    for component in range(8):
        expected = 100.0 * (component + 1) / 12
        for member in range(12):
            assert rates[component * 12 + member] == pytest.approx(expected)


# --------------------------------------------------------------------------- #
# Bulk flow batches (add_flows)
# --------------------------------------------------------------------------- #


def _link(link_id, bandwidth=100.0, latency=0.0):
    return Link(
        src=f"s{link_id}",
        dst=f"d{link_id}",
        bandwidth=bandwidth,
        latency=latency,
        kind=LinkKind.ELECTRICAL,
        link_id=link_id,
    )


def test_add_flows_fires_one_callback_with_the_last_finish_time():
    sim = FlowSimulator()
    ends = []
    sim.add_flows(
        [
            ((_link(0),), 1000.0),  # drains at t=10
            ((_link(1),), 500.0),  # drains at t=5
        ],
        start_time=0.0,
        on_complete=ends.append,
    )
    sim.run()
    assert ends == [pytest.approx(10.0)]


def test_add_flows_batch_members_share_links_fairly():
    sim = FlowSimulator()
    shared = _link(0)
    ends = []
    flows = sim.add_flows(
        [((shared,), 500.0), ((shared,), 500.0)],
        start_time=0.0,
        on_complete=ends.append,
    )
    sim.run()
    # Both flows split the 100 B/s link: 50 B/s each, done at t=10.
    assert ends == [pytest.approx(10.0)]
    assert all(flow.finish_time == pytest.approx(10.0) for flow in flows)


def test_add_flows_interacts_with_later_external_arrivals():
    # A solo batch's flow must still be visible to a flow arriving later on
    # the same link (the registry survives the batch fast paths).
    sim = FlowSimulator()
    shared = _link(0)
    batch = sim.add_flows([((shared,), 1000.0)], start_time=0.0, on_complete=lambda end: None)
    late = sim.add_flow((shared,), 500.0, start_time=5.0)
    sim.run()
    assert batch[0].finish_time == pytest.approx(15.0)
    assert late.finish_time == pytest.approx(15.0)


def test_repeated_identical_batches_replay_the_same_rates():
    # The isolated-batch memo must replay, not corrupt, repeated injections
    # of the same (cached) item list — the per-step pattern of a collective.
    sim = FlowSimulator()
    shared = _link(0, bandwidth=100.0)
    items = [((shared,), 300.0), ((shared,), 300.0)]
    ends = []
    sim.add_flows(items, start_time=0.0, on_complete=ends.append)
    sim.run()
    sim.add_flows(items, start_time=ends[0], on_complete=ends.append)
    sim.run()
    # Each batch: two flows at 50 B/s drain 300 B in 6 s.
    assert ends == [pytest.approx(6.0), pytest.approx(12.0)]


def test_negative_size_in_bulk_items_is_rejected():
    sim = FlowSimulator()
    with pytest.raises(SimulationError):
        sim.add_flows([((_link(0),), -1.0)], 0.0, on_complete=lambda end: None)


def test_zero_size_members_complete_without_stalling_the_group():
    sim = FlowSimulator()
    ends = []
    sim.add_flows(
        [((_link(0, latency=0.25),), 0.0), ((_link(1),), 100.0)],
        start_time=1.0,
        on_complete=ends.append,
    )
    sim.run()
    # Zero-size member contributes its latency-only finish (1.25); the real
    # transfer finishes at t=2; the group reports the max.
    assert ends == [pytest.approx(2.0)]


def test_infinite_component_rates_do_not_break_the_heap():
    # Empty-path member (infinite rate) inside a batch with a constrained
    # member: both complete, callback carries the constrained finish.
    sim = FlowSimulator()
    ends = []
    sim.add_flows(
        [((), 64.0), ((_link(0),), 100.0)], start_time=0.0, on_complete=ends.append
    )
    sim.run()
    assert ends == [pytest.approx(1.0)]


def test_allocator_rejects_nan_free_masked_infinities():
    # All-unconstrained flow sets (infinite capacity) must allocate inf
    # without emitting NaNs through the numpy path.
    from repro.simulator.flows import Flow

    flows = [
        Flow(flow_id=i, path=(), size_bytes=1.0, start_time=0.0) for i in range(64)
    ]
    rates = max_min_fair_rates(flows)
    assert all(math.isinf(rate) for rate in rates.values())


# --------------------------------------------------------------------------- #
# Cache invalidation under fault events
# --------------------------------------------------------------------------- #


def test_fault_events_invalidate_route_tables_and_group_parameters(tiny_cluster):
    """Degrading a link must drop routes, step items, and analytic params."""
    from repro.simulator.fabric_network import FatTreeNetworkModel
    from repro.topology.fattree import build_fat_tree_fabric

    fabric = build_fat_tree_fabric(tiny_cluster)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=2), tiny_cluster)
    analytic = FatTreeNetworkModel(tiny_cluster, mesh, fabric=fabric)
    flow_model = FlowNetworkModel(tiny_cluster, mesh, fabric.topology)

    group = (0, 4)
    healthy_params = analytic.group_link_parameters(group)
    assert analytic.group_link_parameters(group) is healthy_params  # cache hit

    op = CollectiveOp(
        collective=CollectiveType.SEND_RECV,
        group=group,
        size_bytes=1e6,
        parallelism="pp",
    )
    steps = expand(op)
    flow_model._prefetch_routes(steps)
    items = flow_model.step_items(steps)
    path = flow_model.path_between(0, 4)

    # A fault degrades every link of the route to half capacity.
    for link in path:
        fabric.topology.degrade_link(link.link_id, 0.5)

    degraded_params = analytic.group_link_parameters(group)
    assert degraded_params is not healthy_params
    assert degraded_params.bandwidth == pytest.approx(
        healthy_params.bandwidth * 0.5
    )
    flow_model._prefetch_routes(steps)
    assert flow_model.step_items(steps) is not items
    assert flow_model.path_between(0, 4) is not path


def test_path_meta_and_isolated_memo_invalidate_on_link_change():
    """Re-injecting a cached item list after a degrade uses the new capacity.

    Both per-path static bottlenecks (the solo fast path) and the
    isolated-batch allocation memo key on object identity, so a capacity
    change must explicitly drop them — otherwise the same (path, items)
    objects would replay rates computed against the healthy fabric.
    """
    from repro.topology.base import NodeKind, Topology

    topology = Topology(name="memo")
    topology.add_node("a", NodeKind.GPU)
    topology.add_node("b", NodeKind.GPU)
    link = topology.add_link(
        "a", "b", bandwidth=100.0, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    sim = FlowSimulator(topology=topology)
    shared_path = (link,)
    items = [(shared_path, 300.0), (shared_path, 300.0)]
    ends = []
    sim.add_flows(items, start_time=0.0, on_complete=ends.append)
    sim.run()
    assert ends == [pytest.approx(6.0)]  # two flows at 50 B/s each

    topology.degrade_link(link.link_id, 0.5)
    sim.apply_link_change([link.key])
    sim.add_flows(items, start_time=ends[0], on_complete=ends.append)
    sim.run()
    # Same item list object, half the capacity: 25 B/s each -> 12 s more.
    assert ends[1] == pytest.approx(18.0)

    # Solo fast path: one flow on the degraded link must run at 50, not 100.
    solo = sim.add_flow(shared_path, 500.0, start_time=ends[1])
    sim.run()
    assert solo.finish_time == pytest.approx(18.0 + 10.0)


def test_expansion_memo_is_topology_independent():
    """Collective expansions are rank-level; fault events must not perturb
    them (and therefore need not invalidate the memo)."""
    from repro.topology.base import NodeKind, Topology

    expansion_cache_clear()
    op = _collective(CollectiveType.ALL_REDUCE, (0, 1, 2, 3), 4096.0)
    before = expand_cached(op)
    topology = Topology(name="scratch")
    topology.add_node("a", NodeKind.GPU)
    topology.add_node("b", NodeKind.GPU)
    link = topology.add_link(
        "a", "b", bandwidth=100.0, latency=0.0, kind=LinkKind.ELECTRICAL
    )
    topology.degrade_link(link.link_id, 0.5)
    topology.fail_link(link.link_id)
    assert expand_cached(op) is before
