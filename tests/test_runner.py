"""Experiment-runner tests: grid expansion, memoization, parallel fan-out."""

import threading

import pytest

import repro.experiments.runner as runner_module
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ExperimentRunner,
    Scenario,
    expand_grid,
    scenario_hash,
)


@pytest.fixture()
def base(tiny_workload, tiny_cluster):
    return Scenario(
        workload=tiny_workload,
        cluster=tiny_cluster,
        backend="ideal",
        num_iterations=1,
        name="base",
    )


# --------------------------------------------------------------------------- #
# Scenario + grid expansion
# --------------------------------------------------------------------------- #


def test_scenario_rejects_oversized_workloads(tiny_workload):
    from repro.topology.devices import perlmutter_testbed

    with pytest.raises(ConfigurationError):
        Scenario(workload=tiny_workload, cluster=perlmutter_testbed(num_nodes=1))


def test_scenario_hash_ignores_name_but_not_config(base):
    from dataclasses import replace

    assert scenario_hash(base) == scenario_hash(replace(base, name="other"))
    assert scenario_hash(base) != scenario_hash(replace(base, num_iterations=2))
    assert scenario_hash(base) != scenario_hash(base.with_knobs(x=1))


def test_expand_grid_orders_first_key_slowest(base):
    scenarios = expand_grid(
        base, {"delay": [1, 2], "provisioning": [False, True]}
    )
    labels = [s.name for s in scenarios]
    assert labels == [
        "base[delay=1,provisioning=False]",
        "base[delay=1,provisioning=True]",
        "base[delay=2,provisioning=False]",
        "base[delay=2,provisioning=True]",
    ]
    assert scenarios[0].knobs == {"delay": 1, "provisioning": False}


def test_expand_grid_scenario_fields_override_instead_of_knobbing(base):
    scenarios = expand_grid(base, {"backend": ["ideal", "electrical"]})
    assert [s.backend for s in scenarios] == ["ideal", "electrical"]
    assert all(s.knobs == {} for s in scenarios)


def test_expand_grid_empty_grid_returns_base(base):
    assert expand_grid(base, {}) == [base]


# --------------------------------------------------------------------------- #
# Memoization
# --------------------------------------------------------------------------- #


def test_repeated_scenarios_hit_the_cache(base):
    runner = ExperimentRunner(max_workers=2)
    first = runner.run(base)
    second = runner.run(base)
    assert runner.cache_misses == 1
    assert runner.cache_hits == 1
    assert first is second  # served straight from the cache


def test_duplicate_points_within_one_sweep_are_simulated_once(base):
    runner = ExperimentRunner(max_workers=2)
    results = runner.sweep(base, {"num_iterations": [1, 2, 1]})
    assert len(results) == 3
    assert runner.cache_misses == 2
    assert runner.cache_hits == 1
    assert results[0].metrics == results[2].metrics


def test_memoize_false_simulates_within_batch_duplicates(base, monkeypatch):
    calls = []
    real = runner_module.run_scenario

    def counting(scenario):
        calls.append(scenario.name)
        return real(scenario)

    monkeypatch.setattr(runner_module, "run_scenario", counting)
    runner = ExperimentRunner(executor="serial", memoize=False)
    results = runner.run_many([base, base, base])
    assert len(results) == 3
    assert len(calls) == 3  # no within-batch dedup without memoization
    assert runner.cache_hits == 0
    assert runner.cache_size == 0


def test_failing_scenario_reports_its_name(base, monkeypatch):
    from dataclasses import replace

    from repro.errors import ScenarioError

    def explode(scenario):
        raise ValueError("boom")

    monkeypatch.setattr(runner_module, "run_scenario", explode)
    runner = ExperimentRunner(executor="serial")
    with pytest.raises(ScenarioError, match="doomed-point"):
        runner.run(replace(base, name="doomed-point"))


def test_failing_scenario_in_parallel_sweep_reports_its_name(base):
    from repro.errors import ScenarioError

    # An unknown backend knob only explodes inside the worker process.
    bad = base.with_knobs(definitely_not_a_knob=1)
    runner = ExperimentRunner(max_workers=2, executor="process")
    with pytest.raises(ScenarioError, match="base"):
        runner.run_many([bad, base.with_knobs()])


def test_fork_sweep_results_are_memoized_per_member(base):
    from dataclasses import replace

    grid = [replace(base, num_iterations=n, name=f"len-{n}") for n in (1, 2, 3)]
    runner = ExperimentRunner(executor="serial")
    forked = runner.run_many(grid, fork=True)
    assert runner.cache_misses == 3
    # Each branch result is cached under its *member's* configuration hash,
    # not the shared-prefix session's normalized one.
    assert [r.config_hash for r in forked] == [scenario_hash(s) for s in grid]

    again = runner.run_many(grid)
    assert runner.cache_hits == 3
    assert all(one is two for one, two in zip(forked, again))


def test_fork_sweep_serves_cache_hits_without_forking(base, monkeypatch):
    from dataclasses import replace

    grid = [replace(base, num_iterations=n) for n in (1, 2)]
    runner = ExperimentRunner(executor="serial")
    straight = runner.run_many(grid)

    def explode(*_args, **_kwargs):
        raise AssertionError("cache hits must not reach the fork path")

    monkeypatch.setattr(runner, "_run_fork_group", explode)
    monkeypatch.setattr(runner_module, "run_scenario", explode)
    hits = runner.cache_hits
    assert runner.run_many(grid, fork=True) == straight
    assert runner.cache_hits == hits + 2


def test_duplicate_points_in_a_fork_batch_simulate_once(base):
    from dataclasses import replace

    a = replace(base, num_iterations=1, name="a")
    b = replace(base, num_iterations=2, name="b")
    dup = replace(a, name="dup-of-a")
    runner = ExperimentRunner(executor="serial")
    results = runner.run_many([a, b, dup], fork=True)
    assert runner.cache_misses == 2
    assert runner.cache_hits == 1
    assert results[2] is results[0]


def test_clear_cache_resets_statistics(base):
    runner = ExperimentRunner()
    runner.run(base)
    runner.clear_cache()
    assert runner.cache_size == 0
    runner.run(base)
    assert runner.cache_misses == 1


# --------------------------------------------------------------------------- #
# Parallel fan-out
# --------------------------------------------------------------------------- #


def test_sweep_uses_all_configured_workers(base, monkeypatch):
    workers = 3
    barrier = threading.Barrier(workers, timeout=30)
    real = runner_module.run_scenario

    def synchronized(scenario):
        # Only passes if `workers` scenarios are in flight simultaneously,
        # i.e. the runner really fanned out over every configured worker.
        barrier.wait()
        return real(scenario)

    monkeypatch.setattr(runner_module, "run_scenario", synchronized)
    runner = ExperimentRunner(max_workers=workers, executor="thread")
    results = runner.sweep(base, {"num_iterations": [1, 2, 3]})
    assert len(results) == 3
    assert len({result.worker for result in results}) == workers


def test_serial_executor_produces_identical_results(base):
    parallel = ExperimentRunner(max_workers=4, executor="thread")
    serial = ExperimentRunner(executor="serial")
    grid = {"num_iterations": [1, 2]}
    parallel_metrics = [r.metrics for r in parallel.sweep(base, grid)]
    serial_metrics = [r.metrics for r in serial.sweep(base, grid)]
    assert parallel_metrics == serial_metrics


def test_process_executor_smoke(base):
    runner = ExperimentRunner(max_workers=2, executor="process")
    results = runner.sweep(base, {"num_iterations": [1, 2]})
    assert len(results) == 2
    assert all(r.metrics["steady_iteration_time"] > 0 for r in results)


def test_invalid_executor_and_workers_are_rejected():
    with pytest.raises(ConfigurationError):
        ExperimentRunner(executor="quantum")
    with pytest.raises(ConfigurationError):
        ExperimentRunner(max_workers=0)
