"""Large-scale scenario family: configuration sanity and a small smoke run.

The published family targets 1k/4k/10k endpoints; the suite exercises the
same code path at 200 endpoints (tp=4 x ep=10 x dp=5) so CI stays fast while
still driving the MoE steady state through the flow simulator end to end.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.experiments.contention import (
    SCALE_BACKENDS,
    SCALE_ENDPOINTS,
    SCALE_OCS,
    scale_cluster,
    scale_scenario,
    scale_scenario_grid,
    scale_workload,
)
from repro.experiments.runner import ExperimentRunner


def test_scale_workload_factors_the_endpoint_count():
    workload = scale_workload(10_000)
    assert workload.world_size == 10_000
    assert workload.parallelism.tp == 4
    assert workload.parallelism.ep == 10
    assert workload.parallelism.dp == 250
    assert workload.num_microbatches == 1


def test_scale_cluster_matches_the_workload_and_supports_rings():
    cluster = scale_cluster(1_000)
    assert cluster.num_gpus == 1_000
    assert cluster.nic_ports_per_gpu == 2  # rings over >2 domains need 2 ports
    assert cluster.ocs is SCALE_OCS
    # The synthetic OCS must actually fit a rail spanning every domain.
    assert cluster.ocs.radix >= cluster.num_domains * cluster.nic_ports_per_gpu


def test_scale_endpoints_must_be_a_multiple_of_the_block():
    with pytest.raises(ConfigurationError):
        scale_workload(1234)
    with pytest.raises(ConfigurationError):
        scale_cluster(0)


def test_scale_grid_covers_the_published_family():
    scenarios = scale_scenario_grid()
    names = {scenario.name for scenario in scenarios}
    assert len(scenarios) == len(SCALE_ENDPOINTS) * len(SCALE_BACKENDS)
    assert "scale-fattree-10000" in names
    assert all(s.knobs["network_mode"] == "flow" for s in scenarios)


def test_scale_smoke_runs_in_flow_mode_at_200_endpoints():
    runner = ExperimentRunner(executor="serial")
    result = runner.run(
        scale_scenario(num_endpoints=200, backend="fattree", num_iterations=2)
    )
    assert all(value > 0 for value in result.iteration_times)
    # EP AllToAll traffic must actually hit the rails.
    assert result.metrics["scaleout_bytes"] > 0


def test_scale_cli_subcommand_end_to_end(capsys):
    exit_code = main(
        [
            "scale",
            "--endpoints",
            "200",
            "--backends",
            "fattree",
            "--iterations",
            "1",
            "--executor",
            "serial",
        ]
    )
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    assert payload[0]["name"] == "scale-fattree-200"
    assert payload[0]["knobs"]["network_mode"] == "flow"


def test_scale_cli_rejects_unknown_backends():
    assert main(["scale", "--backends", "warpdrive"]) == 2


def test_scale_scenario_threads_the_contention_knobs():
    scenario = scale_scenario(
        num_endpoints=200,
        backend="fattree",
        allocator_epsilon=0.05,
        coarsen_quantum=1e-6,
    )
    assert scenario.knobs["allocator_epsilon"] == 0.05
    assert scenario.knobs["coarsen_quantum"] == 1e-6
    # Defaults stay knob-free so exact runs are indistinguishable from
    # pre-knob scenario dicts (golden traces, sweep caches).
    exact = scale_scenario(num_endpoints=200, backend="fattree")
    assert "allocator_epsilon" not in exact.knobs
    assert "coarsen_quantum" not in exact.knobs


def test_scale_cli_passes_the_contention_knobs(capsys):
    exit_code = main(
        [
            "scale",
            "--endpoints",
            "200",
            "--backends",
            "fattree",
            "--iterations",
            "1",
            "--executor",
            "serial",
            "--allocator-epsilon",
            "0.05",
            "--coarsen-quantum",
            "1e-6",
        ]
    )
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["knobs"]["allocator_epsilon"] == 0.05
    assert payload[0]["knobs"]["coarsen_quantum"] == 1e-6


@pytest.mark.slow
def test_scale_10k_fattree_flow_completes_within_the_wall():
    """The headline scenario: 10k endpoints, fat tree, flow mode, exact.

    Runs only in the non-blocking ``-m slow`` CI job.  The wall bounds
    runaway regressions — the pre-optimization engine took ~18 minutes on
    the reference machine, the current exact engine ~3 — while leaving
    headroom for slower CI runners; the perf gate proper lives in
    benchmarks/check_regression.py.
    """
    import time

    from repro.experiments.runner import run_scenario

    scenario = scale_scenario(
        num_endpoints=10_000, backend="fattree", num_iterations=2
    )
    started = time.perf_counter()
    result = run_scenario(scenario)
    elapsed = time.perf_counter() - started
    assert result.metrics["steady_iteration_time"] > 0
    assert result.metrics["scaleout_bytes"] > 0
    assert elapsed < 420.0, f"10k fat-tree flow run took {elapsed:.0f}s"
