"""Flow-level network mode: analytic agreement, contention divergence, stalls.

These are the acceptance tests of the flow network mode:

* on the bundled contention-free scenario the flow and analytic modes agree
  within 2% (tier-1 equivalence check);
* on the bundled shared-uplink incast scenario the flow mode is strictly
  slower — cross-collective contention the analytic mode cannot see;
* at the executor level, two concurrent transfers sharing one uplink slow
  each other down in flow mode while the analytic mode prices them
  independently.
"""

import pytest

from repro.collectives.primitives import CollectiveOp, CollectiveType
from repro.experiments.backends import create_network
from repro.experiments.contention import (
    compare_network_modes,
    contention_free_scenario,
    mini_fat_tree_cluster,
    shared_uplink_incast_scenario,
)
from repro.errors import ConfigurationError
from repro.parallelism.config import ParallelismConfig
from repro.parallelism.dag import IterationDAG
from repro.parallelism.mesh import DeviceMesh
from repro.simulator.executor import DAGExecutor
from repro.simulator.flow_network import FlowNetworkModel


# --------------------------------------------------------------------------- #
# Acceptance: bundled scenarios
# --------------------------------------------------------------------------- #


def test_flow_mode_matches_analytic_on_contention_free_scenario():
    comparison = compare_network_modes(contention_free_scenario())
    assert comparison.analytic_time > 0
    assert comparison.slowdown == pytest.approx(1.0, rel=0.02)


def test_flow_mode_is_strictly_slower_on_shared_uplink_incast():
    comparison = compare_network_modes(shared_uplink_incast_scenario())
    assert comparison.slowdown > 1.05, (
        "the flow mode must expose the shared-uplink contention the analytic "
        f"mode prices away, got slowdown {comparison.slowdown:.4f}"
    )


def test_incast_divergence_grows_with_oversubscription():
    mild = compare_network_modes(shared_uplink_incast_scenario(oversubscription=1.0))
    harsh = compare_network_modes(shared_uplink_incast_scenario(oversubscription=4.0))
    assert harsh.slowdown > mild.slowdown > 1.0


# --------------------------------------------------------------------------- #
# Executor-level contention micro-test
# --------------------------------------------------------------------------- #


def _send_recv_dag(workload, mesh, pairs, size_bytes):
    dag = IterationDAG(workload, mesh)
    for index, (src, dst) in enumerate(pairs):
        dag.add_comm(
            CollectiveOp(
                collective=CollectiveType.SEND_RECV,
                group=(src, dst),
                size_bytes=size_bytes,
                parallelism="pp",
                tag=f"xfer{index}",
            )
        )
    return dag


@pytest.fixture()
def mini_cluster_and_mesh():
    cluster = mini_fat_tree_cluster(num_nodes=4)
    mesh = DeviceMesh(ParallelismConfig(tp=4, dp=4), cluster)
    return cluster, mesh


def _comm_duration(trace):
    record = max(trace.iterations[0].comm_records, key=lambda r: r.end)
    return record.end - record.start


def test_concurrent_transfers_contend_in_flow_mode_only(
    tiny_workload, mini_cluster_and_mesh
):
    cluster, mesh = mini_cluster_and_mesh
    size = 64e6
    # Ranks 0 and 1 sit on the first edge switch; their transfers to nodes 1
    # and 2 both climb the same oversubscribed edge->aggregation uplink.
    alone = [(0, 4)]
    both = [(0, 4), (1, 5)]
    durations = {}
    for mode in ("analytic", "flow"):
        for label, pairs in (("alone", alone), ("both", both)):
            dag = _send_recv_dag(tiny_workload, mesh, pairs, size)
            network = create_network(
                "fattree", cluster, mesh, network_mode=mode, oversubscription=4.0
            )
            trace = DAGExecutor(dag, cluster, network).run_training(1)
            durations[(mode, label)] = _comm_duration(trace)

    # The analytic mode prices each transfer independently of its neighbors.
    assert durations[("analytic", "both")] == pytest.approx(
        durations[("analytic", "alone")]
    )
    # The flow mode shares the uplink: two concurrent transfers each get half
    # the capacity, so the last one takes about twice as long.
    assert durations[("flow", "both")] == pytest.approx(
        2.0 * durations[("flow", "alone")], rel=0.05
    )


def test_flow_mode_agrees_with_analytic_for_a_lone_routed_transfer(
    tiny_workload, mini_cluster_and_mesh
):
    cluster, mesh = mini_cluster_and_mesh
    durations = {}
    for mode in ("analytic", "flow"):
        dag = _send_recv_dag(tiny_workload, mesh, [(0, 4)], 64e6)
        network = create_network("fattree", cluster, mesh, network_mode=mode)
        trace = DAGExecutor(dag, cluster, network).run_training(1)
        durations[mode] = _comm_duration(trace)
    assert durations["flow"] == pytest.approx(durations["analytic"], rel=0.02)


# --------------------------------------------------------------------------- #
# Electrical flow topology routing
# --------------------------------------------------------------------------- #


def test_electrical_flow_topology_routes_never_transit_a_gpu(tiny_cluster):
    from repro.topology.base import NodeKind, gpu_node_name
    from repro.topology.electrical import build_fully_connected_rail_topology

    topology = build_fully_connected_rail_topology(tiny_cluster)
    for src in range(tiny_cluster.num_gpus):
        for dst in range(tiny_cluster.num_gpus):
            if src == dst:
                continue
            path = topology.shortest_path(gpu_node_name(src), gpu_node_name(dst))
            transit_nodes = [link.dst for link in path[:-1]]
            # A min-hop route must never shortcut through another GPU's NIC
            # and NVLink: that would charge a bystander's injection capacity.
            assert not any(
                topology.node(name).kind == NodeKind.GPU for name in transit_nodes
            ), (src, dst, transit_nodes)
            if tiny_cluster.domain_of(src) != tiny_cluster.domain_of(dst):
                # Fabric paths carry the analytic model's 2 microsecond latency.
                assert topology.path_latency(path) == pytest.approx(2e-6)


# --------------------------------------------------------------------------- #
# Backend knob plumbing
# --------------------------------------------------------------------------- #


def test_flow_model_is_reusable_across_training_runs(
    tiny_workload, mini_cluster_and_mesh
):
    cluster, mesh = mini_cluster_and_mesh
    dag = _send_recv_dag(tiny_workload, mesh, [(0, 4)], 64e6)
    network = create_network("fattree", cluster, mesh, network_mode="flow")
    executor = DAGExecutor(dag, cluster, network)
    first = executor.run_training(2)
    # A second run restarts simulated time at 0; the model must rewind its
    # clock instead of rejecting the injection, exactly like analytic models.
    second = executor.run_training(2)
    assert [i.end for i in second.iterations] == [i.end for i in first.iterations]


def test_network_mode_knob_selects_the_flow_model(tiny_workload, tiny_cluster):
    mesh = DeviceMesh(tiny_workload.parallelism, tiny_cluster)
    for backend in ("electrical", "fattree", "railopt"):
        analytic = create_network(backend, tiny_cluster, mesh)
        flow = create_network(backend, tiny_cluster, mesh, network_mode="flow")
        assert not getattr(analytic, "flow_mode", False)
        assert isinstance(flow, FlowNetworkModel)


def test_invalid_network_mode_is_rejected(tiny_workload, tiny_cluster):
    mesh = DeviceMesh(tiny_workload.parallelism, tiny_cluster)
    with pytest.raises(ConfigurationError):
        create_network("electrical", tiny_cluster, mesh, network_mode="quantum")
    with pytest.raises(ConfigurationError):
        create_network(
            "electrical",
            tiny_cluster,
            mesh,
            network_mode="flow",
            use_tree_collectives=True,
        )
