"""Experiment-service tests: validation, quarantine, HTTP API, store hits."""

import json
import threading

import pytest

from repro.errors import SpecValidationError
from repro.service import (
    ExperimentServer,
    ExperimentService,
    ServiceClient,
    ServiceError,
    validate_sweep_spec,
)

#: One cheap single-point sweep (ideal backend, one iteration).
GOOD_SPEC = {
    "scenario": {
        "workload": "tiny",
        "cluster": "perlmutter:2",
        "backend": "ideal",
        "iterations": 1,
    }
}

#: A 2-point grid on the electrical backend (still analytic-cheap).
GRID_SPEC = {
    "scenario": {
        "workload": "tiny",
        "cluster": "perlmutter:2",
        "backend": "electrical",
        "iterations": 1,
    },
    "grid": {"use_tree_collectives": [False, True]},
}


@pytest.fixture()
def service(tmp_path):
    service = ExperimentService(
        tmp_path / "store", executor="serial", job_workers=2
    )
    yield service
    service.close()


def rejection_code(service, payload):
    """Submit a bad payload and return the structured rejection code."""
    with pytest.raises(SpecValidationError) as excinfo:
        if isinstance(payload, str):
            service.submit_text(payload)
        else:
            service.submit(payload)
    return excinfo.value.code


# --------------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------------- #


def test_validate_expands_grid_and_names_points():
    spec = validate_sweep_spec(GRID_SPEC)
    assert len(spec.scenarios) == 2
    assert [s.knobs["use_tree_collectives"] for s in spec.scenarios] == [False, True]
    assert all(s.backend == "electrical" for s in spec.scenarios)


@pytest.mark.parametrize(
    "payload,code",
    [
        (["not", "an", "object"], "bad-spec"),
        ({"scenario": {}, "bogus": 1}, "bad-spec"),
        ({"scenario": {"workload": "nonexistent"}}, "unknown-workload"),
        ({"scenario": {"backend": "quantum"}}, "unknown-backend"),
        ({"scenario": {"cluster": "perlmutter:zero"}}, "bad-cluster"),
        ({"scenario": {"iterations": 0}}, "bad-iterations"),
        ({"scenario": {"knobs": {"no_such_knob": 1}}}, "unknown-knob"),
        ({"scenario": {"knobs": {"faults": "yes please"}}}, "bad-fault-plan"),
        ({"scenario": {}, "grid": {"network_mode": "flow"}}, "bad-grid"),
    ],
)
def test_bad_specs_fail_with_stable_codes(payload, code):
    with pytest.raises(SpecValidationError) as excinfo:
        validate_sweep_spec(payload)
    assert excinfo.value.code == code


def test_capability_violating_fault_plan_is_rejected():
    # link_fail needs a link-level fault model; electrical+analytic has none.
    payload = {
        "scenario": {
            "backend": "electrical",
            "knobs": {
                "faults": [{"time": 0.01, "kind": "link_fail", "src": "*"}]
            },
        }
    }
    with pytest.raises(SpecValidationError) as excinfo:
        validate_sweep_spec(payload)
    assert excinfo.value.code == "capability-violation"


def test_oversized_grid_is_rejected_before_any_work():
    payload = {
        "scenario": GOOD_SPEC["scenario"],
        "grid": {"reconfiguration_delay": list(range(10))},
    }
    with pytest.raises(SpecValidationError) as excinfo:
        validate_sweep_spec(payload, max_grid_points=4)
    assert excinfo.value.code == "oversized-grid"


# --------------------------------------------------------------------------- #
# Quarantine: rejections are recorded, the queue stays healthy
# --------------------------------------------------------------------------- #


def test_rejections_are_quarantined_and_queue_stays_healthy(service):
    assert rejection_code(service, '{"scenario": {') == "malformed-json"
    assert (
        rejection_code(service, {"scenario": {"backend": "quantum"}})
        == "unknown-backend"
    )
    assert (
        rejection_code(
            service,
            {
                "scenario": {
                    "backend": "electrical",
                    "knobs": {
                        "faults": [
                            {"time": 0.01, "kind": "link_fail", "src": "*"}
                        ]
                    },
                }
            },
        )
        == "capability-violation"
    )
    quarantine = service.quarantine.snapshot()
    assert quarantine["total"] == 3
    assert quarantine["by_code"] == {
        "capability-violation": 1,
        "malformed-json": 1,
        "unknown-backend": 1,
    }
    # Rejected specs never became jobs...
    assert service.jobs() == []
    metrics = service.metrics()
    assert metrics["jobs"]["rejected"] == 3
    assert metrics["rejections"]["by_code"]["malformed-json"] == 1
    # ...and the queue still runs good work afterwards.
    job = service.submit(GOOD_SPEC)
    assert service.wait(job.id).state == "done"
    assert len(job.results) == 1


def test_oversized_grid_cap_is_configurable(tmp_path):
    service = ExperimentService(
        tmp_path / "store", executor="serial", max_grid_points=4
    )
    try:
        payload = {
            "scenario": GOOD_SPEC["scenario"],
            "grid": {"reconfiguration_delay": [0.0, 0.1, 0.2, 0.3, 0.4]},
        }
        assert rejection_code(service, payload) == "oversized-grid"
        assert service.quarantine.snapshot()["by_code"] == {"oversized-grid": 1}
    finally:
        service.close()


def test_quarantine_counts_survive_restart(tmp_path):
    service = ExperimentService(tmp_path / "store", executor="serial")
    rejection_code(service, '{"scenario": {')
    service.close()
    reborn = ExperimentService(tmp_path / "store", executor="serial")
    try:
        assert reborn.quarantine.snapshot()["by_code"] == {"malformed-json": 1}
    finally:
        reborn.close()


# --------------------------------------------------------------------------- #
# Job execution + accounting
# --------------------------------------------------------------------------- #


def test_job_lifecycle_and_cache_accounting(service):
    job = service.wait(service.submit(GRID_SPEC).id)
    assert job.state == "done"
    assert job.points_simulated == 2
    assert job.points_from_cache == {}
    # Resubmission: all points answered from the in-memory memo.
    again = service.wait(service.submit(GRID_SPEC).id)
    assert again.points_simulated == 0
    assert again.points_from_cache == {"memory": 2}
    first = [r.to_dict() for r in job.results]
    second = [r.to_dict() for r in again.results]
    assert first == second
    metrics = service.metrics()
    assert metrics["scenarios"]["simulated"] == 2
    assert metrics["scenarios"]["cache_hits_memory"] == 2
    assert metrics["store"]["results"] == 2
    assert metrics["backend_wall_time"].keys() == {"electrical"}


def test_failed_job_does_not_kill_the_service(service, monkeypatch):
    import repro.experiments.runner as runner_module

    def explode(scenario):
        raise RuntimeError("boom")

    monkeypatch.setattr(runner_module, "_execute_scenario", explode)
    job = service.wait(service.submit(GOOD_SPEC).id)
    assert job.state == "failed"
    assert "boom" in job.error
    assert service.metrics()["jobs"]["failed"] == 1
    monkeypatch.undo()
    good = service.wait(service.submit(GOOD_SPEC).id)
    assert good.state == "done"


def test_second_service_on_same_store_hits_disk_not_simulation(tmp_path):
    first = ExperimentService(tmp_path / "store", executor="serial")
    try:
        original = first.wait(first.submit(GRID_SPEC).id)
    finally:
        first.close()

    second = ExperimentService(tmp_path / "store", executor="serial")
    try:
        job = second.wait(second.submit(GRID_SPEC).id)
        assert job.points_simulated == 0
        assert job.points_from_cache == {"store": 2}
        assert second.metrics()["scenarios"]["cache_hits_store"] == 2
        assert [r.to_dict() for r in job.results] == [
            r.to_dict() for r in original.results
        ]
    finally:
        second.close()


# --------------------------------------------------------------------------- #
# HTTP API
# --------------------------------------------------------------------------- #


@pytest.fixture()
def server(service):
    server = ExperimentServer(service, port=0)
    server.start()
    yield server
    server.stop()


def test_http_roundtrip_with_concurrent_clients(server):
    clients = [ServiceClient(server.url) for _ in range(3)]
    jobs = [None] * 3

    def submit(slot):
        job = clients[slot].submit(GOOD_SPEC)
        jobs[slot] = clients[slot].wait(job["id"], timeout=120.0)

    threads = [
        threading.Thread(target=submit, args=(slot,)) for slot in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180.0)
    assert all(job is not None and job["state"] == "done" for job in jobs)
    # Concurrent identical jobs may each simulate (no in-flight dedup), so
    # execution provenance (worker, wall_time) can differ — the simulation
    # payload must not.
    payloads = [
        [
            (
                row["config_hash"],
                row["iteration_times"],
                row["reconfigurations"],
                row["metrics"],
            )
            for row in job["results"]
        ]
        for job in jobs
    ]
    assert payloads[0] == payloads[1] == payloads[2]

    metrics = clients[0].metrics()
    assert metrics["jobs"]["submitted"] == 3
    assert metrics["jobs"]["done"] == 3
    # The job list omits result payloads; the job endpoint carries them.
    listed = clients[0].jobs()
    assert len(listed) == 3
    assert all("results" not in job for job in listed)
    assert all("result_hashes" in job for job in listed)


def test_http_serves_stored_results_by_hash(server):
    client = ServiceClient(server.url)
    job = client.wait(client.submit(GOOD_SPEC)["id"], timeout=120.0)
    config_hash = job["result_hashes"][0]
    envelope = client.result(config_hash)
    assert envelope["config_hash"] == config_hash
    assert envelope["result"] == job["results"][0]


def test_http_structured_errors(server):
    client = ServiceClient(server.url)
    with pytest.raises(ServiceError) as excinfo:
        client.job("job-999999")
    assert excinfo.value.status == 404
    assert excinfo.value.code == "not-found"

    with pytest.raises(ServiceError) as excinfo:
        client.submit({"scenario": {"backend": "quantum"}})
    assert excinfo.value.status == 400
    assert excinfo.value.code == "unknown-backend"

    with pytest.raises(ServiceError) as excinfo:
        client.result("not-a-hash")
    assert excinfo.value.status == 400

    with pytest.raises(ServiceError) as excinfo:
        client.result("0" * 64)
    assert excinfo.value.status == 404

    quarantine = client.quarantine()
    assert quarantine["by_code"] == {"unknown-backend": 1}
    assert client.healthz()["status"] == "ok"


def test_http_rejects_malformed_body(server):
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        server.url + "/sweeps",
        data=b'{"scenario": {',
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30.0)
    assert excinfo.value.code == 400
    payload = json.loads(excinfo.value.read().decode("utf-8"))
    assert payload["error"] == "malformed-json"
