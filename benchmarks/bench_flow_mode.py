"""End-to-end benchmark: flow-level vs analytic network mode.

Times one full scenario simulation (DAG build + network model + executor)
under both network modes, across cluster sizes and fabrics, so the cost of
the flow-level machinery — per-step flow expansion, max–min fair
reallocation, and (on photonic rails) time-domain circuit switching — is
tracked release over release.

A second family, ``fork_sweep``, times a degradation-severity sweep run
straight-through versus via the runner's shared-prefix fork path
(``run_many(..., fork=True)``) and asserts the results are bit-for-bit
identical — so the fork machinery's speedup is perf-gated alongside its
correctness.

Each measurement is emitted as one ``BENCH {...}`` JSON line::

    BENCH {"bench": "flow_mode", "fabric": "photonic", "gpus": 16,
           "network_mode": "flow", "wall_time_s": 0.18,
           "steady_iteration_s": 0.125, "events": 3}
    BENCH {"bench": "fork_sweep", "backend": "fattree", "gpus": 16,
           "branches": 6, "straight_s": 0.81, "forked_s": 0.39,
           "ratio": 0.48, "identical": true}

Run with::

    PYTHONPATH=src python benchmarks/bench_flow_mode.py [--quick] [nodes ...]

``--quick`` restricts the sweep to the smallest cluster (the CI smoke
configuration); positional arguments override the node counts.
"""

from __future__ import annotations

import json
import math
import sys
import time
from dataclasses import replace

from repro.experiments.contention import degraded_fabric_severity_grid
from repro.experiments.runner import ExperimentRunner, Scenario, run_scenario
from repro.parallelism.workloads import small_test_workload
from repro.simulator.faults import FaultEvent, FaultKind, FaultPlan
from repro.topology.devices import perlmutter_testbed

#: Fabrics benchmarked in both modes.  Photonic exercises the
#: circuit-switched path (Opus gating + deferred routes); the packet fabrics
#: exercise pure max–min fair sharing.  The ``fattree-faulted`` variant runs
#: the same fat-tree scenario under a fault plan (whole fabric degraded 10%
#: plus one NIC attachment down), so the fault path — deferred routes,
#: mid-run reallocation, reroute-on-failure — is perf-gated too.  The
#: ``fattree-approx`` variant enables the contention-scaling knobs
#: (ε-approximate reallocation + event coarsening), so the approximate
#: engine is perf-gated alongside the exact one and its allocator counters
#: land in the BENCH record.  The ``fattree-ecmp`` variant routes every flow
#: through the multipath policy lane (equal-cost enumeration + deterministic
#: hashing), and ``photonic-reactive`` swaps profile-driven provisioning for
#: the telemetry loop — so both new control paths are perf-gated from day
#: one.
FABRICS = (
    "electrical",
    "fattree",
    "photonic",
    "fattree-faulted",
    "fattree-approx",
    "fattree-ecmp",
    "photonic-reactive",
)

#: Knobs behind the ``fattree-approx`` benchmark variant.
APPROX_KNOBS = {"allocator_epsilon": 0.05, "coarsen_quantum": 1e-6}

#: Allocator counters copied from the run's metrics into the BENCH record
#: (flow mode only; the analytic model has no allocator).
STAT_KEYS = (
    "allocator_invocations",
    "rerated_components",
    "rerated_flows",
    "epsilon_skips",
)

#: The fault plan behind the ``fattree-faulted`` benchmark variant.
FAULT_PLAN = FaultPlan(
    events=(
        FaultEvent(
            time=0.0,
            kind=FaultKind.LINK_DEGRADE,
            link_kind="electrical",
            fraction=0.9,
        ),
        FaultEvent(time=0.0, kind=FaultKind.LINK_FAIL, src="gpu0", dst="gpu0.nic*"),
    )
)

#: Default sweep: up to 32 nodes (128 GPUs), where the flow-mode scaling work
#: (vectorized water-filling, component-local reallocation, route tables,
#: bulk step injection) dominates the wall time.
DEFAULT_NODE_COUNTS = (2, 8, 32)
NUM_ITERATIONS = 3

#: ``fork_sweep`` points: ``(num_nodes, num_iterations, fault_time)``.  The
#: fault time sits deep into the run so the shared prefix (everything before
#: the severity sweeps diverge) dominates — the regime delta-sweeps exist
#: for.  The quick CI configuration is the first point only.
FORK_SWEEP_POINTS = ((4, 12, 1.4), (16, 8, 0.9))


def build_scenario(fabric: str, num_nodes: int, network_mode: str) -> Scenario:
    # DP spans every node; 2-port NICs let the photonic planner build rings
    # over more than two scale-up domains (constraint C1/C3).
    cluster = replace(perlmutter_testbed(num_nodes=num_nodes), nic_ports_per_gpu=2)
    backend, _, variant = fabric.partition("-")
    knobs: dict = {"network_mode": network_mode}
    if variant == "faulted":
        knobs["faults"] = FAULT_PLAN
    elif variant == "approx" and network_mode == "flow":
        # The knobs only exist in flow mode; the analytic side of the ratio
        # is the plain fat tree (same scenario, same pricing).
        knobs.update(APPROX_KNOBS)
    elif variant == "ecmp" and network_mode == "flow":
        knobs["routing_policy"] = "ecmp"
    elif variant == "reactive" and network_mode == "flow":
        # Reactive provisioning needs the flow-mode telemetry loop; the
        # analytic side of the ratio is the plain profiled photonic model.
        knobs["provisioning"] = "reactive"
    return Scenario(
        workload=small_test_workload(pp=1, dp=num_nodes, tp=4),
        cluster=cluster,
        backend=backend,
        knobs=knobs,
        num_iterations=NUM_ITERATIONS,
        name=f"bench-{fabric}-{num_nodes}",
    )


def run_point(fabric: str, num_nodes: int, network_mode: str, repeat: int = 3) -> dict:
    scenario = build_scenario(fabric, num_nodes, network_mode)
    best = None
    metrics: dict = {}
    for _ in range(repeat):
        started = time.perf_counter()
        result = run_scenario(scenario)
        elapsed = time.perf_counter() - started
        metrics = result.metrics
        best = elapsed if best is None else min(best, elapsed)
    point = {
        "bench": "flow_mode",
        "fabric": fabric,
        "gpus": num_nodes * 4,
        "network_mode": network_mode,
        "wall_time_s": round(best, 6),
        "steady_iteration_s": metrics["steady_iteration_time"],
        "iterations": NUM_ITERATIONS,
    }
    # Allocator counters (flow mode only) make the contention-scaling knobs'
    # effect auditable from the BENCH line itself: the approx variant should
    # show epsilon_skips > 0 and fewer re-rated components per invocation.
    for key in STAT_KEYS:
        if key in metrics:
            point[key] = int(metrics[key])
    return point


def run_routing_overhead(num_nodes: int, repeat: int = 5) -> dict:
    """Wall-time cost of the routing-policy knob's default lane — about 1.0.

    Spelling ``routing_policy="single"`` out loud must stay the pre-knob
    code path (no router is instantiated), so explicit-over-default is a
    pure-noise ratio gated tightly (1.05x, no slack) in the baseline: any
    constant overhead sneaking onto the single-path lane trips it.  Best-of-5
    on both sides keeps millisecond wall times stable enough for the tight
    gate.
    """
    default = build_scenario("fattree", num_nodes, "flow")
    explicit = replace(
        default,
        knobs={**dict(default.knobs), "routing_policy": "single"},
        name=f"{default.name}-single",
    )

    # One untimed warm-up of each side, then interleaved timed repeats:
    # running all of one side first hands the other warm allocator caches
    # and skews the ratio well away from 1.0.
    run_scenario(default)
    run_scenario(explicit)
    default_s = single_s = math.inf
    for _ in range(repeat):
        started = time.perf_counter()
        run_scenario(default)
        default_s = min(default_s, time.perf_counter() - started)
        started = time.perf_counter()
        run_scenario(explicit)
        single_s = min(single_s, time.perf_counter() - started)
    return {
        "bench": "routing_overhead",
        "fabric": "fattree",
        "gpus": num_nodes * 4,
        "default_s": round(default_s, 6),
        "single_s": round(single_s, 6),
        "ratio": round(single_s / max(default_s, 1e-12), 6),
    }


def _comparable(result) -> tuple:
    """Result fields that must be identical between straight and forked runs."""
    return (list(result.iteration_times), dict(result.metrics))


def run_fork_sweep(num_nodes: int, num_iterations: int, fault_time: float) -> dict:
    """Time one severity sweep straight-through vs via shared-prefix forks.

    Both executions run serially in-process (the fork path branches a live
    object graph, which a process pool could not be handed), so the wall
    times divide into a machine-normalized ratio — forked over straight,
    lower is better.  Bit-identity of every member's iteration times and
    metrics is asserted, not just timed: a fork path that got fast by
    drifting is a bug, not a win.
    """
    grid = degraded_fabric_severity_grid(
        num_nodes=num_nodes,
        num_iterations=num_iterations,
        fault_time=fault_time,
    )
    started = time.perf_counter()
    straight = ExperimentRunner(executor="serial", memoize=False).run_many(grid)
    straight_s = time.perf_counter() - started
    started = time.perf_counter()
    forked = ExperimentRunner(executor="serial", memoize=False).run_many(
        grid, fork=True
    )
    forked_s = time.perf_counter() - started
    identical = all(
        _comparable(one) == _comparable(other)
        for one, other in zip(straight, forked)
    )
    if not identical:
        raise SystemExit(
            "fork_sweep: forked results diverged from straight runs "
            f"(nodes={num_nodes}, iterations={num_iterations})"
        )
    return {
        "bench": "fork_sweep",
        "backend": grid[0].backend,
        "gpus": num_nodes * 4,
        "branches": len(grid),
        "iterations": num_iterations,
        "straight_s": round(straight_s, 6),
        "forked_s": round(forked_s, 6),
        "ratio": round(forked_s / max(straight_s, 1e-12), 6),
        "identical": identical,
    }


def main(argv) -> int:
    quick = "--quick" in argv
    sizes = [int(arg) for arg in argv if not arg.startswith("--")]
    if not sizes:
        sizes = [DEFAULT_NODE_COUNTS[0]] if quick else list(DEFAULT_NODE_COUNTS)
    # Best-of-3 even in quick mode: the regression gate compares the
    # flow/analytic wall-time ratio, which single-shot timings make noisy.
    repeat = 3

    print(f"{'fabric':>12} {'gpus':>5} {'analytic (s)':>13} {'flow (s)':>10} {'ratio':>7}")
    for num_nodes in sizes:
        for fabric in FABRICS:
            points = {}
            for mode in ("analytic", "flow"):
                point = run_point(fabric, num_nodes, mode, repeat=repeat)
                points[mode] = point
                print("BENCH " + json.dumps(point, sort_keys=True))
            ratio = points["flow"]["wall_time_s"] / max(
                points["analytic"]["wall_time_s"], 1e-12
            )
            print(
                f"{fabric:>12} {num_nodes * 4:>5} "
                f"{points['analytic']['wall_time_s']:>13.4f} "
                f"{points['flow']['wall_time_s']:>10.4f} {ratio:>6.1f}x"
            )

    print(f"\n{'routing':>12} {'gpus':>5} {'default (s)':>13} {'single (s)':>10} {'ratio':>7}")
    for num_nodes in sizes:
        point = run_routing_overhead(num_nodes)
        print("BENCH " + json.dumps(point, sort_keys=True))
        print(
            f"{'fattree':>12} {point['gpus']:>5} {point['default_s']:>13.4f} "
            f"{point['single_s']:>10.4f} {point['ratio']:>6.2f}x"
        )

    fork_points = FORK_SWEEP_POINTS[:1] if quick else FORK_SWEEP_POINTS
    print(f"\n{'fork sweep':>12} {'gpus':>5} {'straight (s)':>13} {'forked (s)':>10} {'ratio':>7}")
    for num_nodes, num_iterations, fault_time in fork_points:
        point = run_fork_sweep(num_nodes, num_iterations, fault_time)
        print("BENCH " + json.dumps(point, sort_keys=True))
        print(
            f"{point['branches']:>10}br {point['gpus']:>5} "
            f"{point['straight_s']:>13.4f} {point['forked_s']:>10.4f} "
            f"{point['ratio']:>6.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
