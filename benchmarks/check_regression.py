"""CI perf-regression gate over the benchmarks' ``BENCH`` JSON lines.

The benchmarks emit one ``BENCH {...}`` JSON line per measurement.  This
script distills them into **machine-normalized ratios** — numbers that stay
comparable between a laptop and a cold CI runner because both sides of each
division ran on the same machine seconds apart:

* ``flow_mode:<fabric>:<gpus>`` — flow-mode wall time divided by analytic
  wall time for the same scenario (how expensive the flow-level machinery is
  relative to the alpha-beta pricing);
* ``max_min_fair:<flows>`` — shipped allocator time divided by the inline
  legacy allocator time (how fast the vectorized water-filling is relative
  to the original algorithm);
* ``fork_sweep:<backend>:<gpus>`` — wall time of a severity sweep run via
  shared-prefix forking divided by the same sweep run straight-through
  (how much of the common prefix the fork path actually amortizes; well
  below 1 when healthy).

Each ratio is compared against ``benchmarks/baseline.json``: the gate fails
when ``current > baseline * tolerance`` (default tolerance 1.3, i.e. a 30%
relative slowdown of the measured machinery).  A deliberate 2x slowdown of
the flow simulator roughly doubles every ``flow_mode`` ratio and trips the
gate on any runner.  The baseline's optional ``tolerance_overrides`` and
``slack_overrides`` maps loosen (or tighten) individual identities — keys
match exactly or, with a trailing ``*``, as a prefix — and both are
preserved verbatim across ``--update``.  Slack overrides exist for
identities whose two sides run the *same* code (e.g. the
``routing_overhead`` default-lane gate): the global absolute slack would
swamp a tight 1.05x tolerance there, so those identities pin slack to 0,
and ``--update`` pins their baseline reference at the identity 1.0 (the
true value by construction) instead of recording one run's noise.

Simulation *results* are also pinned: the flow-mode ``steady_iteration_s``
values are bitwise-deterministic for a given code version, so they are
compared exactly (within 1e-9 relative) to catch accidental semantic drift
riding along with a perf change.

Usage::

    PYTHONPATH=src python benchmarks/bench_flow_mode.py --quick | tee bench.txt
    PYTHONPATH=src python benchmarks/bench_max_min_fair.py 500 1000 | tee -a bench.txt
    python benchmarks/check_regression.py bench.txt

    # After an intentional perf or semantics change:
    python benchmarks/check_regression.py bench.txt --update

Only identities present in **both** the baseline and the current output are
compared (CI's ``--quick`` run covers a subset of the full baseline); the
gate fails if nothing matched at all, which catches a silently broken
benchmark step.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_TOLERANCE = 1.3
#: Absolute slack added on top of the relative tolerance.  The quick-mode
#: flow/analytic ratios sit near 1.3 over millisecond wall times, where
#: constant per-run overhead and simulation work scale differently across
#: machines; a genuine 2x hot-path slowdown multiplies every flow-mode ratio
#: several-fold, so the slack costs no sensitivity.
DEFAULT_ABSOLUTE_SLACK = 0.75
#: Relative tolerance for simulated-time equality (results are deterministic;
#: this only absorbs printing round-trips).
STEADY_REL_TOL = 1e-9
#: Ratio identities whose two sides run the *same* code (e.g. the
#: routing-policy default lane vs an explicit ``routing_policy="single"``).
#: Their true ratio is 1.0 by construction, so ``--update`` pins the
#: reference there instead of recording one run's noise — the measurement
#: only has to stay under the (tight, zero-slack) tolerance.
IDENTITY_RATIO_PREFIXES = ("routing_overhead:",)


def parse_bench_lines(lines: Iterable[str]) -> List[dict]:
    """Extract the JSON payload of every ``BENCH {...}`` line."""
    records = []
    for line in lines:
        line = line.strip()
        if not line.startswith("BENCH "):
            continue
        try:
            records.append(json.loads(line[len("BENCH "):]))
        except json.JSONDecodeError as exc:
            raise SystemExit(f"malformed BENCH line: {line!r} ({exc})")
    return records


def distill(records: List[dict]) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Reduce BENCH records to (machine-normalized ratios, steady times)."""
    ratios: Dict[str, float] = {}
    steady: Dict[str, float] = {}
    flow_walls: Dict[Tuple[str, int], Dict[str, float]] = {}
    for record in records:
        bench = record.get("bench")
        if bench == "max_min_fair":
            ratios[f"max_min_fair:{record['flows']}"] = (
                record["shipped_s"] / record["legacy_s"]
            )
        elif bench == "fork_sweep":
            ratios[f"fork_sweep:{record['backend']}:{record['gpus']}"] = record[
                "ratio"
            ]
        elif bench == "routing_overhead":
            ratios[
                f"routing_overhead:{record['fabric']}:{record['gpus']}"
            ] = record["ratio"]
        elif bench == "flow_mode":
            identity = (record["fabric"], record["gpus"])
            flow_walls.setdefault(identity, {})[record["network_mode"]] = record[
                "wall_time_s"
            ]
            steady[
                f"flow_mode:{record['fabric']}:{record['gpus']}:"
                f"{record['network_mode']}"
            ] = record["steady_iteration_s"]
    for (fabric, gpus), walls in flow_walls.items():
        if "flow" in walls and "analytic" in walls:
            ratios[f"flow_mode:{fabric}:{gpus}"] = walls["flow"] / max(
                walls["analytic"], 1e-12
            )
    return ratios, steady


def tolerance_for(key: str, default: float, overrides: Dict[str, float]) -> float:
    """Resolve ``key``'s value against per-identity baseline overrides.

    An override key either matches exactly or, with a trailing ``*``, as a
    prefix (``"flow_mode:fattree-approx*"`` covers every GPU count of that
    variant).  Exact matches win over prefixes; among prefixes the longest
    wins, so narrower overrides beat broader ones.  Shared by the tolerance
    and the absolute-slack override maps — the resolution rules are
    identical.
    """
    exact = overrides.get(key)
    if exact is not None:
        return exact
    best: Tuple[int, float] = (-1, default)
    for pattern, value in overrides.items():
        if pattern.endswith("*") and key.startswith(pattern[:-1]):
            if len(pattern) > best[0]:
                best = (len(pattern), value)
    return best[1]


def check(
    ratios: Dict[str, float],
    steady: Dict[str, float],
    baseline: dict,
    tolerance: float,
) -> List[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures: List[str] = []
    matched = 0
    slack = baseline.get("absolute_slack", DEFAULT_ABSOLUTE_SLACK)
    overrides = baseline.get("tolerance_overrides", {})
    slack_overrides = baseline.get("slack_overrides", {})
    for key, reference in sorted(baseline.get("ratios", {}).items()):
        current = ratios.get(key)
        if current is None:
            continue  # baseline covers more configs than this run measured
        matched += 1
        limit_tolerance = tolerance_for(key, tolerance, overrides)
        limit_slack = tolerance_for(key, slack, slack_overrides)
        # Slack is capped at the reference itself so small ratios (e.g. the
        # sub-1 allocator ratios) keep a meaningful gate: the limit never
        # exceeds (tolerance + 1) x baseline.
        limit = reference * limit_tolerance + min(limit_slack, reference)
        if current > limit:
            failures.append(
                f"perf regression: {key} ratio {current:.3f} exceeds "
                f"baseline {reference:.3f} x tolerance {limit_tolerance:g} "
                f"(limit {limit:.3f})"
            )
    for key, reference in sorted(baseline.get("steady", {}).items()):
        current = steady.get(key)
        if current is None:
            continue
        matched += 1
        if not math.isclose(current, reference, rel_tol=STEADY_REL_TOL):
            failures.append(
                f"semantic drift: {key} simulated {current!r}, "
                f"baseline {reference!r} (simulation results must only "
                "change together with a baseline refresh)"
            )
    if matched == 0:
        failures.append(
            "no benchmark measurement matched the baseline; the benchmark "
            "step is broken or the baseline needs regenerating (--update)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench_output",
        nargs="+",
        help="file(s) containing BENCH lines, or '-' for stdin",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="baseline JSON path"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline's tolerance factor",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current BENCH output and exit",
    )
    args = parser.parse_args(argv)

    lines: List[str] = []
    for source in args.bench_output:
        if source == "-":
            lines.extend(sys.stdin.readlines())
        else:
            lines.extend(Path(source).read_text().splitlines())
    ratios, steady = distill(parse_bench_lines(lines))
    if not ratios and not steady:
        print("check_regression: no BENCH lines found", file=sys.stderr)
        return 2

    if args.update:
        baseline = {
            "tolerance": args.tolerance or DEFAULT_TOLERANCE,
            "absolute_slack": DEFAULT_ABSOLUTE_SLACK,
            "ratios": {
                key: (
                    1.0
                    if key.startswith(IDENTITY_RATIO_PREFIXES)
                    else round(value, 6)
                )
                for key, value in sorted(ratios.items())
            },
            "steady": {
                key: value for key, value in sorted(steady.items())
            },
        }
        # Hand-maintained per-identity tolerances and slacks (see
        # ``tolerance_for``) survive a baseline refresh — only the
        # measurements regenerate.
        if args.baseline.exists():
            previous = json.loads(args.baseline.read_text())
            for overrides_key in ("tolerance_overrides", "slack_overrides"):
                overrides = previous.get(overrides_key)
                if overrides:
                    baseline[overrides_key] = overrides
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline updated: {args.baseline} ({len(ratios)} ratios)")
        return 0

    if not args.baseline.exists():
        print(
            f"check_regression: baseline {args.baseline} missing; run with "
            "--update to create it",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(args.baseline.read_text())
    tolerance = args.tolerance or baseline.get("tolerance", DEFAULT_TOLERANCE)
    failures = check(ratios, steady, baseline, tolerance)
    for failure in failures:
        print(f"check_regression: {failure}", file=sys.stderr)
    if not failures:
        compared = [key for key in baseline.get("ratios", {}) if key in ratios]
        print(
            f"check_regression: OK — {len(compared)} ratio(s) within "
            f"{tolerance:g}x of baseline"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
