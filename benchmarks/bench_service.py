"""Experiment-service benchmark: cold vs memo vs persistent-store serving.

Boots an in-process :class:`~repro.service.ExperimentService` behind a real
HTTP server and times the same sweep submission three ways:

* **cold** — nothing cached: every grid point is simulated;
* **memory** — resubmitted to the same server: answered from the runner's
  in-memory memo;
* **store** — resubmitted to a *fresh* server on the same store directory:
  answered from the persistent content-addressed result store with zero
  simulations.

Each phase is emitted as one ``BENCH {...}`` JSON line::

    BENCH {"bench": "service", "phase": "cold", "points": 4,
           "simulated": 4, "cache_hits": 0, "wall_time_s": 1.9}
    BENCH {"bench": "service", "phase": "store", "points": 4,
           "simulated": 0, "cache_hits": 4, "wall_time_s": 0.02,
           "speedup": 95.0}

Not wired into the CI perf-regression baseline (cache-hit latency is
dominated by HTTP polling, which would gate noise, not simulation): run it
by hand when touching the service stack::

    PYTHONPATH=src python benchmarks/bench_service.py [--points N]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.service import ExperimentServer, ExperimentService, ServiceClient


def bench_line(payload: dict) -> None:
    print("BENCH " + json.dumps(payload))
    sys.stdout.flush()


def spec(points: int) -> dict:
    return {
        "scenario": {
            "workload": "tiny",
            "cluster": "perlmutter:2",
            "backend": "electrical",
            "iterations": 2,
            "knobs": {"network_mode": "flow"},
        },
        "grid": {"allocator_epsilon": [1e-3 * (k + 1) for k in range(points)]},
    }


def run_phase(url: str, phase: str, points: int, baseline: float = 0.0) -> float:
    client = ServiceClient(url)
    started = time.perf_counter()
    job = client.wait(client.submit(spec(points))["id"], timeout=600.0, poll=0.01)
    wall = time.perf_counter() - started
    payload = {
        "bench": "service",
        "phase": phase,
        "points": points,
        "simulated": job["points_simulated"],
        "cache_hits": sum(job["points_from_cache"].values()),
        "wall_time_s": round(wall, 4),
    }
    if baseline:
        payload["speedup"] = round(baseline / wall, 1)
    bench_line(payload)
    return wall


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=4, help="grid points")
    parser.add_argument(
        "--workers", type=int, default=2, help="simulation worker processes"
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        store = Path(tmp) / "store"
        server = ExperimentServer(
            ExperimentService(store, max_workers=args.workers)
        ).start()
        try:
            cold = run_phase(server.url, "cold", args.points)
            run_phase(server.url, "memory", args.points, baseline=cold)
        finally:
            server.stop()

        server = ExperimentServer(
            ExperimentService(store, max_workers=args.workers)
        ).start()
        try:
            run_phase(server.url, "store", args.points, baseline=cold)
        finally:
            server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
