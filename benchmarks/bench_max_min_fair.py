"""Micro-benchmark: progressive filling, legacy vs shipped allocator.

The original ``max_min_fair_rates`` rebuilt the ``flow_by_id`` index on every
progressive-filling round and re-intersected every link's user set against the
unallocated set, making the allocation O(F^2) (+ O(rounds * links * users))
on large flow sets.  The shipped version removes frozen flows from the
per-link sets incrementally, decomposes the flow set into link-sharing
components (each solved independently), and water-fills large components with
numpy over a flat link x flow incidence structure with adaptive compaction.

This script times the shipped implementation against an inline copy of the
original algorithm on a fan-sharing workload that maximizes round count, and
emits one machine-comparable ``BENCH {...}`` JSON line per size::

    BENCH {"bench": "max_min_fair", "flows": 8000, "legacy_s": 0.07,
           "shipped_s": 0.004, "speedup": 17.5}

``speedup`` (and its inverse, the ``shipped_s / legacy_s`` ratio consumed by
``benchmarks/check_regression.py``) is a same-machine ratio, so the CI
regression gate can compare it against ``benchmarks/baseline.json`` without
caring how fast the runner is.  Run with::

    PYTHONPATH=src python benchmarks/bench_max_min_fair.py [num_flows ...]
"""

from __future__ import annotations

import json
import math
import sys
import time

from repro.simulator.flows import Flow, max_min_fair_rates
from repro.topology.base import Link, LinkKind


def legacy_max_min_fair_rates(flows, capacities=None):
    """The pre-optimization algorithm, verbatim (kept for the comparison)."""
    remaining_capacity = {}
    link_flows = {}
    for flow in flows:
        for link in flow.path:
            key = link.key
            if key not in remaining_capacity:
                capacity = link.bandwidth
                if capacities and key in capacities:
                    capacity = capacities[key]
                remaining_capacity[key] = capacity
                link_flows[key] = set()
            link_flows[key].add(flow.flow_id)
    rates = {}
    unallocated = set()
    for flow in flows:
        if not flow.path:
            rates[flow.flow_id] = math.inf
        else:
            unallocated.add(flow.flow_id)
    while unallocated:
        best_share = None
        for key, users in link_flows.items():
            active_users = users & unallocated
            if not active_users:
                continue
            share = remaining_capacity[key] / len(active_users)
            if best_share is None or share < best_share:
                best_share = share
        if best_share is None:
            for flow_id in unallocated:
                rates[flow_id] = math.inf
            break
        frozen = set()
        for key, users in link_flows.items():
            active_users = users & unallocated
            if not active_users:
                continue
            share = remaining_capacity[key] / len(active_users)
            if share <= best_share * (1 + 1e-12):
                frozen.update(active_users)
        for flow_id in frozen:
            rates[flow_id] = best_share
        flow_by_id = {flow.flow_id: flow for flow in flows}  # rebuilt per round
        for flow_id in frozen:
            for link in flow_by_id[flow_id].path:
                remaining_capacity[link.key] = max(
                    0.0, remaining_capacity[link.key] - best_share
                )
        unallocated -= frozen
    return rates


def fan_sharing_workload(num_flows: int, num_links: int = 64):
    """Many flows fanned over a few links with pairwise-distinct capacities.

    Each link gets a distinct fair share, so progressive filling runs one
    round per link; with short paths the dominant costs are exactly the
    per-round overheads the optimization removed (the ``flow_by_id`` rebuild
    and the per-link user-set intersections), not the path arithmetic.
    """
    links = [
        Link(
            src=f"n{i}",
            dst=f"n{i + 1}",
            bandwidth=float(i + 1) * 100.0,
            latency=0.0,
            kind=LinkKind.ELECTRICAL,
            link_id=i,
        )
        for i in range(num_links)
    ]
    return [
        Flow(
            flow_id=i,
            path=(links[i % num_links],),
            size_bytes=1.0,
            start_time=0.0,
        )
        for i in range(num_flows)
    ]


def timeit(fn, flows, repeat: int = 3) -> float:
    best = math.inf
    for _ in range(repeat):
        started = time.perf_counter()
        fn(flows)
        best = min(best, time.perf_counter() - started)
    return best


def main(argv) -> int:
    sizes = [int(arg) for arg in argv] or [1000, 4000, 16000, 32000]
    print(f"{'flows':>6} {'legacy (s)':>12} {'shipped (s)':>12} {'speedup':>8}")
    for num_flows in sizes:
        flows = fan_sharing_workload(num_flows)
        new_rates = max_min_fair_rates(flows)
        old_rates = legacy_max_min_fair_rates(flows)
        assert new_rates.keys() == old_rates.keys()
        assert all(
            math.isclose(new_rates[k], old_rates[k], rel_tol=1e-9)
            for k in new_rates
        ), "optimized allocation diverged from the legacy algorithm"
        legacy = timeit(legacy_max_min_fair_rates, flows)
        shipped = timeit(max_min_fair_rates, flows)
        print(
            "BENCH "
            + json.dumps(
                {
                    "bench": "max_min_fair",
                    "flows": num_flows,
                    "legacy_s": round(legacy, 6),
                    "shipped_s": round(shipped, 6),
                    "speedup": round(legacy / shipped, 3),
                },
                sort_keys=True,
            )
        )
        print(
            f"{num_flows:>6} {legacy:>12.4f} {shipped:>12.4f} "
            f"{legacy / shipped:>7.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
