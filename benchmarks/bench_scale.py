"""Scale-family benchmark: wall time of the 1k/4k/10k fat-tree scenarios.

Unlike ``bench_flow_mode.py`` (machine-normalized flow/analytic ratios on
small clusters), this benchmark times the large contention scenarios raw —
the numbers are machine-specific and are recorded as evidence, not gated.
Each point is emitted as one ``BENCH {...}`` JSON line::

    BENCH {"bench": "scale", "backend": "fattree", "endpoints": 10000,
           "network_mode": "flow", "wall_time_s": 207.2,
           "steady_iteration_s": 1.314..., "iterations": 2, ...}

plus the run's allocator counters.  Run with::

    PYTHONPATH=src python benchmarks/bench_scale.py [endpoints ...]
    PYTHONPATH=src python benchmarks/bench_scale.py --epsilon 0.05 \
        --quantum 1e-6 10000

The committed ``benchmarks/scale_evidence.txt`` holds the reference
machine's most recent numbers for the 2k/4k/10k fat-tree points.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.contention import scale_scenario
from repro.experiments.runner import run_scenario

STAT_KEYS = (
    "allocator_invocations",
    "rerated_components",
    "rerated_flows",
    "epsilon_skips",
)


def run_point(
    endpoints: int, backend: str, epsilon: float, quantum: float
) -> dict:
    scenario = scale_scenario(
        num_endpoints=endpoints,
        backend=backend,
        num_iterations=2,
        allocator_epsilon=epsilon,
        coarsen_quantum=quantum,
    )
    started = time.perf_counter()
    result = run_scenario(scenario)
    elapsed = time.perf_counter() - started
    point = {
        "bench": "scale",
        "backend": backend,
        "endpoints": endpoints,
        "network_mode": "flow",
        "wall_time_s": round(elapsed, 3),
        "steady_iteration_s": result.metrics["steady_iteration_time"],
        "iterations": 2,
        "allocator_epsilon": epsilon,
        "coarsen_quantum": quantum,
    }
    for key in STAT_KEYS:
        if key in result.metrics:
            point[key] = int(result.metrics[key])
    return point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("endpoints", nargs="*", type=int, default=None)
    parser.add_argument("--backend", default="fattree")
    parser.add_argument("--epsilon", type=float, default=0.0)
    parser.add_argument("--quantum", type=float, default=0.0)
    args = parser.parse_args(argv)
    sizes = args.endpoints or [10_000]
    for endpoints in sizes:
        point = run_point(endpoints, args.backend, args.epsilon, args.quantum)
        print("BENCH " + json.dumps(point, sort_keys=True), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
