"""Device mesh: mapping global ranks to parallelism coordinates and hardware.

The mesh follows the Megatron/TorchTitan convention of ordering the parallelism
axes from outermost to innermost as ``(pp, dp, cp, ep, tp)`` with TP varying
fastest.  Because consecutive global ranks are placed on consecutive GPUs of
the same scale-up domain, making TP the fastest-varying axis keeps each TP
group inside one scale-up domain whenever ``tp`` divides the domain size —
exactly the placement the paper assumes (frequent TP collectives never touch
the rails).

The mesh also answers the placement questions the rest of the library asks:

* which (scale-up domain, local rank / rail) a global rank maps to;
* which ranks form each communication group along each axis;
* whether a group's traffic is scale-up (intra-domain) or scale-out (rail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..topology.devices import ClusterSpec
from .config import ParallelismConfig

#: Axis order from outermost (slowest varying) to innermost (fastest varying).
AXIS_ORDER: Tuple[str, ...] = ("pp", "dp", "cp", "ep", "tp")


@dataclass(frozen=True)
class MeshCoordinate:
    """The position of one rank along every parallelism axis."""

    pp: int
    dp: int
    cp: int
    ep: int
    tp: int

    def along(self, axis: str) -> int:
        """Return the coordinate along ``axis`` (one of ``AXIS_ORDER``)."""
        try:
            return getattr(self, axis)
        except AttributeError as exc:
            raise ConfigurationError(f"unknown axis {axis!r}") from exc

    def as_dict(self) -> Dict[str, int]:
        """Return the coordinate as an axis → index mapping."""
        return {axis: self.along(axis) for axis in AXIS_ORDER}


class DeviceMesh:
    """Rank ↔ parallelism-coordinate ↔ hardware mapping for one job.

    Parameters
    ----------
    parallelism:
        The parallelism degrees.
    cluster:
        Optional hardware description.  When provided, the mesh validates
        that the job fits the cluster and that TP groups stay inside scale-up
        domains, and exposes rail/domain lookups.
    """

    def __init__(
        self,
        parallelism: ParallelismConfig,
        cluster: Optional[ClusterSpec] = None,
    ) -> None:
        self.parallelism = parallelism
        self.cluster = cluster
        self._sizes: Dict[str, int] = {
            "pp": parallelism.pp,
            "dp": parallelism.dp,
            "cp": parallelism.cp,
            "ep": parallelism.ep,
            "tp": parallelism.tp,
        }
        if cluster is not None:
            if parallelism.world_size > cluster.num_gpus:
                raise ConfigurationError(
                    f"job needs {parallelism.world_size} GPUs but the cluster "
                    f"has only {cluster.num_gpus}"
                )
            per_domain = cluster.scaleup.gpus_per_domain
            if parallelism.tp > per_domain:
                raise ConfigurationError(
                    f"tp={parallelism.tp} exceeds the scale-up domain size "
                    f"{per_domain}; the paper assumes TP fits in scale-up"
                )
            if per_domain % parallelism.tp != 0:
                raise ConfigurationError(
                    f"tp={parallelism.tp} must divide the scale-up domain size "
                    f"{per_domain} to keep TP groups inside one domain"
                )

    # ------------------------------------------------------------------ #
    # Rank ↔ coordinate
    # ------------------------------------------------------------------ #

    @property
    def world_size(self) -> int:
        """Number of ranks in the mesh."""
        return self.parallelism.world_size

    def size(self, axis: str) -> int:
        """Degree of parallelism along ``axis``."""
        if axis not in self._sizes:
            raise ConfigurationError(f"unknown axis {axis!r}")
        return self._sizes[axis]

    def coordinate(self, rank: int) -> MeshCoordinate:
        """Return the mesh coordinate of ``rank``."""
        self._check_rank(rank)
        remainder = rank
        coords: Dict[str, int] = {}
        for axis in reversed(AXIS_ORDER):  # innermost first
            size = self._sizes[axis]
            coords[axis] = remainder % size
            remainder //= size
        return MeshCoordinate(**coords)

    def rank_of(self, coordinate: MeshCoordinate) -> int:
        """Return the global rank at ``coordinate``."""
        rank = 0
        for axis in AXIS_ORDER:  # outermost first
            size = self._sizes[axis]
            index = coordinate.along(axis)
            if not 0 <= index < size:
                raise ConfigurationError(
                    f"coordinate {index} out of range for axis {axis!r} (size {size})"
                )
            rank = rank * size + index
        return rank

    def ranks(self) -> Iterator[int]:
        """Iterate over all global ranks."""
        return iter(range(self.world_size))

    # ------------------------------------------------------------------ #
    # Communication groups
    # ------------------------------------------------------------------ #

    def group_along(self, axis: str, rank: int) -> Tuple[int, ...]:
        """Return the communication group of ``rank`` along ``axis``.

        The group contains every rank that differs from ``rank`` only in the
        ``axis`` coordinate, ordered by that coordinate (ring order).
        """
        base = self.coordinate(rank).as_dict()
        members: List[int] = []
        for index in range(self.size(axis)):
            coords = dict(base)
            coords[axis] = index
            members.append(self.rank_of(MeshCoordinate(**coords)))
        return tuple(members)

    def groups_along(self, axis: str) -> List[Tuple[int, ...]]:
        """Return every distinct communication group along ``axis``."""
        seen = set()
        groups: List[Tuple[int, ...]] = []
        for rank in self.ranks():
            group = self.group_along(axis, rank)
            if group not in seen:
                seen.add(group)
                groups.append(group)
        return groups

    def pipeline_stage(self, rank: int) -> int:
        """Return the pipeline stage of ``rank``."""
        return self.coordinate(rank).pp

    def ranks_of_stage(self, stage: int) -> Tuple[int, ...]:
        """Return every rank hosting pipeline stage ``stage``."""
        return tuple(
            rank for rank in self.ranks() if self.coordinate(rank).pp == stage
        )

    # ------------------------------------------------------------------ #
    # Hardware placement
    # ------------------------------------------------------------------ #

    def _require_cluster(self) -> ClusterSpec:
        if self.cluster is None:
            raise ConfigurationError("this mesh was built without a cluster")
        return self.cluster

    def gpu_of(self, rank: int) -> int:
        """Return the global GPU id hosting ``rank`` (identity placement)."""
        self._check_rank(rank)
        self._require_cluster()
        return rank

    def domain_of(self, rank: int) -> int:
        """Return the scale-up domain hosting ``rank``."""
        return self._require_cluster().domain_of(self.gpu_of(rank))

    def rail_of(self, rank: int) -> int:
        """Return the rail (local rank inside the domain) of ``rank``."""
        return self._require_cluster().rail_of(self.gpu_of(rank))

    def is_scaleout_group(self, group: Sequence[int]) -> bool:
        """Return whether a group spans multiple scale-up domains.

        Scale-out groups generate rail traffic; intra-domain groups stay on
        the NVLink interconnect.
        """
        domains = {self.domain_of(rank) for rank in group}
        return len(domains) > 1

    def rails_of_group(self, group: Sequence[int]) -> Tuple[int, ...]:
        """Return the sorted set of rails the group's ranks attach to."""
        return tuple(sorted({self.rail_of(rank) for rank in group}))

    def domains_of_group(self, group: Sequence[int]) -> Tuple[int, ...]:
        """Return the sorted set of scale-up domains the group's ranks live in."""
        return tuple(sorted({self.domain_of(rank) for rank in group}))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ConfigurationError(
                f"rank {rank} out of range for world size {self.world_size}"
            )

    def __repr__(self) -> str:
        return f"DeviceMesh({self.parallelism.describe()}, world={self.world_size})"
