"""Pipeline-parallel schedules (1F1B and GPipe).

The paper's trace study (§3.1) uses the 1-forward-1-backward (1F1B) schedule
[61]: each pipeline stage runs a warm-up phase of forward micro-batches, a
steady phase alternating one forward and one backward, and a cool-down phase
draining the remaining backwards.  The phase a communication falls into is
part of the paper's Fig. 3 presentation, and the number of phase transitions
enters the window-count formula (Eq. 1), so the schedule generator annotates
every action with its phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from ..errors import ConfigurationError


class PipelinePhase(str, Enum):
    """Pipeline execution phase of one action (paper Fig. 3 annotation)."""

    WARMUP = "warm-up"
    STEADY = "steady"
    COOLDOWN = "cool-down"
    SYNC = "sync"


class ActionKind(str, Enum):
    """What a pipeline stage does in one schedule slot."""

    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass(frozen=True)
class PipelineAction:
    """One slot of a stage's pipeline schedule."""

    kind: ActionKind
    microbatch: int
    stage: int
    phase: PipelinePhase

    def __str__(self) -> str:
        letter = "F" if self.kind == ActionKind.FORWARD else "B"
        return f"{letter}{self.microbatch}@s{self.stage}[{self.phase.value}]"


def one_f_one_b_schedule(
    num_stages: int, num_microbatches: int, stage: int
) -> List[PipelineAction]:
    """Return the 1F1B schedule of ``stage`` for one training iteration.

    Parameters
    ----------
    num_stages:
        Pipeline depth (PP degree).
    num_microbatches:
        Micro-batches per iteration per pipeline.
    stage:
        Which stage's schedule to generate (0 = first stage).
    """
    _validate(num_stages, num_microbatches, stage)
    warmup = min(num_stages - stage - 1, num_microbatches)
    actions: List[PipelineAction] = []

    for microbatch in range(warmup):
        actions.append(
            PipelineAction(ActionKind.FORWARD, microbatch, stage, PipelinePhase.WARMUP)
        )

    steady_count = num_microbatches - warmup
    for index in range(steady_count):
        forward_mb = warmup + index
        backward_mb = index
        is_last_forward = forward_mb == num_microbatches - 1
        phase = PipelinePhase.STEADY
        actions.append(
            PipelineAction(ActionKind.FORWARD, forward_mb, stage, phase)
        )
        actions.append(
            PipelineAction(
                ActionKind.BACKWARD,
                backward_mb,
                stage,
                PipelinePhase.COOLDOWN if is_last_forward else phase,
            )
        )

    for microbatch in range(steady_count, num_microbatches):
        actions.append(
            PipelineAction(
                ActionKind.BACKWARD, microbatch, stage, PipelinePhase.COOLDOWN
            )
        )
    return actions


def gpipe_schedule(
    num_stages: int, num_microbatches: int, stage: int
) -> List[PipelineAction]:
    """Return the GPipe (all-forward-then-all-backward) schedule of ``stage``."""
    _validate(num_stages, num_microbatches, stage)
    actions: List[PipelineAction] = []
    for microbatch in range(num_microbatches):
        phase = PipelinePhase.WARMUP if microbatch == 0 else PipelinePhase.STEADY
        actions.append(PipelineAction(ActionKind.FORWARD, microbatch, stage, phase))
    for microbatch in range(num_microbatches):
        actions.append(
            PipelineAction(ActionKind.BACKWARD, microbatch, stage, PipelinePhase.COOLDOWN)
        )
    return actions


SCHEDULES = {
    "1f1b": one_f_one_b_schedule,
    "gpipe": gpipe_schedule,
}


def schedule_for(
    name: str, num_stages: int, num_microbatches: int, stage: int
) -> List[PipelineAction]:
    """Dispatch to a named pipeline schedule (``"1f1b"`` or ``"gpipe"``)."""
    if name not in SCHEDULES:
        raise ConfigurationError(
            f"unknown pipeline schedule {name!r}; known: {sorted(SCHEDULES)}"
        )
    return SCHEDULES[name](num_stages, num_microbatches, stage)


def num_pipeline_bubbles(num_stages: int, num_microbatches: int) -> float:
    """Pipeline bubble fraction of 1F1B: ``(p-1) / (m + p - 1)``."""
    if num_stages <= 0 or num_microbatches <= 0:
        raise ConfigurationError("stages and microbatches must be positive")
    return (num_stages - 1) / float(num_microbatches + num_stages - 1)


def _validate(num_stages: int, num_microbatches: int, stage: int) -> None:
    if num_stages <= 0:
        raise ConfigurationError("num_stages must be positive")
    if num_microbatches <= 0:
        raise ConfigurationError("num_microbatches must be positive")
    if not 0 <= stage < num_stages:
        raise ConfigurationError(
            f"stage {stage} out of range for {num_stages} pipeline stages"
        )
