"""Rule-of-thumb LLM parallelism strategy selection (paper Table 1).

Table 1 of the paper summarizes the practices from the Ultra-Scale Playbook
[67]: which combinations of TP / DP / PP are used as a function of model size
and GPU count.  This module encodes those rules as data plus a selector that,
given a model and a GPU budget, proposes a concrete
:class:`~repro.parallelism.config.ParallelismConfig` consistent with them.
The selector is intentionally simple — it is the paper's coarse guidance, not
an auto-parallelization system — but it is used by the examples and the
Table 1 benchmark to show which regimes produce multi-dimensional scale-out
traffic (the case photonic rails must handle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .config import ModelConfig, ParallelismConfig

#: Threshold between "small" and "large" models in Table 1, in parameters.
LARGE_MODEL_PARAMS = 10e9


@dataclass(frozen=True)
class StrategyRule:
    """One row of Table 1: a GPU-count band and the recommended strategies."""

    model_scale: str
    min_gpus: int
    max_gpus: Optional[int]
    strategies: Tuple[str, ...]

    def matches(self, num_gpus: int) -> bool:
        """Return whether ``num_gpus`` falls inside this rule's band."""
        if num_gpus < self.min_gpus:
            return False
        return self.max_gpus is None or num_gpus <= self.max_gpus


#: The paper's Table 1, encoded verbatim.
TABLE1_RULES: Tuple[StrategyRule, ...] = (
    StrategyRule("small", 1, 8, ("TP", "DP")),
    StrategyRule("large", 9, 512, ("TP & PP", "TP & DP", "DP")),
    StrategyRule("large", 513, 1024, ("DP & PP", "DP & TP")),
    StrategyRule("large", 1025, None, ("TP, DP & PP",)),
)


def recommended_strategies(model: ModelConfig, num_gpus: int) -> Tuple[str, ...]:
    """Return the Table 1 strategy names for ``model`` on ``num_gpus`` GPUs."""
    if num_gpus <= 0:
        raise ConfigurationError("num_gpus must be positive")
    is_large = model.total_params > LARGE_MODEL_PARAMS
    if not is_large:
        if num_gpus <= 8:
            return ("TP", "DP")
        # Small models on many GPUs simply use data parallelism.
        return ("DP",)
    for rule in TABLE1_RULES[1:]:
        if rule.matches(num_gpus):
            return rule.strategies
    return TABLE1_RULES[-1].strategies


def _largest_power_of_two_at_most(value: int) -> int:
    if value < 1:
        return 1
    return 1 << (value.bit_length() - 1)


def propose_parallelism(
    model: ModelConfig,
    num_gpus: int,
    gpus_per_scaleup: int = 8,
    use_fsdp: bool = True,
) -> ParallelismConfig:
    """Propose a concrete parallelism configuration following Table 1.

    The proposal keeps TP inside the scale-up domain, sizes PP to the smallest
    power of two that (together with TP) bounds per-GPU parameter memory, and
    gives the remaining factor to DP.  ``num_gpus`` must be a power of two.

    This mirrors the reasoning practitioners apply and yields configurations
    in the same families as Table 1's recommendations; it is not an optimizer.
    """
    if num_gpus <= 0:
        raise ConfigurationError("num_gpus must be positive")
    if num_gpus & (num_gpus - 1):
        raise ConfigurationError("propose_parallelism expects a power-of-two GPU count")
    is_large = model.total_params > LARGE_MODEL_PARAMS

    if not is_large:
        if num_gpus <= 8:
            return ParallelismConfig(tp=num_gpus, use_fsdp=use_fsdp)
        return ParallelismConfig(
            tp=1, dp=num_gpus, use_fsdp=use_fsdp
        )

    tp = min(_largest_power_of_two_at_most(gpus_per_scaleup), 8, num_gpus)
    remaining = num_gpus // tp

    if num_gpus <= 512:
        pp = min(remaining, _pp_for_memory(model, tp))
        pp = _largest_power_of_two_at_most(max(1, pp))
        dp = remaining // pp
        return ParallelismConfig(tp=tp, pp=pp, dp=max(1, dp), use_fsdp=use_fsdp)
    if num_gpus <= 1024:
        pp = min(remaining, max(2, _pp_for_memory(model, tp)))
        pp = _largest_power_of_two_at_most(pp)
        dp = remaining // pp
        return ParallelismConfig(tp=tp, pp=pp, dp=max(1, dp), use_fsdp=use_fsdp)
    pp = min(remaining, max(4, _pp_for_memory(model, tp)))
    pp = _largest_power_of_two_at_most(pp)
    dp = remaining // pp
    return ParallelismConfig(tp=tp, pp=pp, dp=max(1, dp), use_fsdp=use_fsdp)


def _pp_for_memory(model: ModelConfig, tp: int, memory_budget_bytes: float = 60e9) -> int:
    """Smallest pipeline degree keeping optimizer state within the memory budget.

    Assumes mixed-precision Adam (≈ 16 bytes/parameter of state + weights)
    sharded over TP; FSDP sharding further reduces this, so the estimate is
    conservative in the right direction for strategy selection.
    """
    bytes_per_param = 16.0
    per_gpu = model.total_params * bytes_per_param / tp
    return max(1, math.ceil(per_gpu / memory_budget_bytes))


def strategy_table(models: Sequence[ModelConfig], gpu_counts: Sequence[int]) -> List[dict]:
    """Build the Table 1 reproduction rows for the given models and GPU counts."""
    rows: List[dict] = []
    for model in models:
        for num_gpus in gpu_counts:
            strategies = recommended_strategies(model, num_gpus)
            try:
                proposal = propose_parallelism(model, num_gpus)
                proposed = proposal.describe()
            except ConfigurationError:
                proposed = "n/a"
            rows.append(
                {
                    "model": model.name,
                    "params": model.total_params,
                    "num_gpus": num_gpus,
                    "recommended": ", ".join(strategies),
                    "proposed": proposed,
                }
            )
    return rows
