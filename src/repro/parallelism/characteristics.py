"""Per-parallelism communication characteristics (paper Table 2).

Table 2 of the paper summarizes, for each parallelism strategy, what it saves
(memory / compute) and what communication it costs (collective types, when
they fire, and how often).  This module encodes that table as structured data
and derives the quantitative per-iteration communication volume for a concrete
workload, which the Table 2 benchmark prints next to the qualitative rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..collectives.primitives import CollectiveType
from ..errors import ConfigurationError
from .config import WorkloadConfig


@dataclass(frozen=True)
class ParallelismCharacteristics:
    """One row of Table 2.

    Attributes
    ----------
    name:
        Strategy name as the paper writes it (``"DP"``, ``"FSDP"``, ...).
    memory_reduction:
        Qualitative memory savings (the paper's notation, e.g. ``"gbs/dp"``).
    compute_reduction:
        Qualitative compute savings.
    communication:
        Qualitative description of collective types and frequency.
    collectives:
        The collective types the strategy issues on the wire.
    phase:
        When the collectives fire: ``"fwd"``, ``"bwd"``, or ``"fwd bwd"``.
    frequency:
        Qualitative issue frequency (``"per layer"``, ``"per operator"``,
        ``"per microbatch"``, ``"per model"``).
    """

    name: str
    memory_reduction: str
    compute_reduction: str
    communication: str
    collectives: Tuple[CollectiveType, ...]
    phase: str
    frequency: str


#: The paper's Table 2, encoded row by row.
TABLE2_ROWS: Tuple[ParallelismCharacteristics, ...] = (
    ParallelismCharacteristics(
        name="DP",
        memory_reduction="gbs/dp",
        compute_reduction="gbs/dp",
        communication="bwd AR per layer/per model",
        collectives=(CollectiveType.ALL_REDUCE,),
        phase="bwd",
        frequency="per layer/per model",
    ),
    ParallelismCharacteristics(
        name="FSDP",
        memory_reduction="gbs/dp, params/dp",
        compute_reduction="gbs/dp",
        communication="fwd AG, bwd RS per layer/model",
        collectives=(CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER),
        phase="fwd bwd",
        frequency="per layer/per model",
    ),
    ParallelismCharacteristics(
        name="TP",
        memory_reduction="params/tp, grads/tp, optims/tp",
        compute_reduction="params/tp",
        communication="fwd bwd AR per operator",
        collectives=(CollectiveType.ALL_REDUCE,),
        phase="fwd bwd",
        frequency="per operator",
    ),
    ParallelismCharacteristics(
        name="TP & SP",
        memory_reduction="params/tp, grads/tp, optims/tp, activs/tp",
        compute_reduction="params/tp, activs/tp",
        communication="fwd bwd AG&RS per operator",
        collectives=(CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER),
        phase="fwd bwd",
        frequency="per operator",
    ),
    ParallelismCharacteristics(
        name="CP",
        memory_reduction="kv_cache/cp, seq/cp",
        compute_reduction="seq/cp",
        communication="fwd AG bwd RS per layer",
        collectives=(CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER),
        phase="fwd bwd",
        frequency="per layer",
    ),
    ParallelismCharacteristics(
        name="PP",
        memory_reduction="params/pp, grads/pp, optims/pp, activs/pp",
        compute_reduction="params/pp",
        communication="fwd bwd Send/Recv per microbatch",
        collectives=(CollectiveType.SEND_RECV,),
        phase="fwd bwd",
        frequency="per microbatch",
    ),
    ParallelismCharacteristics(
        name="EP",
        memory_reduction="experts/ep",
        compute_reduction="experts/ep",
        communication="fwd bwd AllToAll per layer",
        collectives=(CollectiveType.ALL_TO_ALL,),
        phase="fwd bwd",
        frequency="per layer",
    ),
)

TABLE2_BY_NAME: Dict[str, ParallelismCharacteristics] = {
    row.name: row for row in TABLE2_ROWS
}


def characteristics_for(name: str) -> ParallelismCharacteristics:
    """Return the Table 2 row for strategy ``name``."""
    if name not in TABLE2_BY_NAME:
        raise ConfigurationError(
            f"unknown parallelism strategy {name!r}; known: {sorted(TABLE2_BY_NAME)}"
        )
    return TABLE2_BY_NAME[name]


def per_iteration_volume_bytes(workload: WorkloadConfig) -> Dict[str, float]:
    """Per-rank scale-out communication volume of one iteration, by axis.

    Quantifies Table 2 for a concrete workload: total bytes each rank sends on
    the wire per training iteration, split by parallelism axis.  TP volume is
    reported as well (it stays in the scale-up domain, but the comparison is
    instructive).
    """
    model = workload.model
    par = workload.parallelism
    num_microbatches = workload.num_microbatches
    layers_per_stage = workload.layers_per_stage
    volumes: Dict[str, float] = {}

    # Data parallelism (FSDP or classic).
    if par.dp > 1:
        n = par.dp
        if par.use_fsdp:
            ag = workload.fsdp_allgather_bytes_per_layer() * (n - 1)
            rs = workload.fsdp_reducescatter_bytes_per_layer() * (n - 1) / n
            volumes["dp"] = layers_per_stage * (ag + rs)
        else:
            volumes["dp"] = 2.0 * (n - 1) / n * workload.dp_allreduce_bytes()

    # Pipeline parallelism: one activation send and one gradient receive per
    # micro-batch per stage boundary (interior stages do both).
    if par.pp > 1:
        volumes["pp"] = 2.0 * num_microbatches * workload.pp_activation_bytes()

    # Tensor parallelism: AllReduce (or AG/RS under SP) per operator; two
    # matmul blocks per layer, forward and backward.
    if par.tp > 1:
        operators = 2 * layers_per_stage
        per_op = 2.0 * (par.tp - 1) / par.tp * workload.tp_allreduce_bytes()
        volumes["tp"] = 2.0 * operators * per_op * num_microbatches

    # Context parallelism: KV AllGather per layer forward, RS backward.
    if par.cp > 1:
        n = par.cp
        ag = workload.cp_allgather_bytes() * (n - 1)
        rs = workload.cp_allgather_bytes() * (n - 1) / n
        volumes["cp"] = layers_per_stage * num_microbatches * (ag + rs)

    # Expert parallelism: dispatch + combine AllToAll per MoE layer, fwd + bwd.
    if par.ep > 1:
        n = par.ep
        per_layer = 4.0 * (n - 1) / n * workload.ep_alltoall_bytes()
        volumes["ep"] = layers_per_stage * num_microbatches * per_layer

    return volumes


def table2_rows_for(workload: WorkloadConfig) -> List[dict]:
    """Combine the qualitative Table 2 rows with quantitative per-axis volumes."""
    volumes = per_iteration_volume_bytes(workload)
    axis_for_row = {
        "DP": "dp",
        "FSDP": "dp",
        "TP": "tp",
        "TP & SP": "tp",
        "CP": "cp",
        "PP": "pp",
        "EP": "ep",
    }
    rows: List[dict] = []
    for row in TABLE2_ROWS:
        axis = axis_for_row[row.name]
        rows.append(
            {
                "strategy": row.name,
                "memory_reduction": row.memory_reduction,
                "compute_reduction": row.compute_reduction,
                "communication": row.communication,
                "volume_bytes_per_iteration": volumes.get(axis, 0.0),
            }
        )
    return rows
