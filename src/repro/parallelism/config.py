"""Model, parallelism, and training configuration objects.

These configurations are the inputs to the workload generator
(:mod:`repro.parallelism.dag`): a transformer :class:`ModelConfig`, a
:class:`ParallelismConfig` describing how the model is split across GPUs, and a
:class:`TrainingConfig` with batch sizes and precision.  Together they
determine every collective's payload size and the per-micro-batch compute
volume, which is all the photonic-rail analysis needs from the ML side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigurationError

#: Bytes per element for the supported training precisions.
DTYPE_BYTES: Dict[str, int] = {
    "fp32": 4,
    "tf32": 4,
    "bf16": 2,
    "fp16": 2,
    "fp8": 1,
}


@dataclass(frozen=True)
class ModelConfig:
    """A decoder-only transformer model (the LLM family the paper targets).

    Attributes
    ----------
    name:
        Human-readable name (e.g. ``"Llama3-8B"``).
    num_layers:
        Number of transformer blocks.
    hidden_size:
        Model (residual-stream) width.
    ffn_hidden_size:
        Width of the feed-forward inner layer (SwiGLU gate+up treated as one
        effective width for parameter counting).
    num_attention_heads:
        Query heads.
    num_kv_heads:
        Key/value heads (grouped-query attention); equals
        ``num_attention_heads`` for classic multi-head attention.
    vocab_size:
        Vocabulary size (embedding + output head).
    seq_length:
        Training sequence length in tokens.
    num_experts:
        Experts per MoE layer; 0 for dense models.
    moe_top_k:
        Number of experts routed per token (MoE models only).
    """

    name: str
    num_layers: int
    hidden_size: int
    ffn_hidden_size: int
    num_attention_heads: int
    num_kv_heads: int
    vocab_size: int
    seq_length: int
    num_experts: int = 0
    moe_top_k: int = 2

    def __post_init__(self) -> None:
        if min(self.num_layers, self.hidden_size, self.ffn_hidden_size) <= 0:
            raise ConfigurationError("model dimensions must be positive")
        if self.num_attention_heads <= 0 or self.num_kv_heads <= 0:
            raise ConfigurationError("attention head counts must be positive")
        if self.hidden_size % self.num_attention_heads != 0:
            raise ConfigurationError("hidden_size must divide evenly into heads")
        if self.num_attention_heads % self.num_kv_heads != 0:
            raise ConfigurationError("num_kv_heads must divide num_attention_heads")
        if self.vocab_size <= 0 or self.seq_length <= 0:
            raise ConfigurationError("vocab_size and seq_length must be positive")
        if self.num_experts < 0:
            raise ConfigurationError("num_experts must be non-negative")

    # ------------------------------------------------------------------ #
    # Parameter counting
    # ------------------------------------------------------------------ #

    @property
    def head_dim(self) -> int:
        """Dimension of one attention head."""
        return self.hidden_size // self.num_attention_heads

    @property
    def attention_params_per_layer(self) -> int:
        """Parameters of one attention block (QKV + output projections)."""
        q = self.hidden_size * self.hidden_size
        kv = 2 * self.hidden_size * (self.num_kv_heads * self.head_dim)
        out = self.hidden_size * self.hidden_size
        return q + kv + out

    @property
    def mlp_params_per_layer(self) -> int:
        """Parameters of one feed-forward block (gate, up, down projections)."""
        dense = 3 * self.hidden_size * self.ffn_hidden_size
        if self.num_experts:
            return dense * self.num_experts
        return dense

    @property
    def params_per_layer(self) -> int:
        """Parameters of one transformer block (attention + MLP + norms)."""
        norms = 2 * self.hidden_size
        return self.attention_params_per_layer + self.mlp_params_per_layer + norms

    @property
    def embedding_params(self) -> int:
        """Parameters of the input embedding and output head (untied)."""
        return 2 * self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        """Total trainable parameters of the model."""
        return self.num_layers * self.params_per_layer + self.embedding_params

    @property
    def is_moe(self) -> bool:
        """Whether the model uses mixture-of-experts layers."""
        return self.num_experts > 0

    def flops_per_token_per_layer(self) -> float:
        """Dense forward FLOPs per token per layer (2 * active params, plus attention)."""
        active_mlp = self.mlp_params_per_layer
        if self.is_moe:
            active_mlp = 3 * self.hidden_size * self.ffn_hidden_size * self.moe_top_k
        matmul_params = self.attention_params_per_layer + active_mlp
        attention_flops = 2 * 2 * self.seq_length * self.hidden_size
        return 2.0 * matmul_params + attention_flops


@dataclass(frozen=True)
class ParallelismConfig:
    """How the model is partitioned across GPUs.

    Dimension sizes multiply to the world size.  ``dp`` is the data-parallel
    degree; ``use_fsdp`` selects fully-sharded data parallelism (per-layer
    AllGather/ReduceScatter) instead of classic DP (post-backward AllReduce),
    matching the paper's Table 2 rows.  ``sp`` (sequence parallelism) rides on
    the TP groups and only changes the TP collective types.
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    cp: int = 1
    ep: int = 1
    use_fsdp: bool = True
    use_sp: bool = False

    def __post_init__(self) -> None:
        for name, value in (
            ("tp", self.tp),
            ("pp", self.pp),
            ("dp", self.dp),
            ("cp", self.cp),
            ("ep", self.ep),
        ):
            if value < 1:
                raise ConfigurationError(f"parallelism degree {name} must be >= 1")

    @property
    def world_size(self) -> int:
        """Number of GPUs the configuration occupies."""
        return self.tp * self.pp * self.dp * self.cp * self.ep

    @property
    def scaleout_dimensions(self) -> Dict[str, int]:
        """The parallelism dimensions that generate scale-out (rail) traffic.

        TP (and SP) are assumed to stay inside the scale-up domain, following
        the paper's placement (frequent, latency-sensitive collectives on the
        high-bandwidth interconnect).
        """
        dims: Dict[str, int] = {}
        if self.dp > 1:
            dims["dp"] = self.dp
        if self.pp > 1:
            dims["pp"] = self.pp
        if self.cp > 1:
            dims["cp"] = self.cp
        if self.ep > 1:
            dims["ep"] = self.ep
        return dims

    @property
    def num_parallelism_dimensions(self) -> int:
        """Number of parallelism dimensions with degree > 1."""
        return sum(
            1 for degree in (self.tp, self.pp, self.dp, self.cp, self.ep) if degree > 1
        )

    def describe(self) -> str:
        """Short human-readable description, e.g. ``"TP=4 FSDP=2 PP=2"``."""
        parts = []
        if self.tp > 1:
            parts.append(f"TP={self.tp}" + ("+SP" if self.use_sp else ""))
        if self.dp > 1:
            parts.append(("FSDP=" if self.use_fsdp else "DP=") + str(self.dp))
        if self.pp > 1:
            parts.append(f"PP={self.pp}")
        if self.cp > 1:
            parts.append(f"CP={self.cp}")
        if self.ep > 1:
            parts.append(f"EP={self.ep}")
        return " ".join(parts) if parts else "single GPU"


@dataclass(frozen=True)
class TrainingConfig:
    """Batching and precision of one training run.

    Attributes
    ----------
    global_batch_size:
        Sequences per optimizer step across all data-parallel replicas.
    micro_batch_size:
        Sequences per micro-batch per model replica.
    param_dtype / grad_dtype:
        Precision of parameters as communicated (FSDP AllGather) and of
        gradients as reduced (ReduceScatter / AllReduce).
    optimizer_sync_collectives:
        Number of small synchronization AllReduce calls in the optimizer step
        (grad-norm clipping, loss scaling, numerics checks — paper §3.1).
    """

    global_batch_size: int = 16
    micro_batch_size: int = 2
    param_dtype: str = "bf16"
    grad_dtype: str = "fp32"
    activation_dtype: str = "bf16"
    optimizer_sync_collectives: int = 3

    def __post_init__(self) -> None:
        if self.global_batch_size <= 0 or self.micro_batch_size <= 0:
            raise ConfigurationError("batch sizes must be positive")
        for dtype in (self.param_dtype, self.grad_dtype, self.activation_dtype):
            if dtype not in DTYPE_BYTES:
                raise ConfigurationError(f"unsupported dtype {dtype!r}")

    @property
    def param_bytes(self) -> int:
        """Bytes per parameter as communicated."""
        return DTYPE_BYTES[self.param_dtype]

    @property
    def grad_bytes(self) -> int:
        """Bytes per gradient element as communicated."""
        return DTYPE_BYTES[self.grad_dtype]

    @property
    def activation_bytes(self) -> int:
        """Bytes per activation element as communicated."""
        return DTYPE_BYTES[self.activation_dtype]

    def num_microbatches(self, parallelism: ParallelismConfig) -> int:
        """Micro-batches per pipeline per iteration.

        ``global_batch_size / (dp * micro_batch_size)``, rounded up to at
        least 1 and validated to divide evenly.
        """
        denom = parallelism.dp * self.micro_batch_size
        if self.global_batch_size % denom != 0:
            raise ConfigurationError(
                f"global batch {self.global_batch_size} is not divisible by "
                f"dp * micro_batch_size = {denom}"
            )
        return max(1, self.global_batch_size // denom)


@dataclass(frozen=True)
class WorkloadConfig:
    """A complete workload: model + parallelism + training hyper-parameters."""

    model: ModelConfig
    parallelism: ParallelismConfig
    training: TrainingConfig = field(default_factory=TrainingConfig)

    def __post_init__(self) -> None:
        if self.model.num_layers % self.parallelism.pp != 0:
            raise ConfigurationError(
                f"num_layers={self.model.num_layers} must be divisible by "
                f"pp={self.parallelism.pp}"
            )
        if self.parallelism.cp > 1 and self.model.seq_length % self.parallelism.cp != 0:
            raise ConfigurationError("seq_length must be divisible by cp")
        if self.parallelism.ep > 1 and not self.model.is_moe:
            raise ConfigurationError("expert parallelism requires an MoE model")
        # Validate microbatch math eagerly so failures surface at config time.
        self.training.num_microbatches(self.parallelism)

    @property
    def world_size(self) -> int:
        """Number of GPUs the workload occupies."""
        return self.parallelism.world_size

    @property
    def layers_per_stage(self) -> int:
        """Transformer layers hosted by each pipeline stage."""
        return self.model.num_layers // self.parallelism.pp

    @property
    def num_microbatches(self) -> int:
        """Micro-batches per pipeline per iteration."""
        return self.training.num_microbatches(self.parallelism)

    # ------------------------------------------------------------------ #
    # Collective payload sizes (bytes)
    # ------------------------------------------------------------------ #

    def stage_params(self) -> float:
        """Parameters hosted by one pipeline stage (including a share of embeddings)."""
        return (
            self.layers_per_stage * self.model.params_per_layer
            + self.model.embedding_params / self.parallelism.pp
        )

    def layer_params_per_rank(self) -> float:
        """Per-rank parameter shard of one layer under TP (+FSDP sharding applied by caller)."""
        return self.model.params_per_layer / self.parallelism.tp

    def fsdp_allgather_bytes_per_layer(self) -> float:
        """Per-rank input shard of the per-layer FSDP parameter AllGather."""
        shard_params = self.layer_params_per_rank() / self.parallelism.dp
        return shard_params * self.training.param_bytes

    def fsdp_reducescatter_bytes_per_layer(self) -> float:
        """Per-rank input of the per-layer FSDP gradient ReduceScatter."""
        grads = self.layer_params_per_rank()
        return grads * self.training.grad_bytes

    def dp_allreduce_bytes(self) -> float:
        """Per-rank input of the classic-DP gradient AllReduce (whole stage)."""
        return (
            self.stage_params() / self.parallelism.tp * self.training.grad_bytes
        )

    def pp_activation_bytes(self) -> float:
        """Activation payload of one pipeline Send/Recv (one micro-batch)."""
        tokens = self.training.micro_batch_size * self.model.seq_length
        tokens /= self.parallelism.cp
        hidden = self.model.hidden_size
        if self.parallelism.use_sp:
            hidden /= self.parallelism.tp
        return tokens * hidden * self.training.activation_bytes

    def tp_allreduce_bytes(self) -> float:
        """Per-rank input of one TP AllReduce (one operator's activations)."""
        tokens = self.training.micro_batch_size * self.model.seq_length
        tokens /= self.parallelism.cp
        return tokens * self.model.hidden_size * self.training.activation_bytes

    def ep_alltoall_bytes(self) -> float:
        """Per-rank input of one expert-parallel AllToAll (token dispatch)."""
        tokens = self.training.micro_batch_size * self.model.seq_length
        tokens /= self.parallelism.cp
        return (
            tokens
            * self.model.hidden_size
            * self.training.activation_bytes
            * self.model.moe_top_k
        )

    def cp_allgather_bytes(self) -> float:
        """Per-rank input of one context-parallel KV AllGather (one layer)."""
        tokens = self.training.micro_batch_size * self.model.seq_length / self.parallelism.cp
        kv_width = 2 * self.model.num_kv_heads * self.model.head_dim
        return tokens * kv_width * self.training.activation_bytes

    def optimizer_sync_bytes(self) -> float:
        """Payload of one optimizer-step synchronization AllReduce (scalar-ish)."""
        return 64.0 * 1024.0
