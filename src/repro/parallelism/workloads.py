"""Workload presets: the models and training configurations used by the paper.

The presets cover the Llama-3 family (the paper's trace workload is Llama3-8B
on TorchTitan; the window-count example uses Llama3.1-405B), a GPT-3-sized
dense model, and a DeepSeek-style MoE model for the expert-parallel extension
experiments.  ``paper_trace_workload`` reconstructs the exact configuration of
the paper's §3.1 study: TP=4 (intra-node), FSDP=2, PP=2, micro-batch size 2 on
the 4-node Perlmutter testbed.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError
from ..topology.devices import ClusterSpec, perlmutter_testbed
from .config import ModelConfig, ParallelismConfig, TrainingConfig, WorkloadConfig

# --------------------------------------------------------------------------- #
# Model presets
# --------------------------------------------------------------------------- #

LLAMA3_8B = ModelConfig(
    name="Llama3-8B",
    num_layers=32,
    hidden_size=4096,
    ffn_hidden_size=14336,
    num_attention_heads=32,
    num_kv_heads=8,
    vocab_size=128_256,
    seq_length=4096,
)

LLAMA3_70B = ModelConfig(
    name="Llama3-70B",
    num_layers=80,
    hidden_size=8192,
    ffn_hidden_size=28672,
    num_attention_heads=64,
    num_kv_heads=8,
    vocab_size=128_256,
    seq_length=8192,
)

LLAMA31_405B = ModelConfig(
    name="Llama3.1-405B",
    num_layers=126,
    hidden_size=16384,
    ffn_hidden_size=53248,
    num_attention_heads=128,
    num_kv_heads=8,
    vocab_size=128_256,
    seq_length=8192,
)

GPT3_175B = ModelConfig(
    name="GPT3-175B",
    num_layers=96,
    hidden_size=12288,
    ffn_hidden_size=49152,
    num_attention_heads=96,
    num_kv_heads=96,
    vocab_size=50_257,
    seq_length=2048,
)

MIXTRAL_8X7B = ModelConfig(
    name="Mixtral-8x7B",
    num_layers=32,
    hidden_size=4096,
    ffn_hidden_size=14336,
    num_attention_heads=32,
    num_kv_heads=8,
    vocab_size=32_000,
    seq_length=4096,
    num_experts=8,
    moe_top_k=2,
)

MODEL_CATALOG: Dict[str, ModelConfig] = {
    model.name: model
    for model in (LLAMA3_8B, LLAMA3_70B, LLAMA31_405B, GPT3_175B, MIXTRAL_8X7B)
}


def model_by_name(name: str) -> ModelConfig:
    """Return a preset model by name."""
    if name not in MODEL_CATALOG:
        raise ConfigurationError(
            f"unknown model {name!r}; known: {sorted(MODEL_CATALOG)}"
        )
    return MODEL_CATALOG[name]


# --------------------------------------------------------------------------- #
# Workload presets
# --------------------------------------------------------------------------- #


def paper_trace_workload(
    num_microbatches: int = 8,
    pp: int = 2,
    dp: int = 2,
    tp: int = 4,
) -> WorkloadConfig:
    """The paper's §3.1 trace workload: Llama3-8B with TP=4, FSDP=2, PP=2.

    ``num_microbatches`` controls the global batch size
    (``dp * micro_batch_size * num_microbatches``); the paper uses a 1F1B
    schedule with micro-batch size 2.
    """
    parallelism = ParallelismConfig(tp=tp, pp=pp, dp=dp, use_fsdp=True)
    training = TrainingConfig(
        global_batch_size=dp * 2 * num_microbatches,
        micro_batch_size=2,
        param_dtype="bf16",
        grad_dtype="fp32",
    )
    return WorkloadConfig(model=LLAMA3_8B, parallelism=parallelism, training=training)


def paper_trace_cluster(pp: int = 2, dp: int = 2, tp: int = 4) -> ClusterSpec:
    """The Perlmutter testbed sized for the paper trace workload.

    Four A100 GPUs per node (so four rails); the number of nodes is the number
    of (pp, dp) model chunks when TP fills the node, as in the paper (4 nodes
    for PP=2 × FSDP=2; 6 nodes for the PP=3 variant of Fig. 3b).
    """
    if tp != 4:
        raise ConfigurationError("the Perlmutter testbed has 4 GPUs per node (tp=4)")
    return perlmutter_testbed(num_nodes=pp * dp)


def llama3_405b_workload(
    tp: int = 8, pp: int = 16, dp: int = 8, cp: int = 1
) -> WorkloadConfig:
    """A Llama3.1-405B workload in the spirit of the published recipes [10, 41].

    The default 1024-GPU configuration (TP=8, PP=16, DP=8) is the one the
    paper's Eq. 1 example refers to; layers are padded conceptually by
    allowing ``num_layers % pp != 0`` to be avoided via pp in {2,3,6,7,9,14,...}
    divisors — the default PP=16 does not divide 126, so the workload uses the
    128-layer variant NVIDIA's benchmarking recipe pads to.
    """
    model = LLAMA31_405B
    if model.num_layers % pp != 0:
        padded_layers = ((model.num_layers + pp - 1) // pp) * pp
        model = ModelConfig(
            name=model.name + f"-padded{padded_layers}",
            num_layers=padded_layers,
            hidden_size=model.hidden_size,
            ffn_hidden_size=model.ffn_hidden_size,
            num_attention_heads=model.num_attention_heads,
            num_kv_heads=model.num_kv_heads,
            vocab_size=model.vocab_size,
            seq_length=model.seq_length,
        )
    parallelism = ParallelismConfig(tp=tp, pp=pp, dp=dp, cp=cp, use_fsdp=True)
    training = TrainingConfig(
        global_batch_size=dp * 1 * 16,
        micro_batch_size=1,
        param_dtype="bf16",
        grad_dtype="fp32",
    )
    return WorkloadConfig(model=model, parallelism=parallelism, training=training)


def moe_workload(tp: int = 4, pp: int = 2, dp: int = 2, ep: int = 4) -> WorkloadConfig:
    """A Mixtral-style MoE workload exercising expert-parallel AllToAll traffic."""
    parallelism = ParallelismConfig(tp=tp, pp=pp, dp=dp, ep=ep, use_fsdp=True)
    training = TrainingConfig(
        global_batch_size=dp * 2 * 8,
        micro_batch_size=2,
    )
    return WorkloadConfig(model=MIXTRAL_8X7B, parallelism=parallelism, training=training)


def small_test_workload(pp: int = 2, dp: int = 2, tp: int = 2) -> WorkloadConfig:
    """A small, fast workload for unit tests (a scaled-down transformer)."""
    model = ModelConfig(
        name="Tiny-1B",
        num_layers=8,
        hidden_size=2048,
        ffn_hidden_size=8192,
        num_attention_heads=16,
        num_kv_heads=16,
        vocab_size=32_000,
        seq_length=2048,
    )
    parallelism = ParallelismConfig(tp=tp, pp=pp, dp=dp, use_fsdp=True)
    training = TrainingConfig(global_batch_size=dp * 2 * 4, micro_batch_size=2)
    return WorkloadConfig(model=model, parallelism=parallelism, training=training)
