"""Communication groups: the logical constructs NCCL manages per parallelism axis.

A :class:`CommunicationGroup` is a named, ordered set of ranks belonging to one
parallelism axis, plus the placement facts the control plane needs: which
scale-up domains and rails it spans and whether it produces scale-out traffic.
The :class:`GroupRegistry` builds every group of a job from its
:class:`~repro.parallelism.mesh.DeviceMesh` and gives them stable identifiers,
mirroring the "communication group table" the Opus controller keeps (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from .mesh import AXIS_ORDER, DeviceMesh


@dataclass(frozen=True)
class CommunicationGroup:
    """One communication group (one NCCL communicator).

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"dp.2"`` for the third data-parallel group.
    axis:
        Parallelism axis (``"tp"``, ``"dp"``, ``"pp"``, ``"cp"``, ``"ep"``).
    ranks:
        Member ranks in ring order.
    domains:
        Scale-up domains spanned, sorted.
    rails:
        Rails spanned, sorted (empty when the group never touches a rail).
    scaleout:
        Whether the group spans more than one scale-up domain.
    """

    name: str
    axis: str
    ranks: Tuple[int, ...]
    domains: Tuple[int, ...]
    rails: Tuple[int, ...]
    scaleout: bool

    @property
    def size(self) -> int:
        """Number of member ranks."""
        return len(self.ranks)

    @property
    def key(self) -> FrozenSet[int]:
        """Order-insensitive identity of the member set."""
        return frozenset(self.ranks)

    def __contains__(self, rank: object) -> bool:
        return rank in self.ranks

    def neighbors_of(self, rank: int) -> Tuple[int, int]:
        """Return the (previous, next) ring neighbors of ``rank`` in this group."""
        if rank not in self.ranks:
            raise ConfigurationError(f"rank {rank} is not in group {self.name!r}")
        index = self.ranks.index(rank)
        prev_rank = self.ranks[(index - 1) % self.size]
        next_rank = self.ranks[(index + 1) % self.size]
        return prev_rank, next_rank


class GroupRegistry:
    """All communication groups of one job, indexed by axis, rank, and member set."""

    def __init__(self, mesh: DeviceMesh) -> None:
        self.mesh = mesh
        self._groups: Dict[str, CommunicationGroup] = {}
        self._by_axis: Dict[str, List[CommunicationGroup]] = {}
        self._by_key: Dict[FrozenSet[int], CommunicationGroup] = {}
        self._build()

    def _build(self) -> None:
        for axis in AXIS_ORDER:
            if self.mesh.size(axis) <= 1:
                self._by_axis[axis] = []
                continue
            groups: List[CommunicationGroup] = []
            for index, ranks in enumerate(self.mesh.groups_along(axis)):
                if self.mesh.cluster is not None:
                    domains = self.mesh.domains_of_group(ranks)
                    rails = self.mesh.rails_of_group(ranks)
                    scaleout = self.mesh.is_scaleout_group(ranks)
                else:
                    domains = ()
                    rails = ()
                    scaleout = True
                group = CommunicationGroup(
                    name=f"{axis}.{index}",
                    axis=axis,
                    ranks=ranks,
                    domains=domains,
                    rails=rails if scaleout else (),
                    scaleout=scaleout,
                )
                groups.append(group)
                self._groups[group.name] = group
                self._by_key[group.key] = group
            self._by_axis[axis] = groups

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def all_groups(self) -> List[CommunicationGroup]:
        """Every group of the job, ordered by axis then index."""
        return [group for axis in AXIS_ORDER for group in self._by_axis.get(axis, [])]

    def groups(self, axis: str) -> List[CommunicationGroup]:
        """Every group along one axis."""
        if axis not in self._by_axis:
            raise ConfigurationError(f"unknown axis {axis!r}")
        return list(self._by_axis[axis])

    def by_name(self, name: str) -> CommunicationGroup:
        """Return the group called ``name``."""
        if name not in self._groups:
            raise ConfigurationError(f"unknown communication group {name!r}")
        return self._groups[name]

    def by_members(self, ranks: Iterable[int]) -> CommunicationGroup:
        """Return the group whose member set equals ``ranks``."""
        key = frozenset(ranks)
        if key not in self._by_key:
            raise ConfigurationError(f"no communication group with members {sorted(key)}")
        return self._by_key[key]

    def find_by_members(self, ranks: Iterable[int]) -> Optional[CommunicationGroup]:
        """Like :meth:`by_members` but returns ``None`` when not found."""
        return self._by_key.get(frozenset(ranks))

    def group_of(self, axis: str, rank: int) -> CommunicationGroup:
        """Return the group of ``rank`` along ``axis``."""
        for group in self.groups(axis):
            if rank in group:
                return group
        raise ConfigurationError(f"rank {rank} has no group along axis {axis!r}")

    def scaleout_groups(self) -> List[CommunicationGroup]:
        """Every group whose collectives traverse the rails."""
        return [group for group in self.all_groups() if group.scaleout]

    def groups_on_rail(self, rail: int) -> List[CommunicationGroup]:
        """Every scale-out group whose members attach to ``rail``."""
        return [group for group in self.scaleout_groups() if rail in group.rails]

    def max_scaleout_degree(self) -> int:
        """Worst-case number of simultaneous ring neighbors a rank needs.

        Each scale-out group a rank belongs to contributes two ring neighbors
        (one for size-2 groups); this is the per-GPU degree requirement the
        paper's §3 derives (six for 3D parallelism with ring collectives).
        """
        worst = 0
        for rank in self.mesh.ranks():
            degree = 0
            for group in self.scaleout_groups():
                if rank in group:
                    degree += 1 if group.size == 2 else 2
            worst = max(worst, degree)
        return worst

    def __len__(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:
        per_axis = {
            axis: len(groups) for axis, groups in self._by_axis.items() if groups
        }
        return f"GroupRegistry({per_axis})"
