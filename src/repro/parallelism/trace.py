"""Trace data structures: the timeline the simulator produces and Opus consumes.

The paper's §3.1 analysis is performed on a trace of the collective calls of a
real TorchTitan run.  The reproduction substitutes the simulator's output for
that recording; this module defines the trace schema shared by both sides:

* :class:`CommRecord` — one executed communication operation with its timing,
  sizes, group, parallelism axis, and the rails it used;
* :class:`ComputeRecord` — one executed compute operation;
* :class:`ReconfigRecord` — one rail reconfiguration performed by Opus;
* :class:`IterationTrace` — the per-iteration container with the query helpers
  the window analysis (Fig. 4), the communication-pattern rendering (Fig. 3),
  and EXPERIMENTS.md reporting use.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Tuple

from ..collectives.primitives import CollectiveType
from ..errors import ConfigurationError, SimulationError
from .pipeline import PipelinePhase


@dataclass(frozen=True)
class CommRecord:
    """One executed communication operation."""

    op_id: int
    collective: CollectiveType
    parallelism: str
    group: Tuple[int, ...]
    rails: Tuple[int, ...]
    size_bytes: float
    total_bytes: float
    start: float
    end: float
    phase: PipelinePhase = PipelinePhase.STEADY
    tag: str = ""
    scaleout: bool = True

    @property
    def duration(self) -> float:
        """Elapsed time of the operation in seconds."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError("a record cannot end before it starts")


@dataclass(frozen=True)
class ComputeRecord:
    """One executed compute operation."""

    op_id: int
    ranks: Tuple[int, ...]
    start: float
    end: float
    phase: PipelinePhase = PipelinePhase.STEADY
    tag: str = ""

    @property
    def duration(self) -> float:
        """Elapsed time of the operation in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class ReconfigRecord:
    """One rail reconfiguration performed during the iteration."""

    rail: int
    start: float
    end: float
    provisioned: bool
    blocking: float
    group_name: str = ""
    num_circuits_changed: int = 0

    @property
    def duration(self) -> float:
        """Switching time of the reconfiguration in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class FaultRecord:
    """One fault-injection event applied during the iteration.

    Produced by :class:`~repro.simulator.faults.FaultInjector` so fault
    timelines land in the trace next to the communication and
    reconfiguration records they perturb.
    """

    time: float
    #: :class:`~repro.simulator.faults.FaultKind` value (e.g. ``link_fail``).
    kind: str
    #: Human-readable target description (patterns, rail/port, rank).
    target: str = ""
    #: Number of topology links the event touched (0 for non-link faults).
    num_links: int = 0


@dataclass
class IterationTrace:
    """The full trace of one simulated (or recorded) training iteration."""

    iteration: int
    comm_records: List[CommRecord] = field(default_factory=list)
    compute_records: List[ComputeRecord] = field(default_factory=list)
    reconfig_records: List[ReconfigRecord] = field(default_factory=list)
    fault_records: List[FaultRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def start(self) -> float:
        """Start time of the earliest record (0.0 for an empty trace)."""
        times = [r.start for r in self.comm_records] + [
            r.start for r in self.compute_records
        ]
        return min(times) if times else 0.0

    @property
    def end(self) -> float:
        """End time of the latest record (0.0 for an empty trace)."""
        times = [r.end for r in self.comm_records] + [
            r.end for r in self.compute_records
        ]
        return max(times) if times else 0.0

    @property
    def iteration_time(self) -> float:
        """Makespan of the iteration in seconds."""
        return self.end - self.start

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def scaleout_comms(self) -> List[CommRecord]:
        """Communication records that traversed the rails, sorted by start."""
        return sorted(
            (r for r in self.comm_records if r.scaleout), key=lambda r: r.start
        )

    def comms_on_rail(self, rail: int) -> List[CommRecord]:
        """Scale-out communication records on one rail, sorted by start."""
        return sorted(
            (r for r in self.comm_records if r.scaleout and rail in r.rails),
            key=lambda r: r.start,
        )

    def comms_by_parallelism(self, parallelism: str) -> List[CommRecord]:
        """Communication records of one parallelism axis, sorted by start."""
        return sorted(
            (r for r in self.comm_records if r.parallelism == parallelism),
            key=lambda r: r.start,
        )

    def rails(self) -> Tuple[int, ...]:
        """All rails that carried any traffic in this trace."""
        rails = set()
        for record in self.comm_records:
            if record.scaleout:
                rails.update(record.rails)
        return tuple(sorted(rails))

    def total_scaleout_bytes(self) -> float:
        """Total bytes moved over the rails during the iteration."""
        return sum(r.total_bytes for r in self.comm_records if r.scaleout)

    def total_reconfiguration_blocking(self) -> float:
        """Total reconfiguration time spent blocking traffic (seconds)."""
        return sum(r.blocking for r in self.reconfig_records)

    def num_reconfigurations(self) -> int:
        """Number of reconfigurations performed during the iteration."""
        return len(self.reconfig_records)

    def num_faults(self) -> int:
        """Number of fault events applied during the iteration."""
        return len(self.fault_records)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Return a JSON-serializable representation of the trace."""
        return {
            "iteration": self.iteration,
            "comm_records": [
                {**asdict(r), "collective": r.collective.value, "phase": r.phase.value}
                for r in self.comm_records
            ],
            "compute_records": [
                {**asdict(r), "phase": r.phase.value} for r in self.compute_records
            ],
            "reconfig_records": [asdict(r) for r in self.reconfig_records],
            "fault_records": [asdict(r) for r in self.fault_records],
        }

    def to_json(self, path: Path) -> None:
        """Write the trace to ``path`` as JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))

    def comms_to_csv(self, path: Path) -> None:
        """Write the communication records to ``path`` as CSV."""
        path = Path(path)
        fieldnames = [
            "op_id",
            "collective",
            "parallelism",
            "group",
            "rails",
            "size_bytes",
            "total_bytes",
            "start",
            "end",
            "phase",
            "tag",
            "scaleout",
        ]
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in sorted(self.comm_records, key=lambda r: r.start):
                row = asdict(record)
                row["collective"] = record.collective.value
                row["phase"] = record.phase.value
                row["group"] = " ".join(map(str, record.group))
                row["rails"] = " ".join(map(str, record.rails))
                writer.writerow(row)

    @classmethod
    def from_dict(cls, data: dict) -> "IterationTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        trace = cls(iteration=int(data["iteration"]))
        for row in data.get("comm_records", []):
            trace.comm_records.append(
                CommRecord(
                    op_id=int(row["op_id"]),
                    collective=CollectiveType(row["collective"]),
                    parallelism=row["parallelism"],
                    group=tuple(row["group"]),
                    rails=tuple(row["rails"]),
                    size_bytes=float(row["size_bytes"]),
                    total_bytes=float(row["total_bytes"]),
                    start=float(row["start"]),
                    end=float(row["end"]),
                    phase=PipelinePhase(row["phase"]),
                    tag=row.get("tag", ""),
                    scaleout=bool(row.get("scaleout", True)),
                )
            )
        for row in data.get("compute_records", []):
            trace.compute_records.append(
                ComputeRecord(
                    op_id=int(row["op_id"]),
                    ranks=tuple(row["ranks"]),
                    start=float(row["start"]),
                    end=float(row["end"]),
                    phase=PipelinePhase(row["phase"]),
                    tag=row.get("tag", ""),
                )
            )
        for row in data.get("reconfig_records", []):
            trace.reconfig_records.append(ReconfigRecord(**row))
        for row in data.get("fault_records", []):
            trace.fault_records.append(FaultRecord(**row))
        return trace

    @classmethod
    def from_json(cls, path: Path) -> "IterationTrace":
        """Load a trace previously written by :meth:`to_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass
class TrainingTrace:
    """A multi-iteration trace (e.g. the 10 iterations behind Fig. 4a)."""

    iterations: List[IterationTrace] = field(default_factory=list)

    def add(self, trace: IterationTrace) -> None:
        """Append one iteration trace."""
        self.iterations.append(trace)

    @property
    def num_iterations(self) -> int:
        """Number of iterations recorded."""
        return len(self.iterations)

    def mean_iteration_time(self) -> float:
        """Mean iteration makespan across all recorded iterations.

        Raises :class:`~repro.errors.SimulationError` when no iterations have
        been recorded, so callers never divide by zero silently.
        """
        if not self.iterations:
            raise SimulationError(
                "cannot compute the mean iteration time of an empty training "
                "trace (no iterations recorded)"
            )
        return sum(t.iteration_time for t in self.iterations) / len(self.iterations)

    def __iter__(self):
        return iter(self.iterations)
