"""Training-iteration DAG generation (the workload model behind Figs. 2, 3, 4, 8).

The paper's key observation is that the communication operations of different
parallelism axes are not ordered arbitrarily: they follow the strict
dependencies of the model's execution graph.  This module materializes that
graph for one training iteration as a DAG of :class:`Operation` nodes
(compute and communication), reproducing the structure of the paper's Fig. 2:

* 1F1B pipeline schedule per stage (warm-up / steady / cool-down phases);
* per-layer FSDP parameter ``AllGather`` overlapping the first forward
  micro-batch, and per-layer gradient ``ReduceScatter`` after the last
  backward;
* pipeline ``Send/Recv`` of activations (forward) and gradients (backward)
  between adjacent stages, one per micro-batch per rail;
* optional TP, CP and EP collectives;
* small optimizer-step synchronization ``AllReduce`` calls along DP and PP.

The DAG is purely logical: durations are assigned later by the simulator's
compute model and collective cost models.  The DAG is also what Opus consumes
(indirectly, through the intercepted collective calls) to learn the traffic
pattern.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..collectives.primitives import CollectiveOp, CollectiveType
from ..errors import ConfigurationError, DeadlockError
from ..topology.devices import ClusterSpec
from .config import WorkloadConfig
from .mesh import DeviceMesh, MeshCoordinate
from .pipeline import ActionKind, PipelinePhase, schedule_for


class OpKind(str, Enum):
    """Whether an operation occupies the GPU (compute) or the network (comm)."""

    COMPUTE = "compute"
    COMMUNICATION = "communication"


@dataclass(frozen=True)
class Operation:
    """One node of the iteration DAG.

    Attributes
    ----------
    op_id:
        Unique id within the DAG.
    kind:
        Compute or communication.
    ranks:
        Global ranks occupied by the operation.
    deps:
        Ids of operations that must complete before this one may start.
    flops:
        Per-rank floating-point work (compute operations only).
    collective:
        The collective descriptor (communication operations only).
    phase:
        Pipeline phase annotation (warm-up / steady / cool-down / sync).
    stage, replica, microbatch, layer:
        Structural metadata (-1 where not applicable).
    tag:
        Human-readable label for traces and debugging.
    """

    op_id: int
    kind: OpKind
    ranks: Tuple[int, ...]
    deps: Tuple[int, ...]
    flops: float = 0.0
    collective: Optional[CollectiveOp] = None
    phase: PipelinePhase = PipelinePhase.STEADY
    stage: int = -1
    replica: int = -1
    microbatch: int = -1
    layer: int = -1
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind == OpKind.COMMUNICATION and self.collective is None:
            raise ConfigurationError("communication operations need a collective")
        if self.kind == OpKind.COMPUTE and self.collective is not None:
            raise ConfigurationError("compute operations must not carry a collective")
        if not self.ranks:
            raise ConfigurationError("an operation must involve at least one rank")

    @property
    def is_comm(self) -> bool:
        """Whether this is a communication operation."""
        return self.kind == OpKind.COMMUNICATION

    @property
    def parallelism(self) -> str:
        """Parallelism axis of a communication operation ('' for compute)."""
        return self.collective.parallelism if self.collective else ""

    def __str__(self) -> str:
        body = self.tag or (str(self.collective) if self.collective else "compute")
        return f"op{self.op_id}:{body}"


class IterationDAG:
    """The DAG of one training iteration."""

    def __init__(self, workload: WorkloadConfig, mesh: DeviceMesh) -> None:
        self.workload = workload
        self.mesh = mesh
        self._operations: Dict[int, Operation] = {}
        self._successors: Dict[int, Set[int]] = {}
        self._counter = itertools.count()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_compute(
        self,
        ranks: Sequence[int],
        flops: float,
        deps: Iterable[int] = (),
        phase: PipelinePhase = PipelinePhase.STEADY,
        tag: str = "",
        stage: int = -1,
        replica: int = -1,
        microbatch: int = -1,
        layer: int = -1,
    ) -> Operation:
        """Add a compute operation and return it."""
        return self._add(
            Operation(
                op_id=next(self._counter),
                kind=OpKind.COMPUTE,
                ranks=tuple(ranks),
                deps=tuple(sorted(set(deps))),
                flops=flops,
                phase=phase,
                tag=tag,
                stage=stage,
                replica=replica,
                microbatch=microbatch,
                layer=layer,
            )
        )

    def add_comm(
        self,
        collective: CollectiveOp,
        deps: Iterable[int] = (),
        phase: PipelinePhase = PipelinePhase.STEADY,
        tag: str = "",
        stage: int = -1,
        replica: int = -1,
        microbatch: int = -1,
        layer: int = -1,
    ) -> Operation:
        """Add a communication operation and return it."""
        return self._add(
            Operation(
                op_id=next(self._counter),
                kind=OpKind.COMMUNICATION,
                ranks=collective.group,
                deps=tuple(sorted(set(deps))),
                collective=collective,
                phase=phase,
                tag=tag or collective.tag,
                stage=stage,
                replica=replica,
                microbatch=microbatch,
                layer=layer,
            )
        )

    def _add(self, operation: Operation) -> Operation:
        for dep in operation.deps:
            if dep not in self._operations:
                raise ConfigurationError(
                    f"operation {operation.op_id} depends on unknown op {dep}"
                )
        self._operations[operation.op_id] = operation
        self._successors.setdefault(operation.op_id, set())
        for dep in operation.deps:
            self._successors[dep].add(operation.op_id)
        return operation

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def num_operations(self) -> int:
        """Number of operations in the DAG."""
        return len(self._operations)

    def operation(self, op_id: int) -> Operation:
        """Return the operation with id ``op_id``."""
        if op_id not in self._operations:
            raise ConfigurationError(f"unknown operation id {op_id}")
        return self._operations[op_id]

    def operations(self) -> List[Operation]:
        """All operations, by id."""
        return [self._operations[op_id] for op_id in sorted(self._operations)]

    def successors(self, op_id: int) -> List[Operation]:
        """Operations that directly depend on ``op_id``."""
        self.operation(op_id)
        return [self._operations[s] for s in sorted(self._successors[op_id])]

    def comm_operations(self) -> List[Operation]:
        """All communication operations."""
        return [op for op in self.operations() if op.is_comm]

    def compute_operations(self) -> List[Operation]:
        """All compute operations."""
        return [op for op in self.operations() if not op.is_comm]

    def scaleout_comm_operations(self) -> List[Operation]:
        """Communication operations that traverse the rails (span > 1 domain)."""
        result = []
        for op in self.comm_operations():
            assert op.collective is not None
            if self.mesh.cluster is None or self.mesh.is_scaleout_group(op.collective.group):
                result.append(op)
        return result

    def operations_for_rank(self, rank: int) -> List[Operation]:
        """Operations involving ``rank``, in id order."""
        return [op for op in self.operations() if rank in op.ranks]

    def topological_order(self) -> List[Operation]:
        """Return a topological order; raises :class:`DeadlockError` on cycles."""
        in_degree = {op_id: len(op.deps) for op_id, op in self._operations.items()}
        ready = sorted(op_id for op_id, degree in in_degree.items() if degree == 0)
        order: List[Operation] = []
        while ready:
            op_id = ready.pop(0)
            order.append(self._operations[op_id])
            for successor in sorted(self._successors[op_id]):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
            ready.sort()
        if len(order) != len(self._operations):
            raise DeadlockError("the iteration DAG contains a dependency cycle")
        return order

    def validate(self) -> None:
        """Check acyclicity and dependency sanity."""
        self.topological_order()

    def __repr__(self) -> str:
        return (
            f"IterationDAG(ops={self.num_operations}, "
            f"comm={len(self.comm_operations())}, "
            f"workload={self.workload.model.name!r})"
        )


# --------------------------------------------------------------------------- #
# DAG builder
# --------------------------------------------------------------------------- #


@dataclass
class DagBuildOptions:
    """Options controlling the level of detail of the generated DAG."""

    #: Pipeline schedule name (``"1f1b"`` or ``"gpipe"``).
    pipeline_schedule: str = "1f1b"
    #: Include TP collectives (intra scale-up).  The paper's figures hide TP.
    include_tp_comm: bool = False
    #: Include CP collectives when ``cp > 1``.
    include_cp_comm: bool = True
    #: Include EP collectives when ``ep > 1``.
    include_ep_comm: bool = True
    #: Emit FSDP AllGather/ReduceScatter per layer (True, paper behaviour) or
    #: aggregated per stage (False, coarse mode for very large models).
    per_layer_fsdp: bool = True


def build_iteration_dag(
    workload: WorkloadConfig,
    cluster: Optional[ClusterSpec] = None,
    options: Optional[DagBuildOptions] = None,
) -> IterationDAG:
    """Build the DAG of one training iteration of ``workload``.

    Parameters
    ----------
    workload:
        Model + parallelism + training configuration.
    cluster:
        Optional hardware description used to distinguish scale-up from
        scale-out groups (required by the simulator and window analysis).
    options:
        Level-of-detail knobs; defaults reproduce the paper's setting.
    """
    options = options or DagBuildOptions()
    mesh = DeviceMesh(workload.parallelism, cluster)
    builder = _DagBuilder(workload, mesh, options)
    return builder.build()


class _DagBuilder:
    """Stateful helper that assembles the iteration DAG."""

    def __init__(
        self, workload: WorkloadConfig, mesh: DeviceMesh, options: DagBuildOptions
    ) -> None:
        self.workload = workload
        self.mesh = mesh
        self.options = options
        self.par = workload.parallelism
        self.model = workload.model
        self.dag = IterationDAG(workload, mesh)
        self.num_microbatches = workload.num_microbatches
        self.layers_per_stage = workload.layers_per_stage
        # Last operation id in each (stage, replica) group's local sequence.
        self._tail: Dict[Tuple[int, int], int] = {}
        # Per (stage, replica, microbatch) forward / backward compute op ids.
        self._forward_done: Dict[Tuple[int, int, int], int] = {}
        self._backward_done: Dict[Tuple[int, int, int], int] = {}
        # Pending forward-activation / backward-gradient Send/Recv ops keyed by
        # (stage receiving, replica, microbatch).
        self._fwd_sendrecv: Dict[Tuple[int, int, int], List[int]] = {}
        self._bwd_sendrecv: Dict[Tuple[int, int, int], List[int]] = {}
        # Last FSDP AllGather per (stage, tp-like index) chain.
        self._ag_chain_tail: Dict[Tuple[int, int], int] = {}
        self._first_ag: Dict[Tuple[int, int], int] = {}
        # Tails of the FSDP ReduceScatter chains, per stage.
        self._rs_tails: Dict[int, List[int]] = {}

    # -------------------------- rank helpers --------------------------- #

    def _ranks_of(self, stage: int, replica: int) -> Tuple[int, ...]:
        """All ranks with pipeline coordinate ``stage`` and dp coordinate ``replica``."""
        ranks = []
        for rank in self.mesh.ranks():
            coord = self.mesh.coordinate(rank)
            if coord.pp == stage and coord.dp == replica:
                ranks.append(rank)
        return tuple(ranks)

    def _inner_indices(self) -> List[Tuple[int, int, int]]:
        """All (cp, ep, tp) coordinate combinations (the per-rail replicas)."""
        return [
            (cp, ep, tp)
            for cp in range(self.par.cp)
            for ep in range(self.par.ep)
            for tp in range(self.par.tp)
        ]

    def _rank_at(
        self, stage: int, replica: int, cp: int = 0, ep: int = 0, tp: int = 0
    ) -> int:
        return self.mesh.rank_of(
            MeshCoordinate(pp=stage, dp=replica, cp=cp, ep=ep, tp=tp)
        )

    def _dp_group(self, stage: int, cp: int, ep: int, tp: int) -> Tuple[int, ...]:
        """Ranks across the DP axis for fixed (stage, cp, ep, tp)."""
        return tuple(
            self._rank_at(stage, replica, cp, ep, tp)
            for replica in range(self.par.dp)
        )

    # ----------------------------- sizes ------------------------------- #

    def _forward_flops(self) -> float:
        """Per-rank forward FLOPs of one micro-batch on one stage."""
        tokens = (
            self.workload.training.micro_batch_size
            * self.model.seq_length
            / self.par.cp
        )
        total = self.layers_per_stage * self.model.flops_per_token_per_layer() * tokens
        return total / self.par.tp

    def _backward_flops(self) -> float:
        """Per-rank backward FLOPs of one micro-batch on one stage (2× forward)."""
        return 2.0 * self._forward_flops()

    def _optimizer_flops(self) -> float:
        """Per-rank optimizer-step FLOPs (elementwise Adam update)."""
        params_per_rank = self.workload.stage_params() / (self.par.tp * self.par.dp)
        return 10.0 * params_per_rank

    # ----------------------------- build ------------------------------- #

    def build(self) -> IterationDAG:
        self._emit_fsdp_allgathers()
        for stage in range(self.par.pp):
            for replica in range(self.par.dp):
                self._emit_pipeline_schedule(stage, replica)
        self._emit_fsdp_reducescatters()
        self._emit_optimizer_step()
        self.dag.validate()
        return self.dag

    # FSDP parameter AllGather chain (forward prefetch, overlaps compute).
    def _emit_fsdp_allgathers(self) -> None:
        if self.par.dp <= 1 or not self.par.use_fsdp:
            return
        per_layer = self.workload.fsdp_allgather_bytes_per_layer()
        layers = self.layers_per_stage if self.options.per_layer_fsdp else 1
        size = per_layer if self.options.per_layer_fsdp else per_layer * self.layers_per_stage
        for stage in range(self.par.pp):
            for index, (cp, ep, tp) in enumerate(self._inner_indices()):
                group = self._dp_group(stage, cp, ep, tp)
                prev: Optional[int] = None
                for layer in range(layers):
                    op = self.dag.add_comm(
                        CollectiveOp(
                            collective=CollectiveType.ALL_GATHER,
                            group=group,
                            size_bytes=size,
                            parallelism="dp",
                            tag=f"fsdp.allgather.s{stage}.l{layer}",
                        ),
                        deps=(prev,) if prev is not None else (),
                        phase=PipelinePhase.WARMUP,
                        stage=stage,
                        layer=layer,
                    )
                    if prev is None:
                        self._first_ag[(stage, index)] = op.op_id
                    prev = op.op_id
                if prev is not None:
                    self._ag_chain_tail[(stage, index)] = prev

    # One (stage, replica) group's 1F1B schedule: compute + PP Send/Recv.
    def _emit_pipeline_schedule(self, stage: int, replica: int) -> None:
        ranks = self._ranks_of(stage, replica)
        schedule = schedule_for(
            self.options.pipeline_schedule, self.par.pp, self.num_microbatches, stage
        )
        key = (stage, replica)
        for action in schedule:
            if action.kind == ActionKind.FORWARD:
                self._emit_forward(stage, replica, ranks, action.microbatch, action.phase)
            else:
                self._emit_backward(stage, replica, ranks, action.microbatch, action.phase)

    def _group_deps(self, stage: int, replica: int) -> List[int]:
        tail = self._tail.get((stage, replica))
        return [tail] if tail is not None else []

    def _emit_forward(
        self,
        stage: int,
        replica: int,
        ranks: Tuple[int, ...],
        microbatch: int,
        phase: PipelinePhase,
    ) -> None:
        deps = self._group_deps(stage, replica)
        # Incoming activation from the previous stage (if any).
        if stage > 0:
            deps.extend(self._fwd_sendrecv.get((stage, replica, microbatch), []))
        # First micro-batch waits for the first parameter AllGather.
        if microbatch == 0 and self.par.dp > 1 and self.par.use_fsdp:
            for index in range(len(self._inner_indices())):
                first = self._first_ag.get((stage, index))
                if first is not None:
                    deps.append(first)

        # Optional TP / CP / EP collectives ahead of (modelled as part of) the
        # forward compute of this micro-batch.
        extra_deps = self._emit_inner_parallelism_comm(
            stage, replica, microbatch, direction="fwd", deps=deps, phase=phase
        )
        deps.extend(extra_deps)

        compute = self.dag.add_compute(
            ranks=ranks,
            flops=self._forward_flops(),
            deps=deps,
            phase=phase,
            tag=f"fwd.s{stage}.d{replica}.mb{microbatch}",
            stage=stage,
            replica=replica,
            microbatch=microbatch,
        )
        self._forward_done[(stage, replica, microbatch)] = compute.op_id
        self._tail[(stage, replica)] = compute.op_id

        # Send the activation to the next stage, one Send/Recv per rail.
        if stage < self.par.pp - 1:
            send_ids: List[int] = []
            for cp, ep, tp in self._inner_indices():
                src = self._rank_at(stage, replica, cp, ep, tp)
                dst = self._rank_at(stage + 1, replica, cp, ep, tp)
                op = self.dag.add_comm(
                    CollectiveOp(
                        collective=CollectiveType.SEND_RECV,
                        group=(src, dst),
                        size_bytes=self.workload.pp_activation_bytes(),
                        parallelism="pp",
                        tag=f"pp.fwd.s{stage}to{stage+1}.d{replica}.mb{microbatch}",
                    ),
                    deps=(compute.op_id,),
                    phase=phase,
                    stage=stage,
                    replica=replica,
                    microbatch=microbatch,
                )
                send_ids.append(op.op_id)
            self._fwd_sendrecv[(stage + 1, replica, microbatch)] = send_ids

    def _emit_backward(
        self,
        stage: int,
        replica: int,
        ranks: Tuple[int, ...],
        microbatch: int,
        phase: PipelinePhase,
    ) -> None:
        deps = self._group_deps(stage, replica)
        # A stage needs its own forward activation state...
        forward = self._forward_done.get((stage, replica, microbatch))
        if forward is not None:
            deps.append(forward)
        # ...and, unless it is the last stage, the gradient from downstream.
        if stage < self.par.pp - 1:
            deps.extend(self._bwd_sendrecv.get((stage, replica, microbatch), []))

        extra_deps = self._emit_inner_parallelism_comm(
            stage, replica, microbatch, direction="bwd", deps=deps, phase=phase
        )
        deps.extend(extra_deps)

        compute = self.dag.add_compute(
            ranks=ranks,
            flops=self._backward_flops(),
            deps=deps,
            phase=phase,
            tag=f"bwd.s{stage}.d{replica}.mb{microbatch}",
            stage=stage,
            replica=replica,
            microbatch=microbatch,
        )
        self._backward_done[(stage, replica, microbatch)] = compute.op_id
        self._tail[(stage, replica)] = compute.op_id

        # Send the input gradient to the previous stage, one Send/Recv per rail.
        if stage > 0:
            send_ids: List[int] = []
            for cp, ep, tp in self._inner_indices():
                src = self._rank_at(stage, replica, cp, ep, tp)
                dst = self._rank_at(stage - 1, replica, cp, ep, tp)
                op = self.dag.add_comm(
                    CollectiveOp(
                        collective=CollectiveType.SEND_RECV,
                        group=(src, dst),
                        size_bytes=self.workload.pp_activation_bytes(),
                        parallelism="pp",
                        tag=f"pp.bwd.s{stage}to{stage-1}.d{replica}.mb{microbatch}",
                    ),
                    deps=(compute.op_id,),
                    phase=phase,
                    stage=stage,
                    replica=replica,
                    microbatch=microbatch,
                )
                send_ids.append(op.op_id)
            self._bwd_sendrecv[(stage - 1, replica, microbatch)] = send_ids

    def _emit_inner_parallelism_comm(
        self,
        stage: int,
        replica: int,
        microbatch: int,
        direction: str,
        deps: Sequence[int],
        phase: PipelinePhase,
    ) -> List[int]:
        """Emit TP / CP / EP collectives attached to one micro-batch's compute.

        Returns op ids the compute must additionally depend on.  These
        collectives are aggregated per stage per micro-batch (one op per axis
        per rail-replica) to keep DAG sizes manageable while preserving the
        traffic volume and ordering the window analysis relies on.
        """
        extra: List[int] = []
        base_deps = tuple(deps)

        if self.options.include_tp_comm and self.par.tp > 1:
            operators = 2 * self.layers_per_stage
            size = self.workload.tp_allreduce_bytes() * operators
            for cp in range(self.par.cp):
                for ep in range(self.par.ep):
                    group = tuple(
                        self._rank_at(stage, replica, cp, ep, tp)
                        for tp in range(self.par.tp)
                    )
                    collective = (
                        CollectiveType.ALL_REDUCE
                        if not self.par.use_sp
                        else CollectiveType.REDUCE_SCATTER
                    )
                    op = self.dag.add_comm(
                        CollectiveOp(
                            collective=collective,
                            group=group,
                            size_bytes=size,
                            parallelism="tp",
                            tag=f"tp.{direction}.s{stage}.d{replica}.mb{microbatch}",
                        ),
                        deps=base_deps,
                        phase=phase,
                        stage=stage,
                        replica=replica,
                        microbatch=microbatch,
                    )
                    extra.append(op.op_id)

        if self.options.include_cp_comm and self.par.cp > 1:
            collective = (
                CollectiveType.ALL_GATHER if direction == "fwd" else CollectiveType.REDUCE_SCATTER
            )
            size = self.workload.cp_allgather_bytes() * self.layers_per_stage
            for ep in range(self.par.ep):
                for tp in range(self.par.tp):
                    group = tuple(
                        self._rank_at(stage, replica, cp, ep, tp)
                        for cp in range(self.par.cp)
                    )
                    op = self.dag.add_comm(
                        CollectiveOp(
                            collective=collective,
                            group=group,
                            size_bytes=size,
                            parallelism="cp",
                            tag=f"cp.{direction}.s{stage}.d{replica}.mb{microbatch}",
                        ),
                        deps=base_deps,
                        phase=phase,
                        stage=stage,
                        replica=replica,
                        microbatch=microbatch,
                    )
                    extra.append(op.op_id)

        if self.options.include_ep_comm and self.par.ep > 1:
            size = self.workload.ep_alltoall_bytes() * self.layers_per_stage
            for cp in range(self.par.cp):
                for tp in range(self.par.tp):
                    group = tuple(
                        self._rank_at(stage, replica, cp, ep, tp)
                        for ep in range(self.par.ep)
                    )
                    op = self.dag.add_comm(
                        CollectiveOp(
                            collective=CollectiveType.ALL_TO_ALL,
                            group=group,
                            size_bytes=size,
                            parallelism="ep",
                            tag=f"ep.{direction}.s{stage}.d{replica}.mb{microbatch}",
                        ),
                        deps=base_deps,
                        phase=phase,
                        stage=stage,
                        replica=replica,
                        microbatch=microbatch,
                    )
                    extra.append(op.op_id)

        return extra

    # FSDP gradient ReduceScatter chains (after the last backward of each stage).
    def _emit_fsdp_reducescatters(self) -> None:
        if self.par.dp <= 1:
            return
        layers = self.layers_per_stage if self.options.per_layer_fsdp else 1
        if self.par.use_fsdp:
            per_layer = self.workload.fsdp_reducescatter_bytes_per_layer()
            size = per_layer if self.options.per_layer_fsdp else per_layer * self.layers_per_stage
            collective = CollectiveType.REDUCE_SCATTER
            tag_prefix = "fsdp.reducescatter"
        else:
            size = self.workload.dp_allreduce_bytes()
            layers = 1
            collective = CollectiveType.ALL_REDUCE
            tag_prefix = "dp.allreduce"
        for stage in range(self.par.pp):
            gradient_ready = [
                self._backward_done[(stage, replica, self.num_microbatches - 1)]
                for replica in range(self.par.dp)
            ]
            tails: List[int] = []
            for index, (cp, ep, tp) in enumerate(self._inner_indices()):
                group = self._dp_group(stage, cp, ep, tp)
                prev: Optional[int] = None
                for layer in range(layers):
                    deps: List[int] = list(gradient_ready)
                    if prev is not None:
                        deps.append(prev)
                    op = self.dag.add_comm(
                        CollectiveOp(
                            collective=collective,
                            group=group,
                            size_bytes=size,
                            parallelism="dp",
                            tag=f"{tag_prefix}.s{stage}.l{layer}",
                        ),
                        deps=deps,
                        phase=PipelinePhase.COOLDOWN,
                        stage=stage,
                        layer=layer,
                    )
                    prev = op.op_id
                if prev is not None:
                    tails.append(prev)
            self._rs_tails[stage] = tails

    # Optimizer step: parameter update compute + small sync AllReduces.
    def _emit_optimizer_step(self) -> None:
        sync_count = self.workload.training.optimizer_sync_collectives
        sync_bytes = self.workload.optimizer_sync_bytes()
        update_ids: List[int] = []
        for stage in range(self.par.pp):
            for replica in range(self.par.dp):
                deps = self._group_deps(stage, replica)
                deps.extend(self._rs_tails.get(stage, []))
                ranks = self._ranks_of(stage, replica)
                update = self.dag.add_compute(
                    ranks=ranks,
                    flops=self._optimizer_flops(),
                    deps=deps,
                    phase=PipelinePhase.SYNC,
                    tag=f"optimizer.s{stage}.d{replica}",
                    stage=stage,
                    replica=replica,
                )
                update_ids.append(update.op_id)
                self._tail[(stage, replica)] = update.op_id

        # Small synchronization AllReduce calls along DP and PP (grad-norm
        # clipping, loss scaling, numerics checks — paper §3.1 / §5).
        if self.par.dp > 1 and sync_count > 0:
            for stage in range(self.par.pp):
                for index, (cp, ep, tp) in enumerate(self._inner_indices()):
                    group = self._dp_group(stage, cp, ep, tp)
                    prev_ids = tuple(update_ids)
                    prev: Optional[int] = None
                    for sync_index in range(sync_count):
                        deps = list(prev_ids) if prev is None else [prev]
                        op = self.dag.add_comm(
                            CollectiveOp(
                                collective=CollectiveType.ALL_REDUCE,
                                group=group,
                                size_bytes=sync_bytes,
                                parallelism="dp",
                                tag=f"sync.dp.s{stage}.{sync_index}",
                            ),
                            deps=deps,
                            phase=PipelinePhase.SYNC,
                            stage=stage,
                        )
                        prev = op.op_id

        if self.par.pp > 1 and sync_count > 0:
            for replica in range(self.par.dp):
                for cp, ep, tp in self._inner_indices():
                    group = tuple(
                        self._rank_at(stage, replica, cp, ep, tp)
                        for stage in range(self.par.pp)
                    )
                    self.dag.add_comm(
                        CollectiveOp(
                            collective=CollectiveType.ALL_REDUCE,
                            group=group,
                            size_bytes=sync_bytes,
                            parallelism="pp",
                            tag=f"sync.pp.d{replica}",
                        ),
                        deps=tuple(update_ids),
                        phase=PipelinePhase.SYNC,
                        replica=replica,
                    )
