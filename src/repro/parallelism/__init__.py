"""Parallelism and workload modelling: configs, meshes, groups, DAGs, traces.

This subpackage is the ML-side substrate of the reproduction: it expands a
model + parallelism + training configuration into the per-iteration DAG of
compute and communication operations that the simulator executes and that
Opus reconfigures around.
"""

from .characteristics import (
    TABLE2_BY_NAME,
    TABLE2_ROWS,
    ParallelismCharacteristics,
    characteristics_for,
    per_iteration_volume_bytes,
    table2_rows_for,
)
from .config import (
    DTYPE_BYTES,
    ModelConfig,
    ParallelismConfig,
    TrainingConfig,
    WorkloadConfig,
)
from .dag import (
    DagBuildOptions,
    IterationDAG,
    OpKind,
    Operation,
    build_iteration_dag,
)
from .groups import CommunicationGroup, GroupRegistry
from .mesh import AXIS_ORDER, DeviceMesh, MeshCoordinate
from .pipeline import (
    ActionKind,
    PipelineAction,
    PipelinePhase,
    gpipe_schedule,
    num_pipeline_bubbles,
    one_f_one_b_schedule,
    schedule_for,
)
from .strategies import (
    TABLE1_RULES,
    StrategyRule,
    propose_parallelism,
    recommended_strategies,
    strategy_table,
)
from .trace import (
    CommRecord,
    ComputeRecord,
    IterationTrace,
    ReconfigRecord,
    TrainingTrace,
)
from .workloads import (
    GPT3_175B,
    LLAMA31_405B,
    LLAMA3_70B,
    LLAMA3_8B,
    MIXTRAL_8X7B,
    MODEL_CATALOG,
    llama3_405b_workload,
    model_by_name,
    moe_workload,
    paper_trace_cluster,
    paper_trace_workload,
    small_test_workload,
)

__all__ = [
    "AXIS_ORDER",
    "ActionKind",
    "CommRecord",
    "CommunicationGroup",
    "ComputeRecord",
    "DTYPE_BYTES",
    "DagBuildOptions",
    "DeviceMesh",
    "GPT3_175B",
    "GroupRegistry",
    "IterationDAG",
    "IterationTrace",
    "LLAMA31_405B",
    "LLAMA3_70B",
    "LLAMA3_8B",
    "MIXTRAL_8X7B",
    "MODEL_CATALOG",
    "MeshCoordinate",
    "ModelConfig",
    "OpKind",
    "Operation",
    "ParallelismCharacteristics",
    "ParallelismConfig",
    "PipelineAction",
    "PipelinePhase",
    "ReconfigRecord",
    "StrategyRule",
    "TABLE1_RULES",
    "TABLE2_BY_NAME",
    "TABLE2_ROWS",
    "TrainingConfig",
    "TrainingTrace",
    "WorkloadConfig",
    "build_iteration_dag",
    "characteristics_for",
    "gpipe_schedule",
    "llama3_405b_workload",
    "model_by_name",
    "moe_workload",
    "num_pipeline_bubbles",
    "one_f_one_b_schedule",
    "paper_trace_cluster",
    "paper_trace_workload",
    "per_iteration_volume_bytes",
    "propose_parallelism",
    "recommended_strategies",
    "schedule_for",
    "small_test_workload",
    "strategy_table",
    "table2_rows_for",
]
