"""A small stdlib HTTP client for the experiment service.

Wraps ``urllib.request`` so scripts, tests, and the ``repro-sim
submit/status/fetch`` subcommands talk to ``repro-sim serve`` without any
dependency.  Non-2xx responses carrying the service's structured error body
surface as :class:`ServiceError` with the stable ``code`` attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from ..errors import ReproError


class ServiceError(ReproError):
    """An experiment-service request failed.

    ``status`` is the HTTP status (0 for transport failures); ``code`` is
    the service's structured error code when the body carried one
    (``"unknown-backend"``, ``"oversized-grid"``, ``"not-found"``, ...).
    """

    def __init__(self, message: str, status: int = 0, code: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class ServiceClient:
    """Talks JSON to one ``repro-sim serve`` endpoint."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: object = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(body)
            except ValueError:
                parsed = {}
            raise ServiceError(
                parsed.get("message", body.strip() or str(exc)),
                status=exc.code,
                code=parsed.get("error", ""),
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.url}: {exc.reason}", status=0
            ) from exc

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def quarantine(self) -> dict:
        return self._request("GET", "/quarantine")

    def submit(self, spec: dict) -> dict:
        """Submit a sweep spec; returns the job record (state ``queued``)."""
        return self._request("POST", "/sweeps", payload=spec)["job"]

    def jobs(self) -> list:
        return self._request("GET", "/sweeps")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/sweeps/{job_id}")

    def result(self, config_hash: str) -> dict:
        """The stored result envelope for one configuration hash."""
        return self._request("GET", f"/results/{config_hash}")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.1,
        raise_on_failure: bool = True,
    ) -> dict:
        """Poll ``job_id`` until it finishes; returns the final job record."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                if job["state"] == "failed" and raise_on_failure:
                    raise ServiceError(
                        f"job {job_id} failed: {job.get('error')}", code="job-failed"
                    )
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout:g}s",
                    code="timeout",
                )
            time.sleep(poll)


def wait_until_healthy(
    url: str, timeout: float = 30.0, poll: float = 0.1
) -> ServiceClient:
    """Poll ``/healthz`` until the service answers; returns a bound client."""
    client = ServiceClient(url)
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.healthz()
            return client
        except ServiceError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(poll)
