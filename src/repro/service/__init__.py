"""Sweep-as-a-service: the persistent experiment server.

This package turns the one-shot :class:`~repro.experiments.runner.
ExperimentRunner` into a long-running system: an HTTP/JSON API
(:mod:`~repro.service.server`) in front of a validated job queue
(:mod:`~repro.service.queue`) that shards simulations across a shared
worker-process pool and answers repeated grid points from a persistent
content-addressed result store (:mod:`~repro.service.store`).  Submissions
are validated at the door (:mod:`~repro.service.validation`) with rejected
specs quarantined, and live operational counters are served from
:mod:`~repro.service.telemetry`.  :mod:`~repro.service.client` is the
matching stdlib HTTP client.

Surface it from the CLI as ``repro-sim serve`` / ``submit`` / ``status`` /
``fetch``.
"""

from .client import ServiceClient, ServiceError, wait_until_healthy
from .queue import ExperimentService, Job, QuarantineLog
from .server import ExperimentServer
from .store import STORE_FORMAT_VERSION, STORE_MAGIC, ResultStore
from .telemetry import ServiceTelemetry
from .validation import MAX_GRID_POINTS, SweepSpec, validate_sweep_spec

__all__ = [
    "ExperimentServer",
    "ExperimentService",
    "Job",
    "MAX_GRID_POINTS",
    "QuarantineLog",
    "ResultStore",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "ServiceClient",
    "ServiceError",
    "ServiceTelemetry",
    "SweepSpec",
    "validate_sweep_spec",
    "wait_until_healthy",
]
