"""Persistent content-addressed result store: the cross-run memo cache.

The in-memory config-hash memoization of
:class:`~repro.experiments.runner.ExperimentRunner` dies with its process.
This store extends it onto disk: every :class:`ScenarioResult` is filed
under its scenario's SHA-256 configuration hash
(:func:`~repro.experiments.runner.scenario_hash`), so *any* later process —
another sweep, another service replica, a reviewer re-running a grid — gets
an instant, bit-identical cache hit for an already-simulated grid point.

Three disciplines keep the store trustworthy:

* **Content addressing.**  The file name *is* the configuration hash.  Two
  scenarios with the same hash are the same simulation, so concurrent
  writers racing on one key write identical bytes and either winner is
  correct.
* **Atomic writes.**  Entries are written to a dot-prefixed temporary file
  in the destination directory and published with :func:`os.replace`.  A
  worker killed mid-write leaves at most an invisible temp file — never a
  partial entry a reader could load.
* **Versioned envelopes.**  Every entry reuses the checkpoint header
  discipline of :mod:`repro.simulator.snapshot`: a format magic, a store
  format version, and the entry's own hash are checked *before* the result
  payload is interpreted.  Foreign files, corrupt files, and entries from
  an incompatible store version are refused loudly
  (:class:`~repro.errors.StoreError`) instead of silently deserialized.

Entries are JSON (not pickle): results are plain floats/ints/strings, JSON
round-trips finite floats exactly (so cached results stay bit-identical to
fresh simulations), and the store stays greppable and language-neutral.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

from ..errors import StoreError
from ..experiments.runner import ScenarioResult

#: Magic string identifying an on-disk result envelope.
STORE_MAGIC = "repro-sim-result"

#: Bumped when the envelope or result payload changes incompatibly.
STORE_FORMAT_VERSION = 1

#: Length of a hex SHA-256 configuration hash.
_HASH_LENGTH = 64


def _check_hash(config_hash: str) -> str:
    """Validate a configuration hash (it becomes a file name — be strict)."""
    if (
        not isinstance(config_hash, str)
        or len(config_hash) != _HASH_LENGTH
        or any(ch not in "0123456789abcdef" for ch in config_hash)
    ):
        raise StoreError(
            f"invalid configuration hash {config_hash!r}: expected "
            f"{_HASH_LENGTH} lowercase hex characters"
        )
    return config_hash


class ResultStore:
    """A directory of content-addressed, versioned scenario results.

    Entries live at ``<root>/results/<hash[:2]>/<hash>.json`` — sharded on
    the first hash byte so no single directory grows unboundedly.  The store
    is safe for concurrent readers and writers across processes.
    """

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)
        self._results = self.root / "results"
        self._results.mkdir(parents=True, exist_ok=True)

    def _path(self, config_hash: str) -> Path:
        config_hash = _check_hash(config_hash)
        return self._results / config_hash[:2] / f"{config_hash}.json"

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def __contains__(self, config_hash: str) -> bool:
        return self._path(config_hash).exists()

    def get_envelope(self, config_hash: str) -> Optional[dict]:
        """The verified envelope for ``config_hash``, or ``None`` if absent.

        The envelope's magic, version, and hash are checked before the
        result is returned; anything inconsistent raises
        :class:`~repro.errors.StoreError`.
        """
        path = self._path(config_hash)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot read store entry {str(path)!r}: {exc}") from exc
        try:
            envelope = json.loads(text)
        except ValueError as exc:
            raise StoreError(
                f"store entry {str(path)!r} is not valid JSON ({exc}); the "
                "store only publishes entries atomically, so this file was "
                "written by something else"
            ) from exc
        if not isinstance(envelope, dict) or envelope.get("format") != STORE_MAGIC:
            raise StoreError(f"{str(path)!r} is not a {STORE_MAGIC} envelope")
        if envelope.get("version") != STORE_FORMAT_VERSION:
            raise StoreError(
                f"store entry {str(path)!r} has format version "
                f"{envelope.get('version')!r}; this build reads version "
                f"{STORE_FORMAT_VERSION}"
            )
        if envelope.get("config_hash") != config_hash:
            raise StoreError(
                f"store entry {str(path)!r} claims hash "
                f"{envelope.get('config_hash')!r}; content addressing is "
                "broken (renamed or tampered file)"
            )
        return envelope

    def get(self, config_hash: str) -> Optional[ScenarioResult]:
        """The stored result for ``config_hash``, or ``None`` if absent."""
        envelope = self.get_envelope(config_hash)
        if envelope is None:
            return None
        result = envelope.get("result")
        if not isinstance(result, dict):
            raise StoreError(
                f"store entry for {config_hash} carries no result payload"
            )
        return ScenarioResult.from_dict(result)

    def hashes(self) -> Iterator[str]:
        """Every stored configuration hash (unverified — just the names)."""
        for shard in sorted(self._results.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                if not entry.name.startswith("."):
                    yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.hashes())

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def put(self, result: ScenarioResult) -> bool:
        """File ``result`` under its configuration hash.

        Returns ``False`` when an entry already exists (content addressing
        makes overwriting pointless: same hash, same simulation).  The write
        is atomic — concurrent writers and killed workers cannot leave a
        partial entry at the published path.
        """
        path = self._path(result.config_hash)
        if path.exists():
            return False
        envelope = {
            "format": STORE_MAGIC,
            "version": STORE_FORMAT_VERSION,
            "config_hash": result.config_hash,
            "result": result.to_dict(),
        }
        payload = json.dumps(envelope, sort_keys=True, indent=1) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(payload)
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return True
