"""Service telemetry: operational counters as first-class state.

The experiment service exposes what it is doing — jobs queued/running/done,
cache hits by tier, rejections by reason, per-backend simulated wall time —
as live counters on ``GET /metrics`` instead of post-hoc logs.  Everything
here is a plain thread-safe counter bundle; the HTTP layer renders one JSON
snapshot per request.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict


class ServiceTelemetry:
    """Thread-safe counter bundle behind ``GET /metrics``.

    Job counters track the queue's lifecycle (``submitted`` =
    ``queued`` + ``running`` + ``done`` + ``failed`` at all times);
    scenario counters track where each requested grid point was answered
    from (fresh simulation vs. the in-memory memo, the persistent result
    store, or a duplicate inside the same batch); ``backend_wall_time``
    accumulates the wall-clock seconds *simulated* per backend — cache hits
    add nothing, which is exactly the point of the cache.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs_submitted = 0
        self.jobs_queued = 0
        self.jobs_running = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        self.scenarios_simulated = 0
        self.cache_hits: Counter = Counter()  # tier -> hits
        self.rejections: Counter = Counter()  # code -> rejections
        self.backend_wall_time: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def job_submitted(self) -> None:
        with self._lock:
            self.jobs_submitted += 1
            self.jobs_queued += 1

    def job_started(self) -> None:
        with self._lock:
            self.jobs_queued -= 1
            self.jobs_running += 1

    def job_finished(self, failed: bool) -> None:
        with self._lock:
            self.jobs_running -= 1
            if failed:
                self.jobs_failed += 1
            else:
                self.jobs_done += 1

    def job_rejected(self, code: str) -> None:
        with self._lock:
            self.jobs_rejected += 1
            self.rejections[code] += 1

    def record_simulated(self, result) -> None:
        """One grid point was freshly simulated (runner ``on_simulated``)."""
        with self._lock:
            self.scenarios_simulated += 1
            self.backend_wall_time[result.backend] = (
                self.backend_wall_time.get(result.backend, 0.0) + result.wall_time
            )

    def record_hit(self, tier: str) -> None:
        """One grid point was served without simulating (``memory``,
        ``store``, or ``batch``)."""
        with self._lock:
            self.cache_hits[tier] += 1

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """One consistent JSON-ready view of every counter."""
        with self._lock:
            hits = dict(self.cache_hits)
            return {
                "jobs": {
                    "submitted": self.jobs_submitted,
                    "queued": self.jobs_queued,
                    "running": self.jobs_running,
                    "done": self.jobs_done,
                    "failed": self.jobs_failed,
                    "rejected": self.jobs_rejected,
                },
                "scenarios": {
                    "simulated": self.scenarios_simulated,
                    "cache_hits_memory": hits.get("memory", 0),
                    "cache_hits_store": hits.get("store", 0),
                    "cache_hits_batch": hits.get("batch", 0),
                    "cache_hits_total": sum(hits.values()),
                },
                "rejections": {
                    "total": sum(self.rejections.values()),
                    "by_code": dict(sorted(self.rejections.items())),
                },
                "backend_wall_time": {
                    backend: wall
                    for backend, wall in sorted(self.backend_wall_time.items())
                },
            }
