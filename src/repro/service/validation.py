"""Sweep-spec validation at the service door.

Every submission is a JSON document; nothing from the wire reaches a worker
process until it has been parsed, typed, expanded, and capability-checked
here.  Anything wrong raises :class:`~repro.errors.SpecValidationError`
with a stable machine-readable ``code`` — the service records the rejection
in its quarantine log and the HTTP layer returns it as a structured 400,
so a malformed or capability-violating spec can never crash a worker.

A sweep spec looks like::

    {
      "scenario": {
        "workload": "tiny",               // preset name
        "workload_args": {"pp": 2},       // optional factory overrides
        "cluster": "perlmutter:2",        // cluster spec string
        "backend": "electrical",          // registered backend name
        "knobs": {"network_mode": "flow"},
        "iterations": 2,
        "mfu": 0.4,
        "name": "my-sweep"                // optional, presentation only
      },
      "grid": {"reconfiguration_delay": [1e-5, 0.015]},   // optional
      "fork": false                                       // optional
    }

``grid`` follows :func:`~repro.experiments.runner.expand_grid` semantics:
keys naming a :class:`~repro.experiments.runner.Scenario` field override
that field, every other key becomes a backend knob.  The spec builds the
*same* :class:`Scenario` objects the ``repro-sim`` CLI builds from the
equivalent flags — same configuration hashes, so HTTP submissions and CLI
runs share one result store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SpecValidationError
from ..experiments.backends import NETWORK_MODES, fault_support, get_backend
from ..experiments.cli import WORKLOAD_PRESETS, parse_cluster
from ..experiments.runner import Scenario, expand_grid
from ..simulator.executor import SimulationConfig
from ..simulator.faults import FaultPlan, as_fault_plan
from ..topology.devices import OCS_CATALOG

#: Default cap on the number of grid points one submission may expand into.
MAX_GRID_POINTS = 256

#: JSON scalar types a knob or grid value may carry.
_SCALARS = (bool, int, float, str, type(None))

_SPEC_KEYS = frozenset({"scenario", "grid", "fork"})
_SCENARIO_KEYS = frozenset(
    {
        "workload",
        "workload_args",
        "cluster",
        "backend",
        "knobs",
        "iterations",
        "mfu",
        "name",
    }
)


def _fail(code: str, message: str) -> None:
    raise SpecValidationError(code, message)


@dataclass(frozen=True)
class SweepSpec:
    """A validated submission: expanded scenarios plus run options."""

    scenarios: Tuple[Scenario, ...]
    fork: bool
    name: str


def _coerce_knob(key: str, value: object) -> object:
    """Type-check one knob value, resolving the special-cased knobs.

    ``technology`` names resolve to OCS catalog entries and ``faults``
    dict/list plans become :class:`FaultPlan` objects — exactly what the
    CLI's flag parsing produces, so configuration hashes agree between the
    two front doors.
    """
    if key == "faults":
        if isinstance(value, FaultPlan):
            return value
        if not isinstance(value, (dict, list)):
            _fail(
                "bad-fault-plan",
                "knob 'faults' must be a fault-plan object or an event list, "
                f"got {type(value).__name__}",
            )
        try:
            return as_fault_plan(value)
        except ConfigurationError as exc:
            _fail("bad-fault-plan", f"invalid fault plan: {exc}")
    if key == "technology" and isinstance(value, str):
        if value not in OCS_CATALOG:
            _fail(
                "bad-knobs",
                f"unknown OCS technology {value!r}; known: {sorted(OCS_CATALOG)}",
            )
        return OCS_CATALOG[value]
    if not isinstance(value, _SCALARS):
        _fail(
            "bad-knobs",
            f"knob {key!r} must be a JSON scalar, got {type(value).__name__}",
        )
    return value


def _check_scenario_point(scenario: Scenario) -> None:
    """Validate one expanded grid point against its backend's capabilities."""
    try:
        spec = get_backend(scenario.backend)
    except ConfigurationError as exc:
        _fail("unknown-backend", str(exc))
    unknown = sorted(set(scenario.knobs) - set(spec.knobs))
    if unknown:
        _fail(
            "unknown-knob",
            f"backend {scenario.backend!r} does not accept knobs {unknown}; "
            f"accepted: {sorted(spec.knobs)}",
        )
    mode = scenario.knobs.get("network_mode")
    if mode is not None and mode not in NETWORK_MODES:
        _fail(
            "bad-knobs",
            f"network_mode must be one of {NETWORK_MODES}, got {mode!r}",
        )
    faults = scenario.knobs.get("faults")
    if faults is not None:
        plan = faults if isinstance(faults, FaultPlan) else as_fault_plan(faults)
        supported = fault_support(scenario.backend, mode)
        if supported is not None and not plan.is_empty:
            try:
                plan.require_supported(
                    supported,
                    context=(
                        f"backend {scenario.backend!r} in "
                        f"{mode or 'analytic'} network mode"
                    ),
                )
            except ConfigurationError as exc:
                _fail("capability-violation", str(exc))


def validate_sweep_spec(
    payload: object, max_grid_points: int = MAX_GRID_POINTS
) -> SweepSpec:
    """Validate a submitted sweep spec and expand it into scenarios.

    Raises :class:`~repro.errors.SpecValidationError` (with a stable
    ``code``) on the first violation; returns the expanded, fully
    capability-checked :class:`SweepSpec` otherwise.
    """
    if not isinstance(payload, Mapping):
        _fail("bad-spec", "a sweep spec must be a JSON object")
    unknown = sorted(set(payload) - _SPEC_KEYS)
    if unknown:
        _fail(
            "bad-spec",
            f"unknown spec fields {unknown}; known: {sorted(_SPEC_KEYS)}",
        )
    scenario_spec = payload.get("scenario")
    if not isinstance(scenario_spec, Mapping):
        _fail("bad-spec", "'scenario' must be an object")
    unknown = sorted(set(scenario_spec) - _SCENARIO_KEYS)
    if unknown:
        _fail(
            "bad-spec",
            f"unknown scenario fields {unknown}; known: {sorted(_SCENARIO_KEYS)}",
        )
    fork = payload.get("fork", False)
    if not isinstance(fork, bool):
        _fail("bad-spec", "'fork' must be a boolean")

    # Workload ------------------------------------------------------------- #
    workload_name = scenario_spec.get("workload", "tiny")
    if workload_name not in WORKLOAD_PRESETS:
        _fail(
            "unknown-workload",
            f"unknown workload {workload_name!r}; presets: "
            f"{sorted(WORKLOAD_PRESETS)}",
        )
    workload_args = scenario_spec.get("workload_args", {})
    if not isinstance(workload_args, Mapping):
        _fail("bad-workload-args", "'workload_args' must be an object")
    try:
        workload = WORKLOAD_PRESETS[workload_name](**dict(workload_args))
    except (TypeError, ConfigurationError) as exc:
        _fail(
            "bad-workload-args",
            f"workload {workload_name!r} rejected arguments "
            f"{sorted(workload_args)}: {exc}",
        )

    # Cluster -------------------------------------------------------------- #
    cluster_spec = scenario_spec.get("cluster", "perlmutter:2")
    if not isinstance(cluster_spec, str):
        _fail("bad-cluster", "'cluster' must be a spec string")
    try:
        cluster = parse_cluster(cluster_spec)
    except ConfigurationError as exc:
        _fail("bad-cluster", str(exc))

    # Backend & knobs ------------------------------------------------------ #
    backend_name = scenario_spec.get("backend", "electrical")
    if not isinstance(backend_name, str):
        _fail("unknown-backend", "'backend' must be a string")
    try:
        get_backend(backend_name)
    except ConfigurationError as exc:
        _fail("unknown-backend", str(exc))
    raw_knobs = scenario_spec.get("knobs", {})
    if not isinstance(raw_knobs, Mapping):
        _fail("bad-knobs", "'knobs' must be an object")
    knobs = {str(key): _coerce_knob(str(key), value) for key, value in raw_knobs.items()}

    # Iterations & simulator ----------------------------------------------- #
    iterations = scenario_spec.get("iterations", 2)
    if not isinstance(iterations, int) or isinstance(iterations, bool) or iterations < 1:
        _fail("bad-iterations", "'iterations' must be a positive integer")
    mfu = scenario_spec.get("mfu", 0.40)
    if not isinstance(mfu, (int, float)) or isinstance(mfu, bool) or not 0 < mfu <= 1:
        _fail("bad-spec", "'mfu' must be a number in (0, 1]")

    name = scenario_spec.get("name") or f"{workload_name}@{backend_name}"
    if not isinstance(name, str):
        _fail("bad-spec", "'name' must be a string")

    # Grid ----------------------------------------------------------------- #
    raw_grid = payload.get("grid", {})
    if not isinstance(raw_grid, Mapping):
        _fail("bad-grid", "'grid' must be an object mapping keys to value lists")
    grid = {}
    points = 1
    for key, values in raw_grid.items():
        key = str(key)
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            _fail("bad-grid", f"grid key {key!r} must map to a list of values")
        if not values:
            _fail("bad-grid", f"grid key {key!r} has no values")
        grid[key] = [_coerce_knob(key, value) for value in values]
        points *= len(values)
    if points > max_grid_points:
        _fail(
            "oversized-grid",
            f"grid expands into {points} points; this service accepts at "
            f"most {max_grid_points} per submission — split the sweep",
        )

    # Expansion & per-point capability checks ------------------------------ #
    try:
        base = Scenario(
            workload=workload,
            cluster=cluster,
            backend=backend_name,
            knobs=knobs,
            num_iterations=iterations,
            simulation=SimulationConfig(mfu=float(mfu)),
            name=name,
        )
        scenarios = expand_grid(base, grid)
    except ConfigurationError as exc:
        _fail("bad-scenario", str(exc))
    for scenario in scenarios:
        _check_scenario_point(scenario)
    return SweepSpec(scenarios=tuple(scenarios), fork=fork, name=name)


def spec_excerpt(raw: Optional[str], payload: object = None, limit: int = 2048) -> str:
    """A bounded excerpt of a submission for the quarantine log."""
    if raw is None:
        try:
            import json

            raw = json.dumps(payload, default=repr)
        except (TypeError, ValueError):
            raw = repr(payload)
    return raw if len(raw) <= limit else raw[:limit] + "...[truncated]"
