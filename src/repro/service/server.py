"""The HTTP/JSON front door of the experiment service (stdlib only).

Routes
------

==========================  =================================================
``POST /sweeps``            submit a sweep spec; 202 + job record, or a
                            structured 400 (``{"error": <code>, ...}``) when
                            the spec is quarantined
``GET /sweeps``             list job summaries (newest last, no results)
``GET /sweeps/<id>``        one job: state, accounting, results when done
``GET /results/<hash>``     one stored result envelope straight from the
                            content-addressed store (any process that ever
                            simulated the point, not just this server)
``GET /healthz``            liveness: ``{"status": "ok"}``
``GET /metrics``            service telemetry counters (see ``telemetry.py``)
``GET /quarantine``         rejection counters + recent quarantined specs
==========================  =================================================

Built on :class:`http.server.ThreadingHTTPServer` — one thread per request,
which is plenty: request handling only touches counters, the job table, and
the result store; simulations run on the service's worker-process pool.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..errors import SpecValidationError, StoreError
from .queue import ExperimentService


class _Handler(BaseHTTPRequestHandler):
    """Request handler; ``server.service`` is the :class:`ExperimentService`."""

    server_version = "repro-sim-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _send_json(self, status: int, payload: object) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _not_found(self, what: str) -> None:
        self._send_json(404, {"error": "not-found", "message": what})

    def _read_body(self) -> str:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length).decode("utf-8", errors="replace")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # BaseHTTPRequestHandler logs to stderr already; keep that (the CI
        # smoke harness captures stderr as the server log) but tag the thread
        # so concurrent requests stay attributable.
        super().log_message(
            "[%s] " + format, threading.current_thread().name, *args
        )

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif path == "/metrics":
            self._send_json(200, self.service.metrics())
        elif path == "/quarantine":
            self._send_json(200, self.service.quarantine.snapshot())
        elif path == "/sweeps":
            self._send_json(
                200,
                {
                    "jobs": [
                        job.to_dict(include_results=False)
                        for job in self.service.jobs()
                    ]
                },
            )
        elif path.startswith("/sweeps/"):
            job = self.service.get_job(path[len("/sweeps/"):])
            if job is None:
                self._not_found(f"no job {path[len('/sweeps/'):]!r}")
            else:
                self._send_json(200, job.to_dict())
        elif path.startswith("/results/"):
            config_hash = path[len("/results/"):]
            try:
                envelope = self.service.store.get_envelope(config_hash)
            except StoreError as exc:
                self._send_json(400, {"error": "store-error", "message": str(exc)})
                return
            if envelope is None:
                self._not_found(f"no stored result for {config_hash!r}")
            else:
                self._send_json(200, envelope)
        else:
            self._not_found(f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/sweeps":
            self._not_found(f"unknown path {path!r}")
            return
        try:
            job = self.service.submit_text(self._read_body())
        except SpecValidationError as exc:
            # The structured rejection contract: stable code + message, and
            # the spec is already in the quarantine log.
            self._send_json(400, {"error": exc.code, "message": str(exc)})
            return
        self._send_json(
            202, {"job": job.to_dict(include_results=False), "url": f"/sweeps/{job.id}"}
        )


class ExperimentServer:
    """An :class:`ExperimentService` bound to a listening HTTP socket.

    ``port=0`` binds an ephemeral port; :attr:`url` reports the real one.
    Use :meth:`start`/:meth:`stop` for a background thread (tests) or
    :meth:`serve_forever` to block (the CLI).
    """

    def __init__(
        self,
        service: ExperimentService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ExperimentServer":
        """Serve requests on a daemon thread and return immediately."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until :meth:`stop`."""
        self.httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting requests, then drain jobs and the worker pool."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()
