"""The experiment service core: validated jobs over a shared worker pool.

:class:`ExperimentService` is the HTTP-agnostic heart of ``repro-sim
serve``: it owns the persistent :class:`~repro.service.store.ResultStore`,
the quarantine log, the telemetry counters, one long-lived
:class:`~repro.experiments.runner.ExperimentRunner` (with its in-memory
memo), and a shared ``ProcessPoolExecutor`` the runner shards every job's
cache misses across.  A small thread pool drives jobs concurrently — each
job is one validated sweep submission flowing queued → running →
done/failed, with every grid point answered from the memo, the store, or a
fresh simulation on the worker pool.

Submissions are validated *before* a job exists
(:func:`~repro.service.validation.validate_sweep_spec`); rejected specs are
recorded in the quarantine log with their rejection code and never reach a
worker.  A scenario that fails *mid-simulation* fails its job — the
exception is captured on the job record and the service (queue, pool,
other jobs) keeps running.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter, deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ConfigurationError, SpecValidationError
from ..experiments.runner import ExperimentRunner, ScenarioResult
from .store import ResultStore
from .telemetry import ServiceTelemetry
from .validation import SweepSpec, spec_excerpt, validate_sweep_spec

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted sweep: lifecycle, accounting, and (eventually) results."""

    id: str
    name: str
    num_points: int
    fork: bool
    submitted_at: float
    state: str = "queued"
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    results: Optional[List[ScenarioResult]] = None
    #: Grid points freshly simulated for this job.
    points_simulated: int = 0
    #: Grid points served without simulating, by tier.
    points_from_cache: Dict[str, int] = field(default_factory=dict)

    def to_dict(self, include_results: bool = True) -> dict:
        payload: dict = {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "num_points": self.num_points,
            "fork": self.fork,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "points_simulated": self.points_simulated,
            "points_from_cache": dict(sorted(self.points_from_cache.items())),
        }
        if self.results is not None:
            payload["result_hashes"] = [r.config_hash for r in self.results]
            if include_results:
                payload["results"] = [r.to_dict() for r in self.results]
        return payload


class QuarantineLog:
    """Append-only JSONL record of rejected submissions.

    Every rejection lands as one line — timestamp, stable rejection code,
    human-readable error, bounded spec excerpt — in
    ``<store>/quarantine.jsonl``, and feeds in-memory per-code counters
    (rehydrated from the file on startup, so counts survive restarts).
    """

    def __init__(self, path: "Path | str", recent: int = 50) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self.by_code: Counter = Counter()
        self.recent: deque = deque(maxlen=recent)
        if self.path.exists():
            for line in self.path.read_text().splitlines():
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # a torn tail line cannot poison startup
                self.by_code[entry.get("code", "unknown")] += 1
                self.recent.append(entry)

    def record(self, code: str, error: str, spec: str) -> dict:
        entry = {
            "time": time.time(),
            "code": code,
            "error": error,
            "spec": spec,
        }
        with self._lock:
            with self.path.open("a") as handle:
                handle.write(json.dumps(entry) + "\n")
            self.by_code[code] += 1
            self.recent.append(entry)
        return entry

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "total": sum(self.by_code.values()),
                "by_code": dict(sorted(self.by_code.items())),
                "recent": list(self.recent),
            }


class ExperimentService:
    """Long-running sweep execution behind an in-process API.

    Parameters
    ----------
    store_dir:
        Directory holding the persistent result store and quarantine log.
    max_workers:
        Size of the shared simulation worker-process pool (default: CPU
        count, capped at 8 — the service is long-lived, not a batch job).
    job_workers:
        How many jobs may be in the ``running`` state concurrently; each
        occupies one dispatcher thread and shards its cache misses across
        the shared worker pool.
    max_grid_points:
        Per-submission cap enforced by spec validation.
    executor:
        ``"process"`` (default) runs simulations on the shared pool;
        ``"serial"`` runs them inline on the dispatcher thread (tests,
        debugging).
    """

    def __init__(
        self,
        store_dir: "Path | str",
        max_workers: Optional[int] = None,
        job_workers: int = 4,
        max_grid_points: Optional[int] = None,
        executor: str = "process",
    ) -> None:
        if executor not in ("process", "serial"):
            raise ConfigurationError(
                f"service executor must be 'process' or 'serial', got {executor!r}"
            )
        if job_workers <= 0:
            raise ConfigurationError("job_workers must be positive")
        self.store = ResultStore(store_dir)
        self.quarantine = QuarantineLog(Path(store_dir) / "quarantine.jsonl")
        self.telemetry = ServiceTelemetry()
        self.max_grid_points = max_grid_points
        self.num_workers = (
            max_workers if max_workers else min(os.cpu_count() or 2, 8)
        )
        self._pool: Optional[ProcessPoolExecutor] = (
            ProcessPoolExecutor(max_workers=self.num_workers)
            if executor == "process"
            else None
        )
        self.runner = ExperimentRunner(
            max_workers=self.num_workers,
            executor="serial" if executor == "serial" else "process",
            store=self.store,
            pool=self._pool,
        )
        self.job_workers = job_workers
        self._dispatch = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="job"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit_text(self, body: str) -> Job:
        """Validate and enqueue a raw JSON submission body."""
        try:
            payload = json.loads(body)
        except ValueError as exc:
            error = SpecValidationError(
                "malformed-json", f"request body is not valid JSON: {exc}"
            )
            self._reject(error, spec_excerpt(body))
            raise error
        return self.submit(payload, raw=body)

    def submit(self, payload: object, raw: Optional[str] = None) -> Job:
        """Validate ``payload`` and enqueue it as a job.

        Raises :class:`~repro.errors.SpecValidationError` (after recording
        the rejection in the quarantine log) when the spec is refused.
        """
        if self._closed:
            raise ConfigurationError("the service is shut down")
        kwargs = (
            {}
            if self.max_grid_points is None
            else {"max_grid_points": self.max_grid_points}
        )
        try:
            spec = validate_sweep_spec(payload, **kwargs)
        except SpecValidationError as exc:
            self._reject(exc, spec_excerpt(raw, payload))
            raise
        with self._lock:
            self._counter += 1
            job = Job(
                id=f"job-{self._counter:06d}",
                name=spec.name,
                num_points=len(spec.scenarios),
                fork=spec.fork,
                submitted_at=time.time(),
            )
            self._jobs[job.id] = job
        self.telemetry.job_submitted()
        self._dispatch.submit(self._run_job, job, spec)
        return job

    def _reject(self, error: SpecValidationError, spec: str) -> None:
        self.quarantine.record(error.code, str(error), spec)
        self.telemetry.job_rejected(error.code)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.02) -> Job:
        """Block until ``job_id`` leaves the queue (tests and CLIs)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.get_job(job_id)
            if job is None:
                raise ConfigurationError(f"unknown job {job_id!r}")
            if job.state in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.state} after {timeout:g}s"
                )
            time.sleep(poll)

    def metrics(self) -> dict:
        """The ``GET /metrics`` payload: telemetry + cache + pool gauges."""
        payload = self.telemetry.snapshot()
        payload["store"] = {
            "root": str(self.store.root),
            "results": len(self.store),
        }
        payload["runner"] = {
            "memo_results": self.runner.cache_size,
            "cache_hits": self.runner.cache_hits,
            "cache_misses": self.runner.cache_misses,
            "store_hits": self.runner.store_hits,
        }
        payload["workers"] = {
            "processes": self.num_workers if self._pool is not None else 0,
            "job_slots": self.job_workers,
        }
        payload["rejections"]["recent_codes"] = self.quarantine.snapshot()["by_code"]
        return payload

    # ------------------------------------------------------------------ #
    # Execution & shutdown
    # ------------------------------------------------------------------ #

    def _run_job(self, job: Job, spec: SweepSpec) -> None:
        job.state = "running"
        job.started_at = time.time()
        self.telemetry.job_started()

        def on_simulated(result: ScenarioResult) -> None:
            job.points_simulated += 1
            self.telemetry.record_simulated(result)

        def on_hit(result: ScenarioResult, tier: str) -> None:
            job.points_from_cache[tier] = job.points_from_cache.get(tier, 0) + 1
            self.telemetry.record_hit(tier)

        failed = False
        try:
            results = self.runner.run_many(
                list(spec.scenarios),
                fork=spec.fork,
                on_simulated=on_simulated,
                on_hit=on_hit,
            )
            job.results = results
            job.state = "done"
        except Exception as exc:  # noqa: BLE001 — a bad point must not kill the service
            failed = True
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
        finally:
            job.finished_at = time.time()
            self.telemetry.job_finished(failed)

    def close(self, wait: bool = True) -> None:
        """Drain the dispatcher and shut the worker pool down."""
        if self._closed:
            return
        self._closed = True
        self._dispatch.shutdown(wait=wait)
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
