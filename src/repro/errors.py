"""Exception hierarchy for the photonic-rails reproduction.

All library-specific errors derive from :class:`ReproError` so applications can
catch a single base class.  Sub-classes are grouped by subsystem (configuration,
topology, circuits, simulation, control plane) so tests and callers can assert
on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid model, parallelism, or cluster configuration was supplied."""


class TopologyError(ReproError):
    """A topology is malformed or an operation referenced a missing element."""


class CircuitError(ReproError):
    """An optical circuit operation violated OCS constraints.

    Raised for example when two circuits are requested on the same OCS port,
    when a circuit references ports outside the switch radix, or when a
    tear-down targets a circuit that is not installed.
    """


class CircuitConflictError(CircuitError):
    """A requested circuit configuration conflicts with installed circuits."""


class SchedulingError(ReproError):
    """The control-plane scheduler was asked to violate its invariants.

    Examples: serving requests out of FIFO order within a communication-group
    domain, or reconfiguring a circuit that still carries an active flow.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The executor detected that no runnable operation remains while
    unfinished operations still exist (a dependency cycle or an impossible
    communication pattern)."""


class FaultError(SimulationError):
    """A fault-injection event could not be applied.

    Raised when a :class:`~repro.simulator.faults.FaultPlan` event matches
    nothing (a typo'd node pattern), targets a component the backend cannot
    fault, or leaves the fabric in a state no healthy assignment can serve
    (e.g. a ring that needs two NIC ports on a domain with one healthy OCS
    port left).
    """


class LinkFailedError(SimulationError):
    """A flow's path crosses a link that failed mid-simulation.

    Carries the affected flow id and link key so policies and tests can react
    to the precise casualty instead of parsing the message.  Raised by the
    flow simulator when a fault (or a circuit tear-down) kills a link under a
    pending or in-flight flow and the failure policy is ``"fail"`` — or when
    the ``"reroute"`` policy finds no surviving path.
    """

    def __init__(
        self,
        message: str,
        flow_id: "int | None" = None,
        link_key: "tuple | None" = None,
    ) -> None:
        super().__init__(message)
        self.flow_id = flow_id
        self.link_key = link_key


class SnapshotError(SimulationError):
    """Simulation state could not be captured or restored.

    Raised when a snapshot would contain a non-serializable callback (a
    lambda or unregistered closure — forking those would silently keep
    mutating the original simulation), when a checkpoint file has the wrong
    format or version, or when a restore targets an incompatible object.
    """


class StoreError(ReproError):
    """A persistent result-store entry could not be read or written.

    Raised when an on-disk envelope is not a repro-sim result at all, was
    written by an incompatible store format version, does not match the
    content hash it is filed under, or when a requested hash is malformed.
    Absent entries are *not* errors — lookups return ``None`` for those.
    """


class SpecValidationError(ReproError):
    """A submitted experiment spec was rejected at the service door.

    Carries a stable machine-readable ``code`` (``"malformed-json"``,
    ``"unknown-backend"``, ``"capability-violation"``, ``"oversized-grid"``,
    ...) next to the human-readable message, so HTTP clients and the
    quarantine log can track rejection reasons without parsing prose.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ScenarioError(ReproError):
    """A scenario failed to simulate.

    Raised by the experiment runner with the failing scenario's name attached,
    so that one bad point in a parallel sweep is attributable instead of
    surfacing as a bare traceback from a worker process.
    """


class ControlPlaneError(ReproError):
    """An Opus control-plane component received an invalid request."""


class ProfileError(ControlPlaneError):
    """The traffic profiler was queried for a pattern it has not learned."""
