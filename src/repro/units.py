"""Units and physical constants used throughout the photonic-rails reproduction.

Conventions
-----------
The whole library uses a single, consistent set of base units:

* **time** — seconds (``float``)
* **data size** — bytes (``float``; fractional bytes are allowed in analytic
  formulas)
* **bandwidth / rate** — bytes per second
* **power** — watts
* **cost** — US dollars

Helper constants convert the units that appear in the paper (milliseconds for
OCS reconfiguration times, Gbps for link rates, MB/GB for collective payloads)
into the base units.  Keeping conversions explicit at call sites -- e.g.
``25 * MILLISECONDS`` or ``400 * GBPS`` -- keeps the code readable and removes
a whole class of unit-mismatch bugs.
"""

from __future__ import annotations

# --------------------------------------------------------------------------- #
# Time
# --------------------------------------------------------------------------- #

SECONDS: float = 1.0
MILLISECONDS: float = 1e-3
MICROSECONDS: float = 1e-6
NANOSECONDS: float = 1e-9
MINUTES: float = 60.0
HOURS: float = 3600.0

# --------------------------------------------------------------------------- #
# Data sizes (decimal and binary)
# --------------------------------------------------------------------------- #

BYTES: float = 1.0
KB: float = 1e3
MB: float = 1e6
GB: float = 1e9
TB: float = 1e12

KIB: float = 1024.0
MIB: float = 1024.0**2
GIB: float = 1024.0**3

# --------------------------------------------------------------------------- #
# Bandwidth
# --------------------------------------------------------------------------- #

#: One gigabit per second, expressed in bytes per second.
GBPS: float = 1e9 / 8.0
#: One terabit per second, expressed in bytes per second.
TBPS: float = 1e12 / 8.0
#: One gigabyte per second.
GBYTES_PER_S: float = 1e9

# --------------------------------------------------------------------------- #
# Compute
# --------------------------------------------------------------------------- #

FLOPS: float = 1.0
GFLOPS: float = 1e9
TFLOPS: float = 1e12
PFLOPS: float = 1e15

# --------------------------------------------------------------------------- #
# Power and cost
# --------------------------------------------------------------------------- #

WATTS: float = 1.0
KILOWATTS: float = 1e3
MEGAWATTS: float = 1e6

DOLLARS: float = 1.0


def bytes_per_second_from_gbps(gbps: float) -> float:
    """Convert a link rate in gigabits per second to bytes per second."""
    return gbps * GBPS


def gbps_from_bytes_per_second(rate: float) -> float:
    """Convert a rate in bytes per second to gigabits per second."""
    return rate / GBPS


def seconds_from_ms(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * MILLISECONDS


def ms_from_seconds(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLISECONDS


def megabytes(size_bytes: float) -> float:
    """Convert a size in bytes to megabytes (decimal)."""
    return size_bytes / MB


def format_bytes(size_bytes: float) -> str:
    """Render a byte count with a human-friendly suffix (e.g. ``'3.83 GB'``)."""
    magnitude = abs(size_bytes)
    if magnitude >= TB:
        return f"{size_bytes / TB:.2f} TB"
    if magnitude >= GB:
        return f"{size_bytes / GB:.2f} GB"
    if magnitude >= MB:
        return f"{size_bytes / MB:.2f} MB"
    if magnitude >= KB:
        return f"{size_bytes / KB:.2f} KB"
    return f"{size_bytes:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration with a human-friendly suffix (e.g. ``'12.5 ms'``)."""
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= MILLISECONDS:
        return f"{seconds / MILLISECONDS:.3f} ms"
    if magnitude >= MICROSECONDS:
        return f"{seconds / MICROSECONDS:.3f} us"
    return f"{seconds / NANOSECONDS:.1f} ns"


def format_power(watts: float) -> str:
    """Render a power figure with a human-friendly suffix (e.g. ``'1.29 MW'``)."""
    magnitude = abs(watts)
    if magnitude >= MEGAWATTS:
        return f"{watts / MEGAWATTS:.2f} MW"
    if magnitude >= KILOWATTS:
        return f"{watts / KILOWATTS:.2f} kW"
    return f"{watts:.1f} W"


def format_cost(dollars: float) -> str:
    """Render a cost figure with a human-friendly suffix (e.g. ``'$26.4M'``)."""
    magnitude = abs(dollars)
    if magnitude >= 1e9:
        return f"${dollars / 1e9:.2f}B"
    if magnitude >= 1e6:
        return f"${dollars / 1e6:.2f}M"
    if magnitude >= 1e3:
        return f"${dollars / 1e3:.1f}K"
    return f"${dollars:.2f}"
