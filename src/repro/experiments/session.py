"""Live simulation sessions: incremental runs, checkpoints, and forks.

A :class:`SimulationSession` owns everything one running scenario needs —
the iteration DAG, the network model, the DAG executor, the accumulating
trace — and drives it *one iteration at a time* instead of all at once.
That incremental loop is what makes three things possible:

* **checkpoint/resume** — :meth:`SimulationSession.save` spills the whole
  session (pending engine events included) to a versioned on-disk file;
  :meth:`SimulationSession.load` materializes it in a later process and
  :meth:`run_to` continues bit-for-bit where the saved run stopped;
* **fork** — :meth:`SimulationSession.fork` copies the live session via an
  in-memory pickle round trip.
  Both copies continue identically until their inputs diverge, which is the
  primitive behind the experiment runner's delta-sweeps: a grid whose points
  share a scenario prefix is simulated once up to the divergence point and
  branched, instead of re-simulated from t=0 per point
  (see :meth:`repro.experiments.runner.ExperimentRunner.run_many`);
* **mid-run divergence** — :meth:`SimulationSession.extend_faults` installs
  the tail of a branch's fault plan onto the live model, which is how a
  fork stops being a clone.

Forking and extending happen at iteration boundaries, where every collective
has drained; combined with the engine's deterministic (time, sequence)
ordering this keeps a branch's trace exactly equal to an independent
straight-through run of the full scenario — asserted across seeds and
backends in ``tests/test_properties.py``.
"""

from __future__ import annotations

import os
import pickle
import threading
import time as _time
from pathlib import Path
from typing import Dict, Optional, Sequence

from ..errors import ScenarioError, SnapshotError
from ..parallelism.dag import build_iteration_dag
from ..parallelism.groups import GroupRegistry
from ..parallelism.trace import IterationTrace, TrainingTrace
from ..simulator.executor import DAGExecutor
from ..simulator.faults import FaultPlan, as_fault_plan
from ..simulator.metrics import iteration_metrics
from ..simulator.snapshot import SNAPSHOT_FORMAT_VERSION, SimState, Snapshottable
from .backends import create_network, fault_support
from .runner import Scenario, ScenarioResult, _steady, scenario_hash

#: Magic string identifying an on-disk session checkpoint.
CHECKPOINT_MAGIC = "repro-sim-checkpoint"


class SimulationSession(Snapshottable):
    """One live, resumable simulation of a :class:`Scenario`.

    Build with :meth:`start` (fresh) or :meth:`load` (from a checkpoint),
    advance with :meth:`run_next_iteration` / :meth:`run_to`, and condense
    into a :class:`ScenarioResult` with :meth:`result`.  ``run_scenario``
    is exactly ``start`` + ``run_to`` + ``result``.
    """

    def __init__(
        self,
        scenario: Scenario,
        executor: DAGExecutor,
    ) -> None:
        self.scenario = scenario
        self.executor = executor
        self.trace = TrainingTrace()
        #: Simulated time the next iteration starts at.
        self.clock = 0.0
        #: Number of iterations fully simulated so far.
        self.completed = 0
        #: Wall-clock seconds spent deep-copying this session in :meth:`fork`.
        self.fork_wall = 0.0

    @classmethod
    def start(cls, scenario: Scenario) -> "SimulationSession":
        """Build the DAG, network model, and executor for ``scenario``."""
        dag = build_iteration_dag(
            scenario.workload, scenario.cluster, scenario.dag_options
        )
        registry = GroupRegistry(dag.mesh)
        network = create_network(
            scenario.backend,
            scenario.cluster,
            dag.mesh,
            registry=registry,
            **dict(scenario.knobs),
        )
        executor = DAGExecutor(
            dag, scenario.cluster, network, config=scenario.simulation
        )
        return cls(scenario, executor)

    @property
    def network(self):
        """The scenario's live network model."""
        return self.executor.network

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #

    def run_next_iteration(self) -> IterationTrace:
        """Simulate one more training iteration, continuing the clock."""
        trace = self.executor.run_iteration(
            iteration=self.completed, start_time=self.clock
        )
        self.trace.add(trace)
        self.clock = trace.end
        self.completed += 1
        return trace

    def run_to(self, num_iterations: int) -> TrainingTrace:
        """Advance until ``num_iterations`` iterations have been simulated."""
        while self.completed < num_iterations:
            self.run_next_iteration()
        return self.trace

    def fork(self) -> "SimulationSession":
        """An independent copy continuing bit-for-bit identically.

        An in-memory pickle round trip (see :meth:`Snapshottable.fork`): the
        two sessions share no mutable state, and the wall-clock cost —
        accumulated in :attr:`fork_wall` and reported by the fork-sweep
        benchmark — stays far below re-simulating the prefix.
        """
        started = _time.perf_counter()
        forked = super().fork()
        self.fork_wall += _time.perf_counter() - started
        return forked

    def extend_faults(
        self, plan: object, scenario: Optional[Scenario] = None
    ) -> None:
        """Install additional fault events on the live model (mid-run).

        ``plan`` is anything ``as_fault_plan`` accepts.  Event kinds are
        validated against what this scenario's backend/mode combination
        supports — the same check the up-front ``faults=`` knob performs —
        before touching the model.  Passing ``scenario`` rebinds
        :attr:`scenario` to the diverged configuration in the same step, so
        a later :meth:`result` is labeled (and hashed) as the branch.
        """
        plan = as_fault_plan(plan)
        if not plan.is_empty:
            supported = fault_support(
                self.scenario.backend, self.scenario.knobs.get("network_mode")
            )
            if supported is not None:
                mode = self.scenario.knobs.get("network_mode") or "analytic"
                plan.require_supported(
                    supported,
                    context=(
                        f"backend {self.scenario.backend!r} in {mode} "
                        "network mode"
                    ),
                )
            self.network.extend_fault_plan(plan)
        if scenario is not None:
            self.scenario = scenario

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(
        self, scenario: Optional[Scenario] = None, wall_time: float = 0.0
    ) -> ScenarioResult:
        """Condense the accumulated trace into a :class:`ScenarioResult`.

        ``scenario`` defaults to :attr:`scenario`; fork-sweep branches pass
        their own diverged scenario so the result's name, knobs, and
        configuration hash describe the branch (making it cache under the
        same key as an independent run of that scenario).
        """
        scenario = scenario or self.scenario
        if self.completed != scenario.num_iterations:
            raise ScenarioError(
                f"scenario {scenario.name!r} asks for "
                f"{scenario.num_iterations} iterations but the session has "
                f"simulated {self.completed}"
            )
        per_iteration = [iteration_metrics(t) for t in self.trace.iterations]
        iteration_times = tuple(m.iteration_time for m in per_iteration)
        reconfigurations = tuple(m.num_reconfigurations for m in per_iteration)
        blocking = tuple(m.exposed_reconfig_time for m in per_iteration)
        steady_metrics = _steady(per_iteration)

        def _mean(values: Sequence[float]) -> float:
            return sum(values) / len(values)

        metrics: Dict[str, float] = {
            "mean_iteration_time": _mean(iteration_times),
            "steady_iteration_time": _mean(
                [m.iteration_time for m in steady_metrics]
            ),
            "reconfigurations_per_iteration": _mean(
                [m.num_reconfigurations for m in steady_metrics]
            ),
            "exposed_reconfig_time": _mean(
                [m.exposed_reconfig_time for m in steady_metrics]
            ),
            "compute_time": _mean([m.compute_time for m in steady_metrics]),
            "scaleout_comm_time": _mean(
                [m.scaleout_comm_time for m in steady_metrics]
            ),
            "scaleup_comm_time": _mean(
                [m.scaleup_comm_time for m in steady_metrics]
            ),
            "scaleout_bytes": _mean([m.scaleout_bytes for m in steady_metrics]),
            "total_time": self.trace.iterations[-1].end,
        }
        flow_stats = getattr(self.network, "flow_stats", None)
        if flow_stats is not None:
            # Flow-mode allocator counters (whole-run totals): how many solver
            # passes ran, over how many components/flows, and how many were
            # ε-skipped — the observability hook for the approximation knobs.
            for key, value in flow_stats.as_dict().items():
                metrics[key] = float(value)
        return ScenarioResult(
            name=scenario.name,
            backend=scenario.backend,
            config_hash=scenario_hash(scenario),
            num_iterations=scenario.num_iterations,
            knobs={
                key: value
                if isinstance(value, (int, float, bool, str, type(None)))
                else repr(value)
                for key, value in scenario.knobs.items()
            },
            iteration_times=iteration_times,
            reconfigurations=reconfigurations,
            reconfig_blocking=blocking,
            metrics=metrics,
            worker=f"{os.getpid()}:{threading.current_thread().name}",
            wall_time=wall_time,
        )

    # ------------------------------------------------------------------ #
    # On-disk checkpoints
    # ------------------------------------------------------------------ #

    def save(self, path: "Path | str") -> None:
        """Spill the session to ``path`` as a versioned checkpoint.

        The file is a pickled header — format magic, snapshot format
        version, scenario hash/name, progress counters — wrapping the same
        opaque payload :meth:`snapshot` produces, so readers can reject
        foreign files and incompatible versions *before* unpickling any
        simulation state.
        """
        state = self.snapshot()
        header = {
            "format": CHECKPOINT_MAGIC,
            "version": state.format_version,
            "kind": state.kind,
            "scenario_hash": scenario_hash(self.scenario),
            "scenario_name": self.scenario.name,
            "backend": self.scenario.backend,
            "completed_iterations": self.completed,
            "clock": self.clock,
            "payload": state.payload,
        }
        Path(path).write_bytes(
            pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
        )

    @classmethod
    def read_header(cls, path: "Path | str") -> dict:
        """The checkpoint's header metadata (without the pickled payload)."""
        try:
            data = pickle.loads(Path(path).read_bytes())
        except Exception as exc:
            raise SnapshotError(
                f"cannot read checkpoint {str(path)!r}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("format") != CHECKPOINT_MAGIC:
            raise SnapshotError(
                f"{str(path)!r} is not a repro-sim checkpoint"
            )
        if data.get("version") != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"checkpoint {str(path)!r} has format version "
                f"{data.get('version')!r}; this build reads version "
                f"{SNAPSHOT_FORMAT_VERSION}"
            )
        return {key: value for key, value in data.items() if key != "payload"}

    @classmethod
    def load(cls, path: "Path | str") -> "SimulationSession":
        """Materialize a checkpoint written by :meth:`save`."""
        try:
            data = pickle.loads(Path(path).read_bytes())
        except Exception as exc:
            raise SnapshotError(
                f"cannot read checkpoint {str(path)!r}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("format") != CHECKPOINT_MAGIC:
            raise SnapshotError(
                f"{str(path)!r} is not a repro-sim checkpoint"
            )
        state = SimState(
            kind=data.get("kind", ""),
            payload=data.get("payload", b""),
            format_version=data.get("version", -1),
        )
        session = cls.__new__(cls)
        session.restore(state)
        return session
