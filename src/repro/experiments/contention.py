"""Bundled scenarios contrasting the analytic and flow-level network modes.

Four reference scenarios anchor the flow-level network mode:

* :func:`contention_free_scenario` — a DP-only workload on fully-connected
  electrical rails.  Every scale-out collective owns its links, so the flow
  expansion must reproduce the analytic alpha–beta prediction (the modes are
  asserted equal within 2% in the test suite).
* :func:`shared_uplink_incast_scenario` — the packet-fabric divergence
  demonstration: four per-rail DP rings run concurrently over a small-radix,
  oversubscribed fat-tree whose edge uplinks their routes share.  The
  analytic model prices each ring as if it owned the uplink; the flow-level
  mode max–min fair shares it, so flow mode is strictly slower — contention
  the analytic mode cannot see.
* :func:`provisioned_photonic_scenario` — the circuit-switched equivalence
  anchor: a DP-only workload on photonic rails, where the single parallelism
  axis means circuits are installed once (profiling iteration) and never
  reconfigured again.  Flows ride dedicated circuits without any sharing, so
  flow mode must agree with the analytic photonic model within 5%.
* :func:`circuit_thrash_scenario` — the circuit-switched divergence
  demonstration: a small MoE workload whose DP and EP axes need mutually
  conflicting circuit configurations on every rail, so the axes alternating
  within each iteration defeats coalescing and forces steady-state
  reconfigurations.  The EP AllToAll's direct exchange additionally needs
  ``n-1`` distinct neighbors per rank (paper constraint C1) while the
  crossbar holds a ring, so the distance-2+ exchanges forward through
  intermediate hosts and contend for the ring circuits — stalls and
  contention the analytic model, which prices every collective at the full
  port rate and analytic drain times, structurally underprices.  Flow mode
  is strictly slower.

:func:`compare_network_modes` runs any scenario under both modes and reports
the slowdown, which is how the ``repro-sim`` CLI and the tests consume these.

The module also hosts the **degraded-fabric scenario family**
(:func:`degraded_fabric_scenario`, :func:`degraded_fabric_grid`): concurrent
per-rail DP rings on the fat-tree, rail-optimized, and photonic backends
under three fault conditions — ``healthy``, ``degraded`` (every fabric link
at 90% capacity), and ``failed`` (one GPU's NIC attachment down, its flows
detouring over the scale-up interconnect through a domain-mate's rail).  The
``healthy < degraded < failed`` completion-time ordering is asserted as
tier-1 tests on all three fabrics, and a 1k-endpoint version runs as the
non-blocking ``-m slow`` CI smoke.

The module additionally hosts the **large-scale scenario family**
(:func:`scale_scenario`, :func:`scale_scenario_grid`): 1k/4k/10k-endpoint
fabrics running a multi-collective MoE steady state (concurrent per-rail FSDP
rings across the DP axis plus expert-parallel AllToAlls), on the fat-tree,
rail-optimized, and photonic backends.  These are the workloads the
flow-simulator scaling work (vectorized water-filling, component-local
reallocation, route tables) is measured against, runnable directly via
``repro-sim scale`` and swept in parallel through the experiment runner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..parallelism.config import (
    ModelConfig,
    ParallelismConfig,
    TrainingConfig,
    WorkloadConfig,
)
from ..parallelism.dag import DagBuildOptions
from ..parallelism.workloads import small_test_workload
from ..simulator.faults import FaultEvent, FaultKind, FaultPlan
from ..topology.devices import (
    ClusterSpec,
    ElectricalSwitchSpec,
    OCSTechnology,
    perlmutter_testbed,
)
from ..units import GBPS
from .runner import ExperimentRunner, Scenario, ScenarioResult

#: A deliberately tiny packet switch: with radix 4 every edge switch hosts
#: only two NIC ports, so cross-node routes must climb into the shared
#: aggregation/core tiers — the preconditions for link contention.
MINI_SWITCH = ElectricalSwitchSpec(
    name="mini-4x400G",
    radix=4,
    port_bandwidth=400 * GBPS,
    cost_dollars=1_000.0,
    power_watts=100.0,
)


def mini_fat_tree_cluster(num_nodes: int = 4) -> ClusterSpec:
    """A Perlmutter-style testbed whose fat-tree uses the tiny radix-4 switch."""
    return replace(perlmutter_testbed(num_nodes=num_nodes), electrical_switch=MINI_SWITCH)


def contention_free_scenario(num_iterations: int = 2) -> Scenario:
    """DP-only workload on fully-connected rails: no shared links anywhere.

    TP=4 keeps tensor parallelism on NVLink; the single DP axis puts one rank
    per node on each rail, and the fully-connected electrical fabric gives
    every rail pair a dedicated route.
    """
    return Scenario(
        workload=small_test_workload(pp=1, dp=2, tp=4),
        cluster=perlmutter_testbed(num_nodes=2),
        backend="electrical",
        num_iterations=num_iterations,
        name="contention-free",
    )


def shared_uplink_incast_scenario(
    oversubscription: float = 4.0, num_iterations: int = 2
) -> Scenario:
    """Concurrent per-rail DP rings sharing oversubscribed fat-tree uplinks.

    With TP=4 and DP=4 on four nodes, each rail carries one DP ring and all
    four rings run concurrently (they serve different tensor shards of the
    same layer).  On the mini fat-tree their cross-node hops funnel through
    the same edge-to-aggregation uplinks, which ``oversubscription`` thins
    further — a shared-link incast the analytic mode prices away.
    """
    return Scenario(
        workload=small_test_workload(pp=1, dp=4, tp=4),
        cluster=mini_fat_tree_cluster(num_nodes=4),
        backend="fattree",
        knobs={"oversubscription": float(oversubscription)},
        num_iterations=num_iterations,
        name="shared-uplink-incast",
    )


def provisioned_photonic_scenario(num_iterations: int = 3) -> Scenario:
    """DP-only workload on photonic rails: provisioned, contention-free.

    With a single scale-out axis every rail installs its DP circuit during
    the profiling iteration and never reconfigures again; flows then ride
    dedicated point-to-point circuits at the full port rate.  Flow mode must
    therefore reproduce the analytic photonic model's steady-state iteration
    time (within 5%) — the circuit-switched analogue of
    :func:`contention_free_scenario`.
    """
    return Scenario(
        workload=small_test_workload(pp=1, dp=2, tp=4),
        cluster=perlmutter_testbed(num_nodes=2),
        backend="photonic",
        num_iterations=num_iterations,
        name="provisioned-photonic",
    )


#: A deliberately small MoE transformer: large enough for its EP AllToAll and
#: DP FSDP traffic to fill the rails, small enough to simulate in tests.
TINY_MOE_MODEL = ModelConfig(
    name="Tiny-MoE",
    num_layers=4,
    hidden_size=1024,
    ffn_hidden_size=4096,
    num_attention_heads=8,
    num_kv_heads=8,
    vocab_size=32_000,
    seq_length=2048,
    num_experts=4,
    moe_top_k=2,
)


def tiny_moe_workload() -> WorkloadConfig:
    """A TP=4 / EP=4 / DP=2 MoE workload whose DP and EP axes alternate.

    EP groups span four consecutive scale-up domains (a four-circuit ring per
    rail needing both NIC ports of every GPU), DP pairs span domains four
    apart (one port-0 circuit per rail).  The two axes' configurations
    conflict on every rail, so each DP↔EP alternation inside an iteration
    forces a reconfiguration — the thrash :func:`circuit_thrash_scenario`
    measures.
    """
    return WorkloadConfig(
        model=TINY_MOE_MODEL,
        parallelism=ParallelismConfig(tp=4, dp=2, ep=4, use_fsdp=True),
        training=TrainingConfig(global_batch_size=2 * 2 * 4, micro_batch_size=2),
    )


def circuit_thrash_cluster() -> ClusterSpec:
    """Eight Perlmutter nodes with 2-port NICs (rings over >2 domains need both)."""
    return replace(perlmutter_testbed(num_nodes=8), nic_ports_per_gpu=2)


def circuit_thrash_scenario(
    num_iterations: int = 3, reconfiguration_delay: float = 1e-3
) -> Scenario:
    """Alternating DP/EP axes defeating coalescing on photonic rails.

    Every iteration alternates FSDP (DP) collectives with EP AllToAlls whose
    circuit configurations conflict on every rail, so the shim reconfigures
    in steady state (coalescing cannot help — the axes genuinely need
    different crossbars).  At flow level the AllToAll's distance-2+ exchanges
    forward through intermediate hosts over the installed ring (constraint
    C1), contending for circuits the analytic model prices as dedicated, and
    the contended drains push subsequent switching events later.  Flow mode
    is strictly slower than analytic — reconfiguration stalls under live
    contention that analytic pricing cannot see.
    """
    return Scenario(
        workload=tiny_moe_workload(),
        cluster=circuit_thrash_cluster(),
        backend="photonic",
        knobs={"reconfiguration_delay": float(reconfiguration_delay)},
        num_iterations=num_iterations,
        name="circuit-thrash",
    )


# --------------------------------------------------------------------------- #
# Routing-policy and reactive-control scenario families
# --------------------------------------------------------------------------- #

#: Routing policies the adaptive-routing family sweeps.
ROUTING_SCENARIO_POLICIES = ("single", "ecmp", "adaptive", "spray")

#: Provisioning modes the reactive-vs-profile family contrasts.
REACTIVE_SCENARIO_MODES = ("profile", "none", "reactive")


def adaptive_routing_scenario(
    routing_policy: str = "single",
    oversubscription: float = 4.0,
    num_iterations: int = 2,
) -> Scenario:
    """The shared-uplink incast under one multipath routing policy.

    Same traffic as :func:`shared_uplink_incast_scenario` — four concurrent
    per-rail DP rings funneling through oversubscribed fat-tree uplinks — but
    run in flow mode under a :mod:`~repro.simulator.routing` policy.  The
    mini fat-tree's edge switches each have two aggregation uplinks, so every
    cross-node pair has equal-cost paths for ``ecmp``/``adaptive`` to spread
    over and ``spray`` to stripe across; ``single`` deterministically picks
    one and piles every ring onto it.  The test suite asserts multipath never
    loses to single-path on this incast.
    """
    if routing_policy not in ROUTING_SCENARIO_POLICIES:
        raise ConfigurationError(
            f"unknown routing policy {routing_policy!r}; "
            f"use one of {ROUTING_SCENARIO_POLICIES}"
        )
    knobs: Dict[str, object] = {
        "network_mode": "flow",
        "oversubscription": float(oversubscription),
    }
    if routing_policy != "single":
        # The default policy stays knob-free so the single variant keeps the
        # configuration hash of a plain flow-mode incast run.
        knobs["routing_policy"] = routing_policy
    return Scenario(
        workload=small_test_workload(pp=1, dp=4, tp=4),
        cluster=mini_fat_tree_cluster(num_nodes=4),
        backend="fattree",
        knobs=knobs,
        num_iterations=num_iterations,
        name=f"adaptive-routing-{routing_policy}",
    )


def adaptive_routing_grid(
    policies: Sequence[str] = ROUTING_SCENARIO_POLICIES,
    oversubscription: float = 4.0,
    num_iterations: int = 2,
) -> List[Scenario]:
    """The full policy sweep, ready for ``ExperimentRunner.run_many``."""
    return [
        adaptive_routing_scenario(
            routing_policy=policy,
            oversubscription=oversubscription,
            num_iterations=num_iterations,
        )
        for policy in policies
    ]


def reactive_vs_profile_scenario(
    mode: str = "profile",
    num_iterations: int = 6,
    reconfiguration_delay: float = 1e-3,
) -> Scenario:
    """The circuit-thrash workload under one provisioning mode.

    Same alternating DP/EP axes as :func:`circuit_thrash_scenario` — every
    phase change genuinely needs a different crossbar, so whoever predicts
    the next axis earliest hides the most switching delay:

    * ``"profile"`` — the paper's design: learn the phase sequence in a
      dedicated profiling iteration, then provision speculatively from it;
    * ``"none"`` — never speculate: every phase change pays its switching
      delay on the critical path (the floor the others must beat);
    * ``"reactive"`` — no profiling iteration: the telemetry loop learns the
      phase structure online from the completion stream and only starts
      speculating once blocking/hotspot evidence has accumulated (see
      :class:`~repro.core.controller.ReactiveReconfigurator`).

    Six iterations give the reactive controller its learning runway (it
    speculates from iteration 1–2 on) while keeping the run test-sized.  The
    test suite asserts reactive lands strictly under ``"none"`` and within a
    bounded factor of ``"profile"``.
    """
    if mode not in REACTIVE_SCENARIO_MODES:
        raise ConfigurationError(
            f"unknown provisioning mode {mode!r}; "
            f"use one of {REACTIVE_SCENARIO_MODES}"
        )
    return Scenario(
        workload=tiny_moe_workload(),
        cluster=circuit_thrash_cluster(),
        backend="photonic",
        knobs={
            "network_mode": "flow",
            "reconfiguration_delay": float(reconfiguration_delay),
            "provisioning": mode,
        },
        num_iterations=num_iterations,
        name=f"reactive-vs-profile-{mode}",
    )


def reactive_vs_profile_grid(
    modes: Sequence[str] = REACTIVE_SCENARIO_MODES,
    num_iterations: int = 6,
    reconfiguration_delay: float = 1e-3,
) -> List[Scenario]:
    """All three provisioning modes, ready for ``ExperimentRunner.run_many``."""
    return [
        reactive_vs_profile_scenario(
            mode=mode,
            num_iterations=num_iterations,
            reconfiguration_delay=reconfiguration_delay,
        )
        for mode in modes
    ]


# --------------------------------------------------------------------------- #
# Large-scale scenario family (1k / 4k / 10k endpoints)
# --------------------------------------------------------------------------- #

#: Endpoint counts of the published scale family.
SCALE_ENDPOINTS = (1_000, 4_000, 10_000)

#: Backends the scale family targets (all run both network modes).
SCALE_BACKENDS = ("fattree", "railopt", "photonic")

#: Expert-parallel width of the scale workload: EP groups span 10 consecutive
#: scale-up domains (the AllToAll's ring forwarding stays short), DP groups
#: span the remaining node dimension and carry the fabric-scale rings.
_SCALE_EP = 10

#: GPUs per scale-up domain in the scale family (Perlmutter-style nodes).
_SCALE_GPUS_PER_NODE = 4

#: A synthetic high-radix OCS for cluster-scale photonic rails: Table 3's
#: real products top out at radix 1008, which caps a 2-port-NIC rail fabric
#: at 504 scale-up domains; the scale family models the paper's hypergrowth
#: extrapolation where each rail OCS (or OCS group) offers enough ports for
#: thousands of domains at SiP-class switching speed.
SCALE_OCS = OCSTechnology(
    name="Scale-SiP",
    vendor="synthetic",
    reconfiguration_time=7e-6,
    radix=8192,
)

#: A compact MoE transformer whose FSDP and EP traffic saturates the rails
#: without inflating the DAG: two layers, 10 experts (matching the EP width).
SCALE_MOE_MODEL = ModelConfig(
    name="Scale-MoE",
    num_layers=2,
    hidden_size=2048,
    ffn_hidden_size=8192,
    num_attention_heads=16,
    num_kv_heads=16,
    vocab_size=32_000,
    seq_length=2048,
    num_experts=_SCALE_EP,
    moe_top_k=2,
)


def scale_cluster(num_endpoints: int) -> ClusterSpec:
    """A Perlmutter-style cluster with ``num_endpoints`` GPUs.

    2-port NICs let the photonic planner build rings over more than two
    scale-up domains (constraint C1/C3), and the synthetic high-radix
    :data:`SCALE_OCS` lets one rail crossbar span every domain.
    """
    _check_scale_endpoints(num_endpoints)
    return replace(
        perlmutter_testbed(num_nodes=num_endpoints // _SCALE_GPUS_PER_NODE),
        nic_ports_per_gpu=2,
        ocs=SCALE_OCS,
    )


def scale_workload(num_endpoints: int) -> WorkloadConfig:
    """The multi-collective steady-state workload of the scale family.

    TP=4 keeps tensor parallelism on NVLink; EP=10 spans consecutive domains
    with AllToAll dispatch; the DP axis (FSDP) covers the remaining node
    dimension, so every rail carries ``dp`` concurrent EP exchanges and
    ``ep`` concurrent FSDP rings in steady state.  One micro-batch per
    iteration and stage-aggregated FSDP keep the DAG compact (a few thousand
    operations) while the expanded flow count grows with the fabric — which
    is exactly the regime the flow-simulator scaling work targets.
    """
    _check_scale_endpoints(num_endpoints)
    num_nodes = num_endpoints // _SCALE_GPUS_PER_NODE
    dp = num_nodes // _SCALE_EP
    parallelism = ParallelismConfig(
        tp=_SCALE_GPUS_PER_NODE, dp=dp, ep=_SCALE_EP, use_fsdp=True
    )
    training = TrainingConfig(
        global_batch_size=dp * 2,
        micro_batch_size=2,
        # Scalar-payload sync AllReduces expand into group-size flow rings;
        # at 10k endpoints they would dominate the flow count while carrying
        # bytes that round to nothing, so the scale family omits them.
        optimizer_sync_collectives=0,
    )
    return WorkloadConfig(
        model=SCALE_MOE_MODEL, parallelism=parallelism, training=training
    )


def _check_scale_endpoints(num_endpoints: int) -> None:
    per_block = _SCALE_GPUS_PER_NODE * _SCALE_EP
    if num_endpoints <= 0 or num_endpoints % per_block != 0:
        raise ConfigurationError(
            f"scale scenarios need a positive multiple of {per_block} "
            f"endpoints (tp={_SCALE_GPUS_PER_NODE} x ep={_SCALE_EP} x dp), "
            f"got {num_endpoints}"
        )


def scale_scenario(
    num_endpoints: int = 1_000,
    backend: str = "fattree",
    network_mode: str = "flow",
    num_iterations: int = 2,
    allocator_epsilon: float = 0.0,
    coarsen_quantum: float = 0.0,
) -> Scenario:
    """One scale-family point: ``num_endpoints`` GPUs on ``backend``.

    Defaults to flow mode — the whole point of the family is exercising the
    flow simulator at fabric scale — but ``network_mode="analytic"`` gives
    the alpha-beta reference for the same configuration.
    ``allocator_epsilon``/``coarsen_quantum`` enable the flow simulator's
    ε-approximate allocation and event coarsening (flow mode only); the
    knobs — and the ``-approx`` name suffix — appear only when nonzero, so
    exact scenarios keep their historical configuration hashes.
    """
    knobs: Dict[str, object] = {"network_mode": network_mode}
    name = f"scale-{backend}-{num_endpoints}"
    if allocator_epsilon or coarsen_quantum:
        knobs["allocator_epsilon"] = float(allocator_epsilon)
        knobs["coarsen_quantum"] = float(coarsen_quantum)
        name += "-approx"
    return Scenario(
        workload=scale_workload(num_endpoints),
        cluster=scale_cluster(num_endpoints),
        backend=backend,
        knobs=knobs,
        num_iterations=num_iterations,
        # Stage-aggregated FSDP: per-layer chains add DAG operations without
        # changing steady-state traffic at this layer count.
        dag_options=DagBuildOptions(per_layer_fsdp=False),
        name=name,
    )


def scale_scenario_grid(
    endpoints: Sequence[int] = SCALE_ENDPOINTS,
    backends: Sequence[str] = SCALE_BACKENDS,
    network_mode: str = "flow",
    num_iterations: int = 2,
) -> List[Scenario]:
    """The full scale family, ready for ``ExperimentRunner.run_many``."""
    return [
        scale_scenario(
            num_endpoints=count,
            backend=backend,
            network_mode=network_mode,
            num_iterations=num_iterations,
        )
        for count in endpoints
        for backend in backends
    ]


# --------------------------------------------------------------------------- #
# Degraded-fabric scenario family (fault injection)
# --------------------------------------------------------------------------- #

#: Health conditions of the degraded-fabric family, ordered by severity.
DEGRADED_CONDITIONS = ("healthy", "degraded", "failed")

#: Backends the degraded-fabric family targets.
DEGRADED_BACKENDS = ("fattree", "railopt", "photonic")

#: Remaining capacity fraction of the "degraded" condition (degraded by 10%).
DEGRADED_FRACTION = 0.9


def degraded_fabric_cluster(num_nodes: int = 4) -> ClusterSpec:
    """The family's cluster: Perlmutter nodes, 2-port NICs, tiny switches.

    The :data:`MINI_SWITCH` keeps the electrical fabrics multi-tier (so the
    degraded condition touches real shared uplinks) and the 2-port NICs let
    the photonic planner build rings over every scale-up domain (constraint
    C1/C3).  Scales from the 4-node tier-1 configuration up to the
    1k-endpoint smoke run (250 nodes; the default piezo OCS radix of 576
    caps the family at 288 nodes).
    """
    return replace(
        perlmutter_testbed(num_nodes=num_nodes),
        electrical_switch=MINI_SWITCH,
        nic_ports_per_gpu=2,
    )


def degraded_fabric_fault_plan(
    backend: str, condition: str, time: float = 0.0
) -> Optional[FaultPlan]:
    """The fault plan realizing ``condition`` on ``backend``.

    * ``healthy`` — no plan (a plan with zero events is bit-for-bit
      identical, which the test suite asserts separately);
    * ``degraded`` — every fabric link degraded by 10%: the whole
      electrical tier on the packet fabrics, the host links (the optics the
      paper's degradation regime is about) on the photonic fabric;
    * ``failed`` — GPU 0's scale-out NIC attachment down (both host
      links).  Its flows detour over the scale-up interconnect through a
      domain-mate's NIC, sharing that GPU's rail with its own ring — a
      strictly heavier perturbation than the uniform 10% degrade.  A failed
      *parallel* fabric link would be absorbed for free by deterministic
      single-path routing (the twin uplink takes over at equal capacity),
      which is why the family kills a component whose loss genuinely
      shrinks the bottleneck cut.

    ``time`` is the instant the fault strikes.  The default of 0.0 keeps the
    family's historical configuration hashes; a mid-run time makes the
    conditions share a healthy prefix — the shape
    :func:`degraded_fabric_fork_grid` exploits for fork-sweeps.
    """
    if condition not in DEGRADED_CONDITIONS:
        raise ConfigurationError(
            f"unknown condition {condition!r}; use one of {DEGRADED_CONDITIONS}"
        )
    if backend not in DEGRADED_BACKENDS:
        raise ConfigurationError(
            f"the degraded-fabric family targets {DEGRADED_BACKENDS}, "
            f"got {backend!r}"
        )
    if condition == "healthy":
        return None
    if condition == "degraded":
        link_kind = "host" if backend == "photonic" else "electrical"
        return FaultPlan(
            events=(
                FaultEvent(
                    time=time,
                    kind=FaultKind.LINK_DEGRADE,
                    link_kind=link_kind,
                    fraction=DEGRADED_FRACTION,
                ),
            )
        )
    return FaultPlan(
        events=(
            FaultEvent(
                time=time,
                kind=FaultKind.LINK_FAIL,
                src="gpu0",
                dst="gpu0.nic*",
            ),
        )
    )


def degraded_fabric_scenario(
    backend: str = "fattree",
    condition: str = "healthy",
    num_nodes: int = 4,
    network_mode: str = "flow",
    num_iterations: int = 2,
    fault_time: float = 0.0,
) -> Scenario:
    """One degraded-fabric point: concurrent per-rail DP rings under faults.

    TP=4 keeps tensor parallelism on NVLink and the DP axis spans every
    node, so each rail carries one fabric-wide FSDP ring and all four run
    concurrently — the regime where losing capacity hurts.  The family is
    asserted (as tier-1 tests) to order ``healthy < degraded < failed`` in
    completion time on all three fabrics.  ``fault_time`` moves the fault
    from run start (the default) to a mid-run instant.
    """
    plan = degraded_fabric_fault_plan(backend, condition, time=fault_time)
    knobs: dict = {"network_mode": network_mode}
    if plan is not None:
        knobs["faults"] = plan
    return Scenario(
        workload=small_test_workload(pp=1, dp=num_nodes, tp=4),
        cluster=degraded_fabric_cluster(num_nodes),
        backend=backend,
        knobs=knobs,
        num_iterations=num_iterations,
        name=f"degraded-{backend}-{condition}",
    )


def degraded_fabric_grid(
    backends: Sequence[str] = DEGRADED_BACKENDS,
    conditions: Sequence[str] = DEGRADED_CONDITIONS,
    num_nodes: int = 4,
    network_mode: str = "flow",
    num_iterations: int = 2,
) -> List[Scenario]:
    """The full family, ready for ``ExperimentRunner.run_many``."""
    return [
        degraded_fabric_scenario(
            backend=backend,
            condition=condition,
            num_nodes=num_nodes,
            network_mode=network_mode,
            num_iterations=num_iterations,
        )
        for backend in backends
        for condition in conditions
    ]


def degraded_fabric_fork_grid(
    backend: str = "fattree",
    fault_time: float = 1.0,
    conditions: Sequence[str] = DEGRADED_CONDITIONS,
    num_nodes: int = 4,
    network_mode: str = "flow",
    num_iterations: int = 2,
) -> List[Scenario]:
    """One backend's conditions with the faults striking at ``fault_time``.

    These points agree on everything except their fault schedules, and the
    schedules agree (vacuously — the common prefix is empty) until
    ``fault_time``: exactly the shape ``ExperimentRunner.run_many(...,
    fork=True)`` simulates once up to the divergence and branches.  The
    fork-sweep benchmark measures this grid forked vs straight-through.
    """
    return [
        degraded_fabric_scenario(
            backend=backend,
            condition=condition,
            num_nodes=num_nodes,
            network_mode=network_mode,
            num_iterations=num_iterations,
            fault_time=fault_time,
        )
        for condition in conditions
    ]


#: Severity sweep of :func:`degraded_fabric_severity_grid`: a healthy
#: baseline plus five uniform degradation levels, mild to severe.
DEGRADED_SEVERITIES = (None, 0.95, 0.9, 0.85, 0.8, 0.75)


def degraded_fabric_severity_grid(
    backend: str = "fattree",
    fractions: Sequence[Optional[float]] = DEGRADED_SEVERITIES,
    fault_time: float = 1.0,
    num_nodes: int = 4,
    network_mode: str = "flow",
    num_iterations: int = 2,
) -> List[Scenario]:
    """Sweep degradation severity on one backend, diverging at ``fault_time``.

    Every point shares the scenario up to ``fault_time``, when its fabric
    links degrade to a different remaining-capacity ``fraction`` (``None``
    is the healthy baseline — no fault at all).  A wider grid than
    :func:`degraded_fabric_fork_grid`'s three conditions, so the shared
    prefix is amortized over more branches; this is the fork-sweep
    benchmark's grid.
    """
    link_kind = "host" if backend == "photonic" else "electrical"
    scenarios = []
    for fraction in fractions:
        knobs: dict = {"network_mode": network_mode}
        label = "healthy"
        if fraction is not None:
            knobs["faults"] = FaultPlan(
                events=(
                    FaultEvent(
                        time=fault_time,
                        kind=FaultKind.LINK_DEGRADE,
                        link_kind=link_kind,
                        fraction=fraction,
                    ),
                )
            )
            label = f"x{fraction:g}"
        scenarios.append(
            Scenario(
                workload=small_test_workload(pp=1, dp=num_nodes, tp=4),
                cluster=degraded_fabric_cluster(num_nodes),
                backend=backend,
                knobs=knobs,
                num_iterations=num_iterations,
                name=f"degraded-{backend}-{label}",
            )
        )
    return scenarios


@dataclass(frozen=True)
class NetworkModeComparison:
    """Steady-state iteration times of one scenario under both network modes."""

    scenario: str
    analytic: ScenarioResult
    flow: ScenarioResult

    @property
    def analytic_time(self) -> float:
        """Steady-state iteration time under the analytic mode, seconds."""
        return self.analytic.metrics["steady_iteration_time"]

    @property
    def flow_time(self) -> float:
        """Steady-state iteration time under the flow-level mode, seconds."""
        return self.flow.metrics["steady_iteration_time"]

    @property
    def slowdown(self) -> float:
        """Flow-mode slowdown relative to analytic (1.0 = modes agree)."""
        return self.flow_time / self.analytic_time


def compare_network_modes(
    scenario: Scenario, runner: Optional[ExperimentRunner] = None
) -> NetworkModeComparison:
    """Run ``scenario`` under both network modes and report the slowdown."""
    runner = runner or ExperimentRunner(executor="serial")
    analytic = runner.run(scenario.with_knobs(network_mode="analytic"))
    flow = runner.run(scenario.with_knobs(network_mode="flow"))
    return NetworkModeComparison(scenario=scenario.name, analytic=analytic, flow=flow)
