"""Bundled scenarios contrasting the analytic and flow-level network modes.

Two reference scenarios anchor the flow-level network mode:

* :func:`contention_free_scenario` — a DP-only workload on fully-connected
  electrical rails.  Every scale-out collective owns its links, so the flow
  expansion must reproduce the analytic alpha–beta prediction (the modes are
  asserted equal within 2% in the test suite).
* :func:`shared_uplink_incast_scenario` — the divergence demonstration: four
  per-rail DP rings run concurrently over a small-radix, oversubscribed
  fat-tree whose edge uplinks their routes share.  The analytic model prices
  each ring as if it owned the uplink; the flow-level mode max–min fair
  shares it, so flow mode is strictly slower — contention the analytic mode
  cannot see.

:func:`compare_network_modes` runs any scenario under both modes and reports
the slowdown, which is how the ``repro-sim`` CLI and the tests consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..parallelism.workloads import small_test_workload
from ..topology.devices import ClusterSpec, ElectricalSwitchSpec, perlmutter_testbed
from ..units import GBPS
from .runner import ExperimentRunner, Scenario, ScenarioResult

#: A deliberately tiny packet switch: with radix 4 every edge switch hosts
#: only two NIC ports, so cross-node routes must climb into the shared
#: aggregation/core tiers — the preconditions for link contention.
MINI_SWITCH = ElectricalSwitchSpec(
    name="mini-4x400G",
    radix=4,
    port_bandwidth=400 * GBPS,
    cost_dollars=1_000.0,
    power_watts=100.0,
)


def mini_fat_tree_cluster(num_nodes: int = 4) -> ClusterSpec:
    """A Perlmutter-style testbed whose fat-tree uses the tiny radix-4 switch."""
    return replace(perlmutter_testbed(num_nodes=num_nodes), electrical_switch=MINI_SWITCH)


def contention_free_scenario(num_iterations: int = 2) -> Scenario:
    """DP-only workload on fully-connected rails: no shared links anywhere.

    TP=4 keeps tensor parallelism on NVLink; the single DP axis puts one rank
    per node on each rail, and the fully-connected electrical fabric gives
    every rail pair a dedicated route.
    """
    return Scenario(
        workload=small_test_workload(pp=1, dp=2, tp=4),
        cluster=perlmutter_testbed(num_nodes=2),
        backend="electrical",
        num_iterations=num_iterations,
        name="contention-free",
    )


def shared_uplink_incast_scenario(
    oversubscription: float = 4.0, num_iterations: int = 2
) -> Scenario:
    """Concurrent per-rail DP rings sharing oversubscribed fat-tree uplinks.

    With TP=4 and DP=4 on four nodes, each rail carries one DP ring and all
    four rings run concurrently (they serve different tensor shards of the
    same layer).  On the mini fat-tree their cross-node hops funnel through
    the same edge-to-aggregation uplinks, which ``oversubscription`` thins
    further — a shared-link incast the analytic mode prices away.
    """
    return Scenario(
        workload=small_test_workload(pp=1, dp=4, tp=4),
        cluster=mini_fat_tree_cluster(num_nodes=4),
        backend="fattree",
        knobs={"oversubscription": float(oversubscription)},
        num_iterations=num_iterations,
        name="shared-uplink-incast",
    )


@dataclass(frozen=True)
class NetworkModeComparison:
    """Steady-state iteration times of one scenario under both network modes."""

    scenario: str
    analytic: ScenarioResult
    flow: ScenarioResult

    @property
    def analytic_time(self) -> float:
        """Steady-state iteration time under the analytic mode, seconds."""
        return self.analytic.metrics["steady_iteration_time"]

    @property
    def flow_time(self) -> float:
        """Steady-state iteration time under the flow-level mode, seconds."""
        return self.flow.metrics["steady_iteration_time"]

    @property
    def slowdown(self) -> float:
        """Flow-mode slowdown relative to analytic (1.0 = modes agree)."""
        return self.flow_time / self.analytic_time


def compare_network_modes(
    scenario: Scenario, runner: Optional[ExperimentRunner] = None
) -> NetworkModeComparison:
    """Run ``scenario`` under both network modes and report the slowdown."""
    runner = runner or ExperimentRunner(executor="serial")
    analytic = runner.run(scenario.with_knobs(network_mode="analytic"))
    flow = runner.run(scenario.with_knobs(network_mode="flow"))
    return NetworkModeComparison(scenario=scenario.name, analytic=analytic, flow=flow)
