"""Declarative scenarios and the parallel, memoized experiment runner.

A :class:`Scenario` names everything one end-to-end simulation needs —
workload × cluster × backend × knobs × iteration count — as plain (picklable)
data.  :func:`run_scenario` executes one scenario: it builds the iteration
DAG, instantiates the backend's network model, drives the DAG executor, and
condenses the trace into a small :class:`ScenarioResult`.

:class:`ExperimentRunner` adds the two things sweeps need:

* **memoization** — results are cached under a SHA-256 hash of the scenario's
  canonical configuration, so repeated points (across sweeps or within one
  grid) are simulated once;
* **parallelism** — :meth:`ExperimentRunner.sweep` expands a parameter grid
  into scenarios and fans cache misses out over ``concurrent.futures``
  workers (processes by default — the pure-Python simulation is CPU-bound,
  so threads would serialize on the GIL; threads or serial on request).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ScenarioError
from ..parallelism.config import WorkloadConfig
from ..parallelism.dag import DagBuildOptions, build_iteration_dag
from ..parallelism.groups import GroupRegistry
from ..parallelism.trace import TrainingTrace
from ..simulator.executor import DAGExecutor, SimulationConfig
from ..simulator.metrics import iteration_metrics
from ..topology.devices import ClusterSpec
from .backends import create_network


@dataclass(frozen=True)
class Scenario:
    """One end-to-end simulation: workload × cluster × backend × knobs."""

    workload: WorkloadConfig
    cluster: ClusterSpec
    backend: str = "electrical"
    #: Backend-specific keyword knobs (validated by the backend at run time).
    knobs: Mapping[str, object] = field(default_factory=dict)
    num_iterations: int = 2
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    dag_options: DagBuildOptions = field(default_factory=DagBuildOptions)
    name: str = "scenario"

    def __post_init__(self) -> None:
        if self.num_iterations <= 0:
            raise ConfigurationError("num_iterations must be positive")
        if self.workload.world_size > self.cluster.num_gpus:
            raise ConfigurationError(
                f"workload needs {self.workload.world_size} GPUs, cluster has "
                f"{self.cluster.num_gpus}"
            )

    def with_knobs(self, **knobs: object) -> "Scenario":
        """Return a copy with ``knobs`` merged over the existing ones."""
        merged = dict(self.knobs)
        merged.update(knobs)
        return replace(self, knobs=merged)


def scenario_hash(scenario: Scenario) -> str:
    """Stable configuration hash of a scenario (memoization cache key).

    The hash covers everything that influences the simulation result —
    workload, cluster, backend, knobs, iteration count, simulator and DAG
    options — and deliberately ignores ``name``, which is presentation only.
    """
    payload = {
        "workload": asdict(scenario.workload),
        "cluster": asdict(scenario.cluster),
        "backend": scenario.backend,
        "knobs": {key: repr(value) for key, value in scenario.knobs.items()},
        "num_iterations": scenario.num_iterations,
        "simulation": asdict(scenario.simulation),
        "dag_options": asdict(scenario.dag_options),
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioResult:
    """Condensed, picklable outcome of one scenario run."""

    name: str
    backend: str
    config_hash: str
    num_iterations: int
    #: The scenario's backend knobs (non-primitive values stringified).
    knobs: Mapping[str, object]
    #: Makespan of every simulated iteration, in order.
    iteration_times: Tuple[float, ...]
    #: Reconfiguration count of every iteration.
    reconfigurations: Tuple[int, ...]
    #: Blocking (critical-path) reconfiguration time of every iteration.
    reconfig_blocking: Tuple[float, ...]
    #: Scalar summary metrics (see :func:`run_scenario` for the keys).
    metrics: Mapping[str, float]
    #: ``pid:thread`` of the worker that simulated this scenario.
    worker: str
    #: Wall-clock seconds the simulation took.
    wall_time: float

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "backend": self.backend,
            "config_hash": self.config_hash,
            "num_iterations": self.num_iterations,
            "knobs": dict(self.knobs),
            "iteration_times": list(self.iteration_times),
            "reconfigurations": list(self.reconfigurations),
            "reconfig_blocking": list(self.reconfig_blocking),
            "metrics": dict(self.metrics),
            "worker": self.worker,
            "wall_time": self.wall_time,
        }

    def to_row(self) -> Dict[str, object]:
        """Flat single-level mapping for CSV output."""
        row: Dict[str, object] = {
            "name": self.name,
            "backend": self.backend,
            "config_hash": self.config_hash,
            "num_iterations": self.num_iterations,
            "wall_time": self.wall_time,
        }
        row.update(self.knobs)
        row.update(self.metrics)
        return row


def _steady(values: Sequence[float]) -> Sequence[float]:
    """Steady-state iterations: drop the profiling iteration when possible."""
    return values[1:] if len(values) > 1 else values


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Simulate one scenario end to end and summarize its trace."""
    started = time.perf_counter()
    dag = build_iteration_dag(scenario.workload, scenario.cluster, scenario.dag_options)
    registry = GroupRegistry(dag.mesh)
    network = create_network(
        scenario.backend,
        scenario.cluster,
        dag.mesh,
        registry=registry,
        **dict(scenario.knobs),
    )
    executor = DAGExecutor(
        dag, scenario.cluster, network, config=scenario.simulation
    )
    trace: TrainingTrace = executor.run_training(scenario.num_iterations)

    per_iteration = [iteration_metrics(t) for t in trace.iterations]
    iteration_times = tuple(m.iteration_time for m in per_iteration)
    reconfigurations = tuple(m.num_reconfigurations for m in per_iteration)
    blocking = tuple(m.exposed_reconfig_time for m in per_iteration)
    steady_metrics = _steady(per_iteration)

    def _mean(values: Sequence[float]) -> float:
        return sum(values) / len(values)

    metrics: Dict[str, float] = {
        "mean_iteration_time": _mean(iteration_times),
        "steady_iteration_time": _mean([m.iteration_time for m in steady_metrics]),
        "reconfigurations_per_iteration": _mean(
            [m.num_reconfigurations for m in steady_metrics]
        ),
        "exposed_reconfig_time": _mean(
            [m.exposed_reconfig_time for m in steady_metrics]
        ),
        "compute_time": _mean([m.compute_time for m in steady_metrics]),
        "scaleout_comm_time": _mean([m.scaleout_comm_time for m in steady_metrics]),
        "scaleup_comm_time": _mean([m.scaleup_comm_time for m in steady_metrics]),
        "scaleout_bytes": _mean([m.scaleout_bytes for m in steady_metrics]),
        "total_time": trace.iterations[-1].end,
    }
    flow_stats = getattr(network, "flow_stats", None)
    if flow_stats is not None:
        # Flow-mode allocator counters (whole-run totals): how many solver
        # passes ran, over how many components/flows, and how many were
        # ε-skipped — the observability hook for the approximation knobs.
        for key, value in flow_stats.as_dict().items():
            metrics[key] = float(value)
    return ScenarioResult(
        name=scenario.name,
        backend=scenario.backend,
        config_hash=scenario_hash(scenario),
        num_iterations=scenario.num_iterations,
        knobs={
            key: value
            if isinstance(value, (int, float, bool, str, type(None)))
            else repr(value)
            for key, value in scenario.knobs.items()
        },
        iteration_times=iteration_times,
        reconfigurations=reconfigurations,
        reconfig_blocking=blocking,
        metrics=metrics,
        worker=f"{os.getpid()}:{threading.current_thread().name}",
        wall_time=time.perf_counter() - started,
    )


def _execute_scenario(scenario: Scenario) -> ScenarioResult:
    # Thin top-level shim so process pools can pickle the callable and tests
    # can monkeypatch ``run_scenario``.
    try:
        return run_scenario(scenario)
    except ScenarioError:
        raise
    except Exception as exc:
        raise ScenarioError(
            f"scenario {scenario.name!r} (backend {scenario.backend!r}, "
            f"knobs {dict(scenario.knobs)!r}) failed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


_SCENARIO_FIELDS = frozenset(
    f.name for f in fields(Scenario) if f.name not in ("knobs", "workload", "cluster")
)


def expand_grid(
    base: Scenario, grid: Mapping[str, Sequence[object]]
) -> List[Scenario]:
    """Expand a parameter grid into scenarios (first key varies slowest).

    Grid keys naming a :class:`Scenario` field (``backend``,
    ``num_iterations``, ...) override that field; every other key becomes a
    backend knob merged over ``base.knobs``.
    """
    if not grid:
        return [base]
    keys = list(grid)
    scenarios: List[Scenario] = []
    for values in itertools.product(*(grid[key] for key in keys)):
        point = dict(zip(keys, values))
        field_overrides = {
            key: value for key, value in point.items() if key in _SCENARIO_FIELDS
        }
        knob_overrides = {
            key: value for key, value in point.items() if key not in _SCENARIO_FIELDS
        }
        label = ",".join(f"{key}={value}" for key, value in point.items())
        scenario = replace(base, **field_overrides) if field_overrides else base
        if knob_overrides:
            scenario = scenario.with_knobs(**knob_overrides)
        scenarios.append(replace(scenario, name=f"{base.name}[{label}]"))
    return scenarios


class ExperimentRunner:
    """Runs scenarios with memoization and ``concurrent.futures`` fan-out.

    Parameters
    ----------
    max_workers:
        Worker count for parallel sweeps (default: CPU count).
    executor:
        ``"process"`` (default — the simulation is CPU-bound pure Python, so
        only processes escape the GIL), ``"thread"``, or ``"serial"``.  The
        simulation is deterministic, so all three produce identical results.
    memoize:
        Cache results by configuration hash (default True).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        executor: str = "process",
        memoize: bool = True,
    ) -> None:
        if executor not in ("thread", "process", "serial"):
            raise ConfigurationError(
                f"unknown executor {executor!r}; use 'thread', 'process', or 'serial'"
            )
        if max_workers is not None and max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        self.max_workers = max_workers or os.cpu_count() or 2
        self.executor = executor
        self.memoize = memoize
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache: Dict[str, ScenarioResult] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(self, scenario: Scenario) -> ScenarioResult:
        """Run (or recall) a single scenario."""
        return self.run_many([scenario])[0]

    def run_many(self, scenarios: Sequence[Scenario]) -> List[ScenarioResult]:
        """Run a batch of scenarios, preserving input order.

        With memoization on, cache hits — including duplicate configurations
        *within* the batch — are served without simulating and only the
        unique remainder is fanned out over the configured workers.  With
        ``memoize=False`` every scenario is simulated, duplicates included.
        """
        keys = [scenario_hash(scenario) for scenario in scenarios]
        results: List[Optional[ScenarioResult]] = [None] * len(scenarios)
        to_run: List[int] = []
        first_occurrence: Dict[str, int] = {}
        for index, key in enumerate(keys):
            if not self.memoize:
                to_run.append(index)
                continue
            if key in self._cache:
                self.cache_hits += 1
                results[index] = self._cache[key]
            elif key in first_occurrence:
                self.cache_hits += 1  # duplicate point inside this batch
            else:
                first_occurrence[key] = index
                to_run.append(index)

        if to_run:
            self.cache_misses += len(to_run)
            fresh = self._execute([scenarios[index] for index in to_run])
            for index, result in zip(to_run, fresh):
                results[index] = result
                if self.memoize:
                    self._cache[keys[index]] = result
            # Serve within-batch duplicates from their first occurrence.
            for index, key in enumerate(keys):
                if results[index] is None:
                    results[index] = results[first_occurrence[key]]
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def sweep(
        self, base: Scenario, grid: Mapping[str, Sequence[object]]
    ) -> List[ScenarioResult]:
        """Expand ``grid`` over ``base`` and run every point (see :func:`expand_grid`)."""
        return self.run_many(expand_grid(base, grid))

    def clear_cache(self) -> None:
        """Drop all memoized results and reset the hit/miss counters."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def cache_size(self) -> int:
        """Number of memoized results."""
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _execute(self, scenarios: List[Scenario]) -> List[ScenarioResult]:
        if self.executor == "serial" or len(scenarios) == 1:
            return [_execute_scenario(scenario) for scenario in scenarios]
        workers = min(self.max_workers, len(scenarios))
        pool: Executor
        if self.executor == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(max_workers=workers)
        with pool:
            return list(pool.map(_execute_scenario, scenarios))
