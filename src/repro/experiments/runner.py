"""Declarative scenarios and the parallel, memoized experiment runner.

A :class:`Scenario` names everything one end-to-end simulation needs —
workload × cluster × backend × knobs × iteration count — as plain (picklable)
data.  :func:`run_scenario` executes one scenario: it builds the iteration
DAG, instantiates the backend's network model, drives the DAG executor, and
condenses the trace into a small :class:`ScenarioResult`.

:class:`ExperimentRunner` adds the two things sweeps need:

* **memoization** — results are cached under a SHA-256 hash of the scenario's
  canonical configuration, so repeated points (across sweeps or within one
  grid) are simulated once;
* **parallelism** — :meth:`ExperimentRunner.sweep` expands a parameter grid
  into scenarios and fans cache misses out over ``concurrent.futures``
  workers (processes by default — the pure-Python simulation is CPU-bound,
  so threads would serialize on the GIL; threads or serial on request);
* **delta-sweeps** — with ``fork=True``, grid points that differ only in
  their fault schedules (and iteration counts) share one
  :class:`~repro.experiments.session.SimulationSession` up to the instant
  their schedules diverge, then branch via :meth:`SimulationSession.fork`
  instead of re-simulating the common prefix per point.  Results are
  bit-for-bit identical to independent runs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ScenarioError
from ..parallelism.config import WorkloadConfig
from ..parallelism.dag import DagBuildOptions
from ..simulator.executor import SimulationConfig
from ..simulator.faults import FaultPlan, as_fault_plan
from ..topology.devices import ClusterSpec


@dataclass(frozen=True)
class Scenario:
    """One end-to-end simulation: workload × cluster × backend × knobs."""

    workload: WorkloadConfig
    cluster: ClusterSpec
    backend: str = "electrical"
    #: Backend-specific keyword knobs (validated by the backend at run time).
    knobs: Mapping[str, object] = field(default_factory=dict)
    num_iterations: int = 2
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    dag_options: DagBuildOptions = field(default_factory=DagBuildOptions)
    name: str = "scenario"

    def __post_init__(self) -> None:
        if self.num_iterations <= 0:
            raise ConfigurationError("num_iterations must be positive")
        if self.workload.world_size > self.cluster.num_gpus:
            raise ConfigurationError(
                f"workload needs {self.workload.world_size} GPUs, cluster has "
                f"{self.cluster.num_gpus}"
            )

    def with_knobs(self, **knobs: object) -> "Scenario":
        """Return a copy with ``knobs`` merged over the existing ones."""
        merged = dict(self.knobs)
        merged.update(knobs)
        return replace(self, knobs=merged)


def scenario_hash(scenario: Scenario) -> str:
    """Stable configuration hash of a scenario (memoization cache key).

    The hash covers everything that influences the simulation result —
    workload, cluster, backend, knobs, iteration count, simulator and DAG
    options — and deliberately ignores ``name``, which is presentation only.
    """
    payload = {
        "workload": asdict(scenario.workload),
        "cluster": asdict(scenario.cluster),
        "backend": scenario.backend,
        "knobs": {key: repr(value) for key, value in scenario.knobs.items()},
        "num_iterations": scenario.num_iterations,
        "simulation": asdict(scenario.simulation),
        "dag_options": asdict(scenario.dag_options),
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioResult:
    """Condensed, picklable outcome of one scenario run."""

    name: str
    backend: str
    config_hash: str
    num_iterations: int
    #: The scenario's backend knobs (non-primitive values stringified).
    knobs: Mapping[str, object]
    #: Makespan of every simulated iteration, in order.
    iteration_times: Tuple[float, ...]
    #: Reconfiguration count of every iteration.
    reconfigurations: Tuple[int, ...]
    #: Blocking (critical-path) reconfiguration time of every iteration.
    reconfig_blocking: Tuple[float, ...]
    #: Scalar summary metrics (see :func:`run_scenario` for the keys).
    metrics: Mapping[str, float]
    #: ``pid:thread`` of the worker that simulated this scenario.
    worker: str
    #: Wall-clock seconds the simulation took.
    wall_time: float

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "backend": self.backend,
            "config_hash": self.config_hash,
            "num_iterations": self.num_iterations,
            "knobs": dict(self.knobs),
            "iteration_times": list(self.iteration_times),
            "reconfigurations": list(self.reconfigurations),
            "reconfig_blocking": list(self.reconfig_blocking),
            "metrics": dict(self.metrics),
            "worker": self.worker,
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output.

        JSON round-trips finite floats exactly, so a result loaded from the
        persistent store is bit-identical to the freshly simulated one.
        """
        return cls(
            name=data["name"],
            backend=data["backend"],
            config_hash=data["config_hash"],
            num_iterations=int(data["num_iterations"]),
            knobs=dict(data["knobs"]),
            iteration_times=tuple(data["iteration_times"]),
            reconfigurations=tuple(data["reconfigurations"]),
            reconfig_blocking=tuple(data["reconfig_blocking"]),
            metrics=dict(data["metrics"]),
            worker=data["worker"],
            wall_time=data["wall_time"],
        )

    def to_row(self) -> Dict[str, object]:
        """Flat single-level mapping for CSV output."""
        row: Dict[str, object] = {
            "name": self.name,
            "backend": self.backend,
            "config_hash": self.config_hash,
            "num_iterations": self.num_iterations,
            "wall_time": self.wall_time,
        }
        row.update(self.knobs)
        row.update(self.metrics)
        return row


def _steady(values: Sequence[float]) -> Sequence[float]:
    """Steady-state iterations: drop the profiling iteration when possible."""
    return values[1:] if len(values) > 1 else values


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Simulate one scenario end to end and summarize its trace.

    Sugar for driving a :class:`~repro.experiments.session.SimulationSession`
    from start to finish; use the session directly for incremental runs,
    checkpoints, and forks.
    """
    # Imported lazily: the session module builds on Scenario/ScenarioResult
    # from this module.
    from .session import SimulationSession

    started = time.perf_counter()
    session = SimulationSession.start(scenario)
    session.run_to(scenario.num_iterations)
    return session.result(wall_time=time.perf_counter() - started)


def _execute_scenario(scenario: Scenario) -> ScenarioResult:
    # Thin top-level shim so process pools can pickle the callable and tests
    # can monkeypatch ``run_scenario``.
    try:
        return run_scenario(scenario)
    except ScenarioError:
        raise
    except Exception as exc:
        raise ScenarioError(
            f"scenario {scenario.name!r} (backend {scenario.backend!r}, "
            f"knobs {dict(scenario.knobs)!r}) failed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


_SCENARIO_FIELDS = frozenset(
    f.name for f in fields(Scenario) if f.name not in ("knobs", "workload", "cluster")
)


# --------------------------------------------------------------------------- #
# Fork-sweep helpers
# --------------------------------------------------------------------------- #


def _scenario_fault_plan(scenario: Scenario) -> FaultPlan:
    """The scenario's ``faults`` knob as a plan (empty when absent)."""
    value = scenario.knobs.get("faults")
    return FaultPlan() if value is None else as_fault_plan(value)


def _fork_group_key(scenario: Scenario, plan: FaultPlan) -> Tuple[str, str]:
    """Cache key grouping scenarios that may share a simulation prefix.

    Two scenarios can branch off one shared session exactly when they agree
    on everything except their fault schedule and how long they run — so the
    key is the configuration hash with the ``faults`` knob stripped and the
    iteration count normalized, plus the plan's link-failure policy (the
    policy flips flow-failure semantics the moment the *first* event is
    installed, so mixed-policy points never share a session).
    """
    knobs = {key: value for key, value in scenario.knobs.items() if key != "faults"}
    base = replace(scenario, knobs=knobs, num_iterations=1)
    return (scenario_hash(base), plan.on_link_fail)


def _shared_prefix(
    plans: Sequence[FaultPlan],
) -> Tuple[Tuple["FaultEvent", ...], float]:
    """The common time-sorted event prefix of ``plans`` and the divergence time.

    Returns ``(prefix, divergence)``: the longest leading run of identical
    events shared by every plan's time-sorted schedule, and the earliest
    time any plan's first post-prefix event fires (``inf`` when the plans
    are identical — the points then differ only in iteration count).  A
    shared session carrying exactly ``prefix`` is bit-for-bit equal to each
    member's own run up to ``divergence``.
    """
    ordered = [sorted(plan.events, key=lambda event: event.time) for plan in plans]
    prefix: List[object] = []
    for events in zip(*ordered):
        first = events[0]
        if any(event != first for event in events[1:]):
            break
        prefix.append(first)
    divergence = float("inf")
    for events in ordered:
        if len(events) > len(prefix):
            divergence = min(divergence, events[len(prefix)].time)
    return tuple(prefix), divergence


def expand_grid(
    base: Scenario, grid: Mapping[str, Sequence[object]]
) -> List[Scenario]:
    """Expand a parameter grid into scenarios (first key varies slowest).

    Grid keys naming a :class:`Scenario` field (``backend``,
    ``num_iterations``, ...) override that field; every other key becomes a
    backend knob merged over ``base.knobs``.
    """
    if not grid:
        return [base]
    keys = list(grid)
    scenarios: List[Scenario] = []
    for values in itertools.product(*(grid[key] for key in keys)):
        point = dict(zip(keys, values))
        field_overrides = {
            key: value for key, value in point.items() if key in _SCENARIO_FIELDS
        }
        knob_overrides = {
            key: value for key, value in point.items() if key not in _SCENARIO_FIELDS
        }
        label = ",".join(f"{key}={value}" for key, value in point.items())
        scenario = replace(base, **field_overrides) if field_overrides else base
        if knob_overrides:
            scenario = scenario.with_knobs(**knob_overrides)
        scenarios.append(replace(scenario, name=f"{base.name}[{label}]"))
    return scenarios


class ExperimentRunner:
    """Runs scenarios with memoization and ``concurrent.futures`` fan-out.

    Parameters
    ----------
    max_workers:
        Worker count for parallel sweeps (default: CPU count).
    executor:
        ``"process"`` (default — the simulation is CPU-bound pure Python, so
        only processes escape the GIL), ``"thread"``, or ``"serial"``.  The
        simulation is deterministic, so all three produce identical results.
    memoize:
        Cache results by configuration hash (default True).
    store:
        Optional persistent :class:`~repro.service.store.ResultStore`
        extending the in-memory memo onto disk: lookups fall through memory
        to the store (a hit also counts in :attr:`store_hits`), and every
        freshly simulated result is filed there — so repeated grid points
        are served instantly *across* processes and runs.  Only consulted
        when ``memoize`` is on.
    pool:
        Optional long-lived ``concurrent.futures`` executor to shard cache
        misses across instead of spinning up a pool per batch (the
        experiment service keeps one warm worker-process pool for its whole
        lifetime).  Ignored with ``executor="serial"``.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        executor: str = "process",
        memoize: bool = True,
        store: Optional[object] = None,
        pool: Optional[Executor] = None,
    ) -> None:
        if executor not in ("thread", "process", "serial"):
            raise ConfigurationError(
                f"unknown executor {executor!r}; use 'thread', 'process', or 'serial'"
            )
        if max_workers is not None and max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        self.max_workers = max_workers or os.cpu_count() or 2
        self.executor = executor
        self.memoize = memoize
        self.store = store
        self.pool = pool
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0
        self._cache: Dict[str, ScenarioResult] = {}
        # run_many may be driven from several threads at once (the
        # experiment service runs concurrent jobs against one shared
        # runner); the lock keeps cache bookkeeping consistent.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(self, scenario: Scenario) -> ScenarioResult:
        """Run (or recall) a single scenario."""
        return self.run_many([scenario])[0]

    def run_many(
        self,
        scenarios: Sequence[Scenario],
        fork: bool = False,
        on_simulated: Optional[Callable[[ScenarioResult], None]] = None,
        on_hit: Optional[Callable[[ScenarioResult, str], None]] = None,
    ) -> List[ScenarioResult]:
        """Run a batch of scenarios, preserving input order.

        With memoization on, cache hits — including duplicate configurations
        *within* the batch — are served without simulating and only the
        unique remainder is fanned out over the configured workers.  With a
        :attr:`store` attached, points missing from memory but present in
        the persistent store are loaded from disk instead of simulated, and
        fresh results are filed there.  With ``memoize=False`` every
        scenario is simulated, duplicates included, and the store is not
        consulted.

        ``on_simulated(result)`` fires once per freshly simulated point and
        ``on_hit(result, tier)`` once per point served without simulating
        (``tier`` ∈ ``"memory"`` / ``"store"`` / ``"batch"``) — the
        accounting hooks behind the service's telemetry.

        With ``fork=True`` the remainder is first grouped by shared scenario
        prefix (see :func:`_fork_group_key`): each group simulates one
        session up to the point its members' fault schedules diverge, then
        branches a fork per member — producing results identical to
        independent runs while simulating the shared prefix once.  Results
        enter the memoization cache under each member's own configuration
        hash, exactly as straight-through results do.
        """
        keys = [scenario_hash(scenario) for scenario in scenarios]
        results: List[Optional[ScenarioResult]] = [None] * len(scenarios)
        hit_tiers: Dict[int, str] = {}
        to_run: List[int] = []
        first_occurrence: Dict[str, int] = {}
        with self._lock:
            for index, key in enumerate(keys):
                if not self.memoize:
                    to_run.append(index)
                    continue
                if key in self._cache:
                    self.cache_hits += 1
                    results[index] = self._cache[key]
                    hit_tiers[index] = "memory"
                elif key in first_occurrence:
                    self.cache_hits += 1  # duplicate point inside this batch
                    hit_tiers[index] = "batch"
                else:
                    stored = self.store.get(key) if self.store is not None else None
                    if stored is not None:
                        self.cache_hits += 1
                        self.store_hits += 1
                        self._cache[key] = stored
                        results[index] = stored
                        hit_tiers[index] = "store"
                    else:
                        first_occurrence[key] = index
                        to_run.append(index)
            if to_run:
                self.cache_misses += len(to_run)

        if to_run:
            pending = [scenarios[index] for index in to_run]
            fresh = self._execute_forked(pending) if fork else self._execute(pending)
            with self._lock:
                for index, result in zip(to_run, fresh):
                    results[index] = result
                    if self.memoize:
                        self._cache[keys[index]] = result
            for result in fresh:
                if on_simulated is not None:
                    on_simulated(result)
                if self.memoize and self.store is not None:
                    self.store.put(result)
            # Serve within-batch duplicates from their first occurrence.
            for index, key in enumerate(keys):
                if results[index] is None:
                    results[index] = results[first_occurrence[key]]
        if on_hit is not None:
            for index, tier in hit_tiers.items():
                on_hit(results[index], tier)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def sweep(
        self,
        base: Scenario,
        grid: Mapping[str, Sequence[object]],
        fork: bool = False,
    ) -> List[ScenarioResult]:
        """Expand ``grid`` over ``base`` and run every point (see :func:`expand_grid`)."""
        return self.run_many(expand_grid(base, grid), fork=fork)

    def clear_cache(self) -> None:
        """Drop all memoized results and reset the hit/miss counters.

        Only touches the in-memory memo — a persistent :attr:`store` keeps
        its entries (delete its directory to truly start over).
        """
        with self._lock:
            self._cache.clear()
            self.cache_hits = 0
            self.cache_misses = 0
            self.store_hits = 0

    @property
    def cache_size(self) -> int:
        """Number of memoized results."""
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _execute(self, scenarios: List[Scenario]) -> List[ScenarioResult]:
        if self.executor == "serial":
            return [_execute_scenario(scenario) for scenario in scenarios]
        if self.pool is not None:
            # A long-lived shared pool (the experiment service): workers are
            # already warm, so even single-scenario batches go there.
            return list(self.pool.map(_execute_scenario, scenarios))
        if len(scenarios) == 1:
            return [_execute_scenario(scenarios[0])]
        workers = min(self.max_workers, len(scenarios))
        pool: Executor
        if self.executor == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(max_workers=workers)
        with pool:
            return list(pool.map(_execute_scenario, scenarios))

    def _execute_forked(self, scenarios: List[Scenario]) -> List[ScenarioResult]:
        """Execute a batch with shared-prefix forking where it helps.

        Scenarios are grouped by :func:`_fork_group_key`; groups of at least
        two points whose schedules diverge after t=0 run through one shared
        session (:meth:`_run_fork_group`), everything else falls back to the
        straight-through pool.  Order is preserved.
        """
        plans = [_scenario_fault_plan(scenario) for scenario in scenarios]
        groups: Dict[Tuple[str, str], List[int]] = {}
        for index, (scenario, plan) in enumerate(zip(scenarios, plans)):
            groups.setdefault(_fork_group_key(scenario, plan), []).append(index)
        results: List[Optional[ScenarioResult]] = [None] * len(scenarios)
        straight: List[int] = []
        for indices in groups.values():
            if len(indices) < 2:
                straight.extend(indices)
                continue
            prefix, divergence = _shared_prefix([plans[i] for i in indices])
            if divergence <= 0.0:
                # The schedules part ways at t=0: there is no shared prefix
                # to amortize, so forking would only add copy overhead.
                straight.extend(indices)
                continue
            branch_results = self._run_fork_group(
                [scenarios[i] for i in indices],
                [plans[i] for i in indices],
                prefix,
                divergence,
            )
            for index, result in zip(indices, branch_results):
                results[index] = result
        if straight:
            straight.sort()
            for index, result in zip(
                straight, self._execute([scenarios[i] for i in straight])
            ):
                results[index] = result
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def _run_fork_group(
        self,
        scenarios: List[Scenario],
        plans: List[FaultPlan],
        prefix: Tuple,
        divergence: float,
    ) -> List[ScenarioResult]:
        """Simulate one fork group: shared prefix once, then one fork per point.

        The shared session carries only the common event prefix and runs
        whole iterations while they finish strictly before ``divergence``
        (each iteration is attempted from a pre-iteration fork and rolled
        back if it crosses — conservatively, so a branch-specific event can
        never land inside a shared iteration).  Each member then forks the
        shared state, installs its schedule tail, runs to its own iteration
        count, and condenses a result under its own name and hash.  Branches
        run serially in-process: they start from a live object graph, which
        is exactly what a process pool could not be handed cheaply.
        """
        from .session import SimulationSession

        current = scenarios[0]
        try:
            shared_knobs = {
                key: value
                for key, value in current.knobs.items()
                if key != "faults"
            }
            if prefix:
                shared_knobs["faults"] = FaultPlan(
                    events=prefix, on_link_fail=plans[0].on_link_fail
                )
            shared = SimulationSession.start(
                replace(
                    current,
                    knobs=shared_knobs,
                    name=f"{current.name}[shared-prefix]",
                )
            )
            target = min(scenario.num_iterations for scenario in scenarios)
            last_duration: Optional[float] = None
            while shared.completed < target:
                if divergence == float("inf"):
                    # Identical schedules: the members differ only in how
                    # long they run, so every shared iteration is final.
                    shared.run_next_iteration()
                    continue
                # Forking before every iteration would rival the cost of
                # the iteration itself on small fabrics, so a backup is
                # only taken once the projected end (twice the previous
                # iteration's simulated duration) reaches the divergence
                # time.  Iteration durations are nearly constant; should
                # one still spike past an unbacked-up divergence, the
                # polluted shared state is discarded and the whole group
                # re-runs straight-through — slower, never wrong.
                near = (
                    last_duration is None
                    or shared.clock + 2.0 * last_duration >= divergence
                )
                backup = shared.fork() if near else None
                before = shared.clock
                trace = shared.run_next_iteration()
                last_duration = trace.end - before
                if trace.end >= divergence:
                    if backup is None:
                        return self._execute(scenarios)
                    shared = backup
                    break
            results: List[ScenarioResult] = []
            for position, (scenario, plan) in enumerate(zip(scenarios, plans)):
                current = scenario
                started = time.perf_counter()
                # The last member adopts the shared session itself; everyone
                # else continues on a fork of it.
                branch = (
                    shared if position == len(scenarios) - 1 else shared.fork()
                )
                ordered = sorted(plan.events, key=lambda event: event.time)
                branch.extend_faults(
                    FaultPlan(
                        events=tuple(ordered[len(prefix):]),
                        on_link_fail=plan.on_link_fail,
                    ),
                    scenario=scenario,
                )
                branch.run_to(scenario.num_iterations)
                results.append(
                    branch.result(
                        scenario=scenario,
                        wall_time=time.perf_counter() - started,
                    )
                )
            return results
        except ScenarioError:
            raise
        except Exception as exc:
            raise ScenarioError(
                f"scenario {current.name!r} (backend {current.backend!r}, "
                f"knobs {dict(current.knobs)!r}) failed during a fork-sweep: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
