"""Registry of fabric backends: every network technology behind one interface.

A *backend* adapts one scale-out fabric into the
:class:`~repro.simulator.network.NetworkModel` interface the DAG executor
consumes, so the same workload can be simulated end-to-end on any fabric by
name.  The registry ships with six backends:

========== ==================================================================
``photonic``   photonic rails driven by the Opus control plane (the paper's
               proposal; knobs: ``reconfiguration_delay``, ``provisioning``
               — a bool, or ``"profile"``/``"none"``/``"reactive"`` where
               ``"reactive"`` drives reconfiguration from live telemetry —
               ``technology``, ``network_mode``, ``faults``)
``electrical`` fully-connected electrical rails, the Fig. 8 baseline
               (knobs: ``use_tree_collectives``, ``network_mode``,
               ``routing_policy``, ``faults``)
``ideal``      zero-cost network — the communication-free lower bound
               (knobs: ``faults``)
``fattree``    transfers routed through the k-ary fat-tree graph (knobs:
               ``network_mode``, ``oversubscription``, ``routing_policy``,
               ``faults``)
``railopt``    transfers routed through the leaf/spine rail-optimized graph
               (knobs: ``always_spine``, ``network_mode``,
               ``routing_policy``, ``faults``)
``ocs``        bare OCS rails without Opus: every circuit-schedule change
               blocks for the switching delay (knobs:
               ``reconfiguration_delay``, ``technology``, ``network_mode``,
               ``faults``)
========== ==================================================================

Every backend except ``ideal`` accepts a ``network_mode`` knob selecting how
collectives are timed: ``"analytic"`` (default) prices each collective
independently with the alpha–beta cost model, while ``"flow"`` expands
scale-out collectives into point-to-point transfers simulated with max–min
fair sharing (:class:`~repro.simulator.flow_network.FlowNetworkModel`), so
concurrent collectives contend for shared fabric links.  On the
circuit-switched backends (``photonic``, ``ocs``) flow mode additionally
makes topology change a time-domain event: collectives gate on the Opus
controller's switching events, routes resolve over whatever circuits are
installed when the flows start, and real flow drains feed the controller's
busy-circuit bookkeeping
(:class:`~repro.simulator.flow_network.PhotonicFlowNetworkModel`).

Every flow-capable backend also accepts the contention-scaling knobs
``allocator_epsilon``, ``coarsen_quantum``, and ``fill_workers`` (flow mode
only; see :class:`~repro.simulator.flows.FlowSimulator`): ε-approximate
reallocation with deferred-dirty tracking, rate-change event coarsening onto
a time quantum, and parallel per-component water-filling.  All default to
off, which is bit-for-bit the exact engine.

The packet-routed backends (``electrical``, ``fattree``, ``railopt``)
additionally accept a ``routing_policy`` knob in flow mode — ``"single"``
(default, today's one-path routing), ``"ecmp"`` (deterministic per-flow
hashing over every equal-cost path), ``"adaptive"`` (least-congested
equal-cost path at flow start), or ``"spray"`` (split each transfer across
equal-cost paths as sub-flows); see :mod:`repro.simulator.routing`.

Every backend additionally accepts a ``faults`` knob — a
:class:`~repro.simulator.faults.FaultPlan` (or its dict/list JSON form) of
timed fabric faults: link failure/recovery, bandwidth degradation, OCS port
failure, per-device compute slowdown.  Each backend/mode combination
validates that it can apply the plan's event kinds (link events need a
routed topology, port failures a circuit control plane; compute slowdowns
work everywhere).

Third parties register additional fabrics with the :func:`backend` decorator
(or :func:`register_backend`); the experiment runner and the ``repro-sim`` CLI
pick them up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..parallelism.groups import GroupRegistry
from ..parallelism.mesh import DeviceMesh
from ..simulator.faults import (
    LINK_FAULT_KINDS,
    FaultKind,
    as_fault_plan,
)
from ..simulator.fabric_network import (
    FatTreeNetworkModel,
    OCSReconfigurableNetworkModel,
    RailOptimizedNetworkModel,
)
from ..simulator.flow_network import (
    bare_ocs_flow_network,
    electrical_flow_network,
    fat_tree_flow_network,
    photonic_flow_network,
    rail_optimized_flow_network,
    shim_options_for_provisioning,
)
from ..simulator.routing import ROUTING_POLICIES
from ..simulator.network import (
    ElectricalRailNetworkModel,
    IdealNetworkModel,
    NetworkModel,
)
from ..topology.devices import ClusterSpec, OCSTechnology

#: A backend factory builds a network model for one (cluster, mesh) pair.
BackendFactory = Callable[..., NetworkModel]


@dataclass(frozen=True)
class FabricBackend:
    """One registered fabric: a named, knob-validated network-model factory."""

    name: str
    description: str
    factory: BackendFactory = field(repr=False)
    #: Names of the keyword knobs the factory accepts (beyond cluster/mesh).
    knobs: Tuple[str, ...] = ()

    def create(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        registry: Optional[GroupRegistry] = None,
        **knobs: object,
    ) -> NetworkModel:
        """Instantiate the network model, rejecting knobs the backend lacks."""
        unknown = sorted(set(knobs) - set(self.knobs))
        if unknown:
            raise ConfigurationError(
                f"backend {self.name!r} does not accept knobs {unknown}; "
                f"accepted: {sorted(self.knobs)}"
            )
        return self.factory(cluster, mesh, registry=registry, **knobs)


_REGISTRY: Dict[str, FabricBackend] = {}


def register_backend(spec: FabricBackend, replace: bool = False) -> FabricBackend:
    """Add a backend to the registry; re-registering a name raises unless ``replace``."""
    if spec.name in _REGISTRY and not replace:
        raise ConfigurationError(f"backend {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def backend(
    name: str, description: str, knobs: Tuple[str, ...] = ()
) -> Callable[[BackendFactory], BackendFactory]:
    """Decorator form of :func:`register_backend` for factory functions."""

    def wrap(factory: BackendFactory) -> BackendFactory:
        register_backend(
            FabricBackend(
                name=name, description=description, factory=factory, knobs=tuple(knobs)
            )
        )
        return factory

    return wrap


def get_backend(name: str) -> FabricBackend:
    """Return the backend registered under ``name``."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        )
    return _REGISTRY[name]


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def all_backends() -> List[FabricBackend]:
    """Every registered backend, sorted by name."""
    return [_REGISTRY[name] for name in available_backends()]


def create_network(
    name: str,
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    registry: Optional[GroupRegistry] = None,
    **knobs: object,
) -> NetworkModel:
    """Build the network model of backend ``name`` for one simulation."""
    return get_backend(name).create(cluster, mesh, registry=registry, **knobs)


# --------------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------------- #

#: Values accepted by the ``network_mode`` knob.
NETWORK_MODES = ("analytic", "flow")


def _check_network_mode(network_mode: object) -> str:
    mode = "analytic" if network_mode is None else network_mode
    if mode not in NETWORK_MODES:
        raise ConfigurationError(
            f"network_mode must be one of {NETWORK_MODES}, got {network_mode!r}"
        )
    return str(mode)


#: Names of the flow-mode contention-scaling knobs shared by every
#: flow-capable backend (see :class:`~repro.simulator.flows.FlowSimulator`).
FLOW_APPROX_KNOBS = ("allocator_epsilon", "coarsen_quantum", "fill_workers")


def _flow_approx_knobs(
    mode: str,
    backend: str,
    allocator_epsilon: object,
    coarsen_quantum: object,
    fill_workers: object,
) -> Dict[str, object]:
    """Validate the contention-scaling knobs for one backend instantiation.

    Returns the keyword arguments for the flow-network factory.  The knobs
    only make sense in flow mode — the analytic model has no allocator to
    approximate — so nonzero values under ``analytic`` are a configuration
    error rather than a silent no-op.
    """
    epsilon = 0.0 if allocator_epsilon is None else float(allocator_epsilon)
    quantum = 0.0 if coarsen_quantum is None else float(coarsen_quantum)
    workers = 0 if fill_workers is None else int(fill_workers)
    if epsilon < 0.0 or quantum < 0.0 or workers < 0:
        raise ConfigurationError(
            "allocator_epsilon, coarsen_quantum, and fill_workers must be "
            f"non-negative, got {epsilon!r}/{quantum!r}/{workers!r}"
        )
    if mode != "flow" and (epsilon or quantum or workers):
        raise ConfigurationError(
            f"{'/'.join(FLOW_APPROX_KNOBS)} only apply to "
            f"network_mode='flow'; backend {backend!r} is in {mode} mode"
        )
    return {
        "allocator_epsilon": epsilon,
        "coarsen_quantum": quantum,
        "fill_workers": workers,
    }


def _routing_policy_knob(mode: str, backend: str, routing_policy: object) -> str:
    """Validate the ``routing_policy`` knob for one backend instantiation.

    Routing policies select paths per flow, so they only exist in flow mode —
    the analytic models never route individual transfers.  A non-default
    policy under ``analytic`` is a configuration error rather than a silent
    no-op, mirroring :func:`_flow_approx_knobs`.
    """
    policy = "single" if routing_policy is None else str(routing_policy)
    if policy not in ROUTING_POLICIES:
        raise ConfigurationError(
            f"routing_policy must be one of {ROUTING_POLICIES}, got "
            f"{routing_policy!r}"
        )
    if mode != "flow" and policy != "single":
        raise ConfigurationError(
            f"routing_policy={policy!r} only applies to network_mode='flow'; "
            f"backend {backend!r} is in {mode} mode"
        )
    return policy


# Fault kinds each backend/mode combination can apply through its ``faults``
# knob.  Compute slowdowns work everywhere (the executor applies them); link
# events need a routed topology; OCS port failures need a circuit control
# plane.
_COMPUTE_FAULTS = frozenset({FaultKind.COMPUTE_SLOWDOWN})
_LINK_FAULTS = _COMPUTE_FAULTS | LINK_FAULT_KINDS
_CIRCUIT_FLOW_FAULTS = _LINK_FAULTS | {FaultKind.OCS_PORT_FAIL}
_CIRCUIT_ANALYTIC_FAULTS = _COMPUTE_FAULTS | {FaultKind.OCS_PORT_FAIL}

#: (backend, network_mode) -> fault kinds that combination can apply.
_FAULT_SUPPORT: Dict[Tuple[str, str], frozenset] = {
    ("photonic", "flow"): _CIRCUIT_FLOW_FAULTS,
    ("photonic", "analytic"): _CIRCUIT_ANALYTIC_FAULTS,
    ("electrical", "flow"): _LINK_FAULTS,
    ("electrical", "analytic"): _COMPUTE_FAULTS,
    ("ideal", "analytic"): _COMPUTE_FAULTS,
    ("fattree", "flow"): _LINK_FAULTS,
    ("fattree", "analytic"): _LINK_FAULTS,
    ("railopt", "flow"): _LINK_FAULTS,
    ("railopt", "analytic"): _LINK_FAULTS,
    ("ocs", "flow"): _CIRCUIT_FLOW_FAULTS,
    ("ocs", "analytic"): _CIRCUIT_ANALYTIC_FAULTS,
}


def fault_support(
    backend_name: str, network_mode: object = None
) -> Optional[frozenset]:
    """Fault kinds backend ``backend_name`` supports in ``network_mode``.

    Mirrors the ``supported`` sets the built-in factories pass to their
    ``faults``-knob validation, so callers extending a *live* model's fault
    plan (fork-sweeps; see :meth:`repro.experiments.session.SimulationSession.
    extend_faults`) can reject unsupported event kinds with the same error as
    an up-front ``faults=`` knob would.  Returns ``None`` for third-party
    backends the table does not know, leaving validation to the model itself.
    """
    mode = "analytic" if network_mode is None else str(network_mode)
    return _FAULT_SUPPORT.get((str(backend_name), mode))


def _install_faults(
    model: NetworkModel,
    faults: object,
    supported: frozenset,
    backend: str,
    mode: str,
) -> NetworkModel:
    """Validate and bind a ``faults=`` knob value onto a fresh model."""
    if faults is None:
        return model
    plan = as_fault_plan(faults)
    if plan.is_empty:
        # A zero-event plan is *exactly* no plan: binding an injector anyway
        # would still flip flow-mode behavior (failure policy, the rewind
        # guard) and break the documented bit-for-bit equivalence.
        return model
    plan.require_supported(
        supported, context=f"backend {backend!r} in {mode} network mode"
    )
    model.install_fault_plan(plan)
    return model


@backend(
    "photonic",
    "Photonic rails driven by the Opus control plane (the paper's proposal)",
    knobs=(
        "reconfiguration_delay",
        "provisioning",
        "technology",
        "network_mode",
        "faults",
    )
    + FLOW_APPROX_KNOBS,
)
def _photonic_backend(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    registry: Optional[GroupRegistry] = None,
    reconfiguration_delay: Optional[float] = None,
    provisioning: object = True,
    technology: Optional[OCSTechnology] = None,
    network_mode: Optional[str] = None,
    faults: object = None,
    allocator_epsilon: object = None,
    coarsen_quantum: object = None,
    fill_workers: object = None,
) -> NetworkModel:
    mode = _check_network_mode(network_mode)
    approx = _flow_approx_knobs(
        mode, "photonic", allocator_epsilon, coarsen_quantum, fill_workers
    )
    # Validate the provisioning knob (bool, or "profile"/"none"/"reactive")
    # up front so both modes reject bad values with the same error.
    shim_options = shim_options_for_provisioning(provisioning)
    if mode == "flow":
        return _install_faults(
            photonic_flow_network(
                cluster,
                mesh,
                reconfiguration_delay=reconfiguration_delay,
                provisioning=provisioning,
                technology=technology,
                registry=registry,
                **approx,
            ),
            faults,
            _CIRCUIT_FLOW_FAULTS,
            "photonic",
            "flow",
        )
    if shim_options.reactive:
        raise ConfigurationError(
            "provisioning='reactive' needs the telemetry loop of "
            "network_mode='flow'; the analytic photonic model has no "
            "link-load counters to sample"
        )
    # Imported lazily: repro.core imports this module back through
    # repro.core.system, so a module-level import would be circular.
    from ..core.network import PhotonicRailNetworkModel
    from ..topology.photonic import build_photonic_rail_fabric

    fabric = build_photonic_rail_fabric(cluster, technology=technology)
    return _install_faults(
        PhotonicRailNetworkModel(
            cluster=cluster,
            mesh=mesh,
            fabric=fabric,
            reconfiguration_delay=reconfiguration_delay,
            shim_options=shim_options,
            registry=registry,
        ),
        faults,
        _CIRCUIT_ANALYTIC_FAULTS,
        "photonic",
        "analytic",
    )


@backend(
    "electrical",
    "Fully-connected electrical rails (the Fig. 8 baseline)",
    knobs=("use_tree_collectives", "network_mode", "routing_policy", "faults")
    + FLOW_APPROX_KNOBS,
)
def _electrical_backend(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    registry: Optional[GroupRegistry] = None,
    use_tree_collectives: bool = False,
    network_mode: Optional[str] = None,
    routing_policy: object = None,
    faults: object = None,
    allocator_epsilon: object = None,
    coarsen_quantum: object = None,
    fill_workers: object = None,
) -> NetworkModel:
    mode = _check_network_mode(network_mode)
    approx = _flow_approx_knobs(
        mode, "electrical", allocator_epsilon, coarsen_quantum, fill_workers
    )
    policy = _routing_policy_knob(mode, "electrical", routing_policy)
    if mode == "flow":
        if use_tree_collectives:
            raise ConfigurationError(
                "network_mode='flow' expands ring algorithms only; "
                "use_tree_collectives is not supported in flow mode"
            )
        return _install_faults(
            electrical_flow_network(cluster, mesh, routing_policy=policy, **approx),
            faults,
            _LINK_FAULTS,
            "electrical",
            "flow",
        )
    return _install_faults(
        ElectricalRailNetworkModel(
            cluster, mesh, use_tree_collectives=bool(use_tree_collectives)
        ),
        faults,
        _COMPUTE_FAULTS,
        "electrical",
        "analytic",
    )


@backend(
    "ideal",
    "Zero-cost network: the communication-free lower bound",
    knobs=("faults",),
)
def _ideal_backend(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    registry: Optional[GroupRegistry] = None,
    faults: object = None,
) -> NetworkModel:
    return _install_faults(
        IdealNetworkModel(cluster, mesh), faults, _COMPUTE_FAULTS, "ideal", "analytic"
    )


@backend(
    "fattree",
    "Packet transfers routed through the k-ary fat-tree graph",
    knobs=("network_mode", "oversubscription", "routing_policy", "faults")
    + FLOW_APPROX_KNOBS,
)
def _fattree_backend(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    registry: Optional[GroupRegistry] = None,
    network_mode: Optional[str] = None,
    oversubscription: float = 1.0,
    routing_policy: object = None,
    faults: object = None,
    allocator_epsilon: object = None,
    coarsen_quantum: object = None,
    fill_workers: object = None,
) -> NetworkModel:
    oversubscription = float(oversubscription)
    mode = _check_network_mode(network_mode)
    approx = _flow_approx_knobs(
        mode, "fattree", allocator_epsilon, coarsen_quantum, fill_workers
    )
    policy = _routing_policy_knob(mode, "fattree", routing_policy)
    if mode == "flow":
        model: NetworkModel = fat_tree_flow_network(
            cluster,
            mesh,
            oversubscription=oversubscription,
            routing_policy=policy,
            **approx,
        )
        return _install_faults(model, faults, _LINK_FAULTS, "fattree", "flow")
    model = FatTreeNetworkModel(cluster, mesh, oversubscription=oversubscription)
    return _install_faults(model, faults, _LINK_FAULTS, "fattree", "analytic")


@backend(
    "railopt",
    "Packet transfers routed through the leaf/spine rail-optimized graph",
    knobs=("always_spine", "network_mode", "routing_policy", "faults")
    + FLOW_APPROX_KNOBS,
)
def _railopt_backend(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    registry: Optional[GroupRegistry] = None,
    always_spine: bool = True,
    network_mode: Optional[str] = None,
    routing_policy: object = None,
    faults: object = None,
    allocator_epsilon: object = None,
    coarsen_quantum: object = None,
    fill_workers: object = None,
) -> NetworkModel:
    mode = _check_network_mode(network_mode)
    approx = _flow_approx_knobs(
        mode, "railopt", allocator_epsilon, coarsen_quantum, fill_workers
    )
    policy = _routing_policy_knob(mode, "railopt", routing_policy)
    if mode == "flow":
        model: NetworkModel = rail_optimized_flow_network(
            cluster,
            mesh,
            always_spine=bool(always_spine),
            routing_policy=policy,
            **approx,
        )
        return _install_faults(model, faults, _LINK_FAULTS, "railopt", "flow")
    model = RailOptimizedNetworkModel(cluster, mesh, always_spine=bool(always_spine))
    return _install_faults(model, faults, _LINK_FAULTS, "railopt", "analytic")


@backend(
    "ocs",
    "Bare OCS rails without Opus: schedule changes block for the switch time",
    knobs=("reconfiguration_delay", "technology", "network_mode", "faults")
    + FLOW_APPROX_KNOBS,
)
def _ocs_backend(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    registry: Optional[GroupRegistry] = None,
    reconfiguration_delay: Optional[float] = None,
    technology: Optional[OCSTechnology] = None,
    network_mode: Optional[str] = None,
    faults: object = None,
    allocator_epsilon: object = None,
    coarsen_quantum: object = None,
    fill_workers: object = None,
) -> NetworkModel:
    mode = _check_network_mode(network_mode)
    approx = _flow_approx_knobs(
        mode, "ocs", allocator_epsilon, coarsen_quantum, fill_workers
    )
    if mode == "flow":
        return _install_faults(
            bare_ocs_flow_network(
                cluster,
                mesh,
                reconfiguration_delay=reconfiguration_delay,
                technology=technology,
                registry=registry,
                **approx,
            ),
            faults,
            _CIRCUIT_FLOW_FAULTS,
            "ocs",
            "flow",
        )
    return _install_faults(
        OCSReconfigurableNetworkModel(
            cluster,
            mesh,
            reconfiguration_delay=reconfiguration_delay,
            technology=technology,
        ),
        faults,
        _CIRCUIT_ANALYTIC_FAULTS,
        "ocs",
        "analytic",
    )
