"""``repro-sim``: run workloads on any registered fabric backend.

Subcommands
-----------

* ``repro-sim backends`` — list the registered fabric backends and their knobs.
* ``repro-sim run`` — simulate one scenario and emit its metrics::

      repro-sim run --backend photonic --workload tiny --cluster perlmutter:2 \\
          --knob reconfiguration_delay=0.015 --iterations 3 --format json

  ``--network-mode flow`` switches a backend from analytic alpha–beta
  pricing to flow-level simulation with max–min fair link sharing; on the
  circuit-switched backends (photonic, ocs) it additionally simulates
  reconfigurations as time-domain events.  It also works as a sweep
  dimension (``--grid network_mode=analytic,flow``).

* ``repro-sim sweep`` — fan a parameter grid out over parallel workers::

      repro-sim sweep --backend photonic --workload tiny --cluster perlmutter:2 \\
          --grid reconfiguration_delay=1e-5,0.007,0.015 \\
          --grid provisioning=false,true --workers 4 --format csv

  ``--fork`` turns on delta-sweeps: grid points that differ only in their
  fault schedules share one simulation up to the first diverging event,
  then branch from an in-memory fork instead of re-simulating from t=0.
  Results are bit-for-bit identical to a straight sweep.

* ``repro-sim snapshot`` — simulate part of one scenario and spill the live
  session (pending events included) to a versioned checkpoint file::

      repro-sim snapshot --backend fattree --network-mode flow \\
          --iterations 8 --at 4 --checkpoint ckpt.bin

* ``repro-sim resume`` — load a checkpoint, continue bit-for-bit where it
  stopped, and emit the finished scenario's metrics::

      repro-sim resume --checkpoint ckpt.bin --format json

* ``repro-sim serve`` — run the persistent experiment service: an HTTP/JSON
  API over a validated job queue, a shared worker-process pool, and an
  on-disk content-addressed result store (see :mod:`repro.service`)::

      repro-sim serve --port 8070 --store /var/tmp/repro-store --workers 4

* ``repro-sim submit`` — submit a sweep to a running service (same scenario
  flags as ``sweep``; ``--wait`` polls to completion and emits results)::

      repro-sim submit --url http://127.0.0.1:8070 --backend electrical \\
          --grid network_mode=analytic,flow --wait

* ``repro-sim status`` — fetch (or ``--wait`` on) a submitted job by id.

* ``repro-sim fetch`` — fetch one stored result envelope by configuration
  hash, straight from the service's content-addressed store.

* ``repro-sim fig8`` — the paper's Fig. 8 reconfiguration-latency sweep
  (normalized against the electrical baseline) through the experiment runner.

* ``repro-sim scale`` — the large-scale scenario family (1k/4k/10k-endpoint
  fabrics, multi-collective MoE steady state) in flow or analytic mode,
  fanned out over parallel workers::

      repro-sim scale --endpoints 1000,10000 --backends fattree,photonic \\
          --network-mode flow --workers 4 --format csv

Workload presets: ``tiny``, ``paper-trace``, ``moe``, ``llama3-405b``
(tune with repeatable ``--workload-arg pp=2`` overrides).  Clusters are
``perlmutter:<nodes>`` or ``dgx-h200:<gpus>[:<nic_ports>]``.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError, ReproError
from ..parallelism.config import WorkloadConfig
from ..parallelism.workloads import (
    llama3_405b_workload,
    moe_workload,
    paper_trace_workload,
    small_test_workload,
)
from ..simulator.executor import SimulationConfig
from ..topology.devices import ClusterSpec, OCS_CATALOG, dgx_h200_cluster, perlmutter_testbed
from ..simulator.routing import ROUTING_POLICIES
from .backends import NETWORK_MODES, all_backends, get_backend
from .runner import ExperimentRunner, Scenario, ScenarioResult

WORKLOAD_PRESETS: Dict[str, Callable[..., WorkloadConfig]] = {
    "tiny": small_test_workload,
    "paper-trace": paper_trace_workload,
    "moe": moe_workload,
    "llama3-405b": llama3_405b_workload,
}


def parse_value(text: str) -> object:
    """Parse a CLI value: bool / None / int / float, falling back to str."""
    lowered = text.strip().lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null", "default"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_cluster(spec: str) -> ClusterSpec:
    """Parse ``perlmutter:<nodes>`` or ``dgx-h200:<gpus>[:<nic_ports>]``."""
    parts = spec.split(":")
    family = parts[0].lower()
    try:
        numbers = [int(part) for part in parts[1:]]
    except ValueError as exc:
        raise ConfigurationError(f"invalid cluster spec {spec!r}") from exc
    if family == "perlmutter":
        return perlmutter_testbed(num_nodes=numbers[0] if numbers else 4)
    if family == "dgx-h200":
        if not numbers:
            raise ConfigurationError("dgx-h200 needs a GPU count, e.g. dgx-h200:16")
        nic_ports = numbers[1] if len(numbers) > 1 else 1
        return dgx_h200_cluster(numbers[0], nic_ports_per_gpu=nic_ports)
    raise ConfigurationError(
        f"unknown cluster family {family!r}; use perlmutter:<nodes> or "
        f"dgx-h200:<gpus>[:<nic_ports>]"
    )


def parse_workload(name: str, overrides: Sequence[str]) -> WorkloadConfig:
    """Build a preset workload with optional ``key=value`` factory overrides."""
    if name not in WORKLOAD_PRESETS:
        raise ConfigurationError(
            f"unknown workload {name!r}; presets: {sorted(WORKLOAD_PRESETS)}"
        )
    kwargs: Dict[str, object] = {}
    for override in overrides:
        key, _, value = override.partition("=")
        if not _:
            raise ConfigurationError(
                f"workload override {override!r} must look like key=value"
            )
        kwargs[key.strip()] = parse_value(value)
    try:
        return WORKLOAD_PRESETS[name](**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"workload {name!r} rejected overrides {sorted(kwargs)}: {exc}"
        ) from exc


def _parse_knob_value(key: str, text: str) -> object:
    """Parse one knob value, resolving OCS technology names to catalog entries."""
    parsed = parse_value(text)
    if key == "technology" and isinstance(parsed, str):
        if parsed not in OCS_CATALOG:
            raise ConfigurationError(
                f"unknown OCS technology {parsed!r}; known: {sorted(OCS_CATALOG)}"
            )
        parsed = OCS_CATALOG[parsed]
    if key == "reconfiguration_delay" and not isinstance(
        parsed, (int, float, type(None))
    ):
        raise ConfigurationError(
            f"knob reconfiguration_delay must be a number in seconds, got {text!r}"
        )
    return parsed


def parse_knobs(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``--knob key=value`` flags into a knob mapping."""
    knobs: Dict[str, object] = {}
    for pair in pairs:
        key, _, value = pair.partition("=")
        if not _:
            raise ConfigurationError(f"knob {pair!r} must look like key=value")
        key = key.strip()
        knobs[key] = _parse_knob_value(key, value)
    return knobs


def parse_grid(pairs: Sequence[str]) -> Dict[str, List[object]]:
    """Parse repeated ``--grid key=v1,v2,...`` flags into a parameter grid."""
    grid: Dict[str, List[object]] = {}
    for pair in pairs:
        key, _, values = pair.partition("=")
        if not _ or not values:
            raise ConfigurationError(f"grid {pair!r} must look like key=v1,v2,...")
        key = key.strip()
        grid[key] = [_parse_knob_value(key, value) for value in values.split(",")]
    return grid


def _emit(
    rows: List[Dict[str, object]],
    fmt: str,
    output: Optional[str],
    single: bool = False,
) -> None:
    """Write rows as JSON or CSV to ``output`` (or stdout).

    ``single`` emits a bare JSON object (the ``run`` subcommand); list-shaped
    subcommands always emit a JSON array, even for one-point grids.
    """
    if fmt == "json":
        text = json.dumps(rows[0] if single else rows, indent=2)
    else:
        fieldnames: List[str] = []
        for row in rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
        text = buffer.getvalue().rstrip("\n")
    if output:
        with open(output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)


def _result_rows(results: Sequence[ScenarioResult], fmt: str) -> List[Dict[str, object]]:
    if fmt == "csv":
        return [result.to_row() for result in results]
    return [result.to_dict() for result in results]


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default="electrical", help="fabric backend name (see `backends`)"
    )
    parser.add_argument(
        "--workload", default="tiny", help=f"preset: {sorted(WORKLOAD_PRESETS)}"
    )
    parser.add_argument(
        "--workload-arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a workload factory argument (repeatable), e.g. pp=2",
    )
    parser.add_argument(
        "--cluster",
        default="perlmutter:2",
        help="cluster spec: perlmutter:<nodes> or dgx-h200:<gpus>[:<nic_ports>]",
    )
    parser.add_argument(
        "--iterations", type=int, default=3, help="training iterations to simulate"
    )
    parser.add_argument(
        "--mfu", type=float, default=0.40, help="model FLOPs utilization"
    )
    parser.add_argument(
        "--knob",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="backend knob (repeatable), e.g. reconfiguration_delay=0.015",
    )
    parser.add_argument(
        "--network-mode",
        choices=NETWORK_MODES,
        default=None,
        help="how collectives are timed: 'analytic' alpha-beta pricing or "
        "'flow' max-min fair flow simulation with link contention and, on "
        "circuit-switched backends, time-domain reconfiguration events "
        "(shorthand for --knob network_mode=...; every backend except ideal)",
    )
    parser.add_argument(
        "--routing-policy",
        choices=ROUTING_POLICIES,
        default=None,
        help="flow-mode multipath policy on the packet fabrics: 'single' "
        "(default one-path routing), 'ecmp' (deterministic per-flow hashing "
        "over equal-cost paths), 'adaptive' (least-congested equal-cost path "
        "at flow start), or 'spray' (stripe each transfer across equal-cost "
        "paths) — shorthand for --knob routing_policy=...",
    )
    parser.add_argument(
        "--allocator-epsilon",
        type=float,
        default=None,
        metavar="EPS",
        help="flow-mode ε-approximate reallocation: skip component re-rates "
        "that would move no flow's rate by more than this relative fraction; "
        "0 is exact (shorthand for --knob allocator_epsilon=...)",
    )
    parser.add_argument(
        "--coarsen-quantum",
        type=float,
        default=None,
        metavar="SECONDS",
        help="flow-mode event coarsening: batch reallocation triggers landing "
        "within this time quantum into one solver pass; 0 is exact "
        "(shorthand for --knob coarsen_quantum=...)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FAULTS.JSON",
        help="JSON fault plan injected as timed simulation events: link "
        "failure/recovery, bandwidth degradation, OCS port failure, compute "
        "slowdown (shorthand for the 'faults' backend knob; see the README's "
        "Fault injection section for the schema)",
    )
    parser.add_argument("--format", choices=("json", "csv"), default="json")
    parser.add_argument("--output", default=None, help="write to file instead of stdout")


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    get_backend(args.backend)  # fail fast on unknown backends
    workload = parse_workload(args.workload, args.workload_arg)
    cluster = parse_cluster(args.cluster)
    knobs = parse_knobs(args.knob)
    if args.network_mode is not None:
        existing = knobs.get("network_mode")
        if existing is not None and existing != args.network_mode:
            raise ConfigurationError(
                f"--network-mode {args.network_mode} conflicts with "
                f"--knob network_mode={existing}"
            )
        knobs["network_mode"] = args.network_mode
    if getattr(args, "routing_policy", None) is not None:
        existing = knobs.get("routing_policy")
        if existing is not None and existing != args.routing_policy:
            raise ConfigurationError(
                f"--routing-policy {args.routing_policy} conflicts with "
                f"--knob routing_policy={existing}"
            )
        knobs["routing_policy"] = args.routing_policy
    for flag, knob in (
        ("allocator_epsilon", "allocator_epsilon"),
        ("coarsen_quantum", "coarsen_quantum"),
    ):
        value = getattr(args, flag, None)
        if value is None:
            continue
        existing = knobs.get(knob)
        if existing is not None and float(existing) != value:
            raise ConfigurationError(
                f"--{flag.replace('_', '-')} {value} conflicts with "
                f"--knob {knob}={existing}"
            )
        knobs[knob] = value
    if getattr(args, "fault_plan", None) is not None:
        from ..simulator.faults import FaultPlan

        if "faults" in knobs:
            raise ConfigurationError(
                "--fault-plan conflicts with --knob faults=...; pick one way "
                "to inject faults"
            )
        knobs["faults"] = FaultPlan.from_file(args.fault_plan)
    return Scenario(
        workload=workload,
        cluster=cluster,
        backend=args.backend,
        knobs=knobs,
        num_iterations=args.iterations,
        simulation=SimulationConfig(mfu=args.mfu),
        name=f"{args.workload}@{args.backend}",
    )


def _cmd_backends(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "description": spec.description,
            "knobs": list(spec.knobs),
        }
        for spec in all_backends()
    ]
    if args.format == "json":
        print(json.dumps(rows, indent=2))
    else:
        for row in rows:
            knobs = ", ".join(row["knobs"]) or "-"
            print(f"{row['name']:<12} {row['description']}  [knobs: {knobs}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    runner = ExperimentRunner(max_workers=1, executor="serial")
    result = runner.run(scenario)
    _emit(_result_rows([result], args.format), args.format, args.output, single=True)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    grid = parse_grid(args.grid)
    if not grid:
        raise ConfigurationError("a sweep needs at least one --grid key=v1,v2,...")
    if args.network_mode is not None and "network_mode" in grid:
        raise ConfigurationError(
            "--network-mode conflicts with --grid network_mode=...; "
            "pick one way to select the mode"
        )
    runner = ExperimentRunner(max_workers=args.workers, executor=args.executor)
    results = runner.sweep(scenario, grid, fork=args.fork)
    _emit(_result_rows(results, args.format), args.format, args.output)
    print(
        f"sweep: {len(results)} points, {runner.cache_misses} simulated, "
        f"{runner.cache_hits} cache hits, {runner.max_workers} workers"
        + (" (fork)" if args.fork else ""),
        file=sys.stderr,
    )
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from .session import SimulationSession

    scenario = _scenario_from_args(args)
    stop_at = scenario.num_iterations if args.at is None else args.at
    if not 0 <= stop_at <= scenario.num_iterations:
        raise ConfigurationError(
            f"--at {stop_at} must be between 0 and --iterations "
            f"({scenario.num_iterations})"
        )
    session = SimulationSession.start(scenario)
    session.run_to(stop_at)
    session.save(args.checkpoint)
    _emit(
        [
            {
                "checkpoint": args.checkpoint,
                "scenario": scenario.name,
                "backend": scenario.backend,
                "completed_iterations": session.completed,
                "remaining_iterations": scenario.num_iterations - session.completed,
                "clock": session.clock,
            }
        ],
        args.format,
        args.output,
        single=True,
    )
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .session import SimulationSession

    session = SimulationSession.load(args.checkpoint)
    scenario = session.scenario
    if args.iterations is not None:
        if args.iterations < session.completed:
            raise ConfigurationError(
                f"--iterations {args.iterations} is below the checkpoint's "
                f"{session.completed} already-completed iterations"
            )
        scenario = replace(scenario, num_iterations=args.iterations)
    session.run_to(scenario.num_iterations)
    result = session.result(scenario=scenario)
    _emit(_result_rows([result], args.format), args.format, args.output, single=True)
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from .contention import scale_scenario

    try:
        endpoints = [int(value) for value in args.endpoints.split(",")]
    except ValueError as exc:
        raise ConfigurationError(
            f"--endpoints must be comma-separated GPU counts, got {args.endpoints!r}"
        ) from exc
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    for name in backends:
        get_backend(name)  # fail fast on unknown backends
    scenarios = [
        scale_scenario(
            num_endpoints=count,
            backend=name,
            network_mode=args.network_mode,
            num_iterations=args.iterations,
            allocator_epsilon=args.allocator_epsilon or 0.0,
            coarsen_quantum=args.coarsen_quantum or 0.0,
        )
        for count in endpoints
        for name in backends
    ]
    runner = ExperimentRunner(max_workers=args.workers, executor=args.executor)
    results = runner.run_many(scenarios)
    _emit(_result_rows(results, args.format), args.format, args.output)
    print(
        f"scale: {len(results)} points, {runner.cache_misses} simulated, "
        f"{runner.max_workers} workers",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from ..service import ExperimentServer, ExperimentService

    service = ExperimentService(
        store_dir=args.store,
        max_workers=args.workers,
        job_workers=args.job_workers,
        max_grid_points=args.max_grid_points,
        executor=args.executor,
    )
    server = ExperimentServer(service, host=args.host, port=args.port)
    # One machine-readable ready line on stdout: harnesses (the CI smoke
    # test) read the actual URL from it, which makes --port 0 usable.
    print(
        json.dumps(
            {
                "serving": server.url,
                "store": str(service.store.root),
                "workers": service.num_workers,
                "pid": os.getpid(),
            }
        ),
        flush=True,
    )

    def _terminate(signum, frame):  # noqa: ARG001
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro-sim serve: shutting down", file=sys.stderr)
    finally:
        server.httpd.shutdown()
        server.httpd.server_close()
        service.close()
    return 0


def _submit_spec_from_args(args: argparse.Namespace) -> dict:
    """Build the JSON sweep spec the service validates from ``submit`` flags.

    Values stay JSON-native (the *server* resolves technology names and
    fault plans), but flags mirror ``sweep`` exactly, so a spec submitted
    over HTTP builds the same scenarios — and configuration hashes — as the
    equivalent one-shot ``repro-sim sweep`` invocation.
    """
    knobs: Dict[str, object] = {}
    for pair in args.knob:
        key, sep, value = pair.partition("=")
        if not sep:
            raise ConfigurationError(f"knob {pair!r} must look like key=value")
        knobs[key.strip()] = parse_value(value)
    if args.network_mode is not None:
        existing = knobs.get("network_mode")
        if existing is not None and existing != args.network_mode:
            raise ConfigurationError(
                f"--network-mode {args.network_mode} conflicts with "
                f"--knob network_mode={existing}"
            )
        knobs["network_mode"] = args.network_mode
    for flag in ("allocator_epsilon", "coarsen_quantum"):
        value = getattr(args, flag, None)
        if value is not None:
            knobs[flag] = value
    if getattr(args, "fault_plan", None) is not None:
        if "faults" in knobs:
            raise ConfigurationError(
                "--fault-plan conflicts with --knob faults=...; pick one way "
                "to inject faults"
            )
        with open(args.fault_plan) as handle:
            try:
                knobs["faults"] = json.load(handle)
            except ValueError as exc:
                raise ConfigurationError(
                    f"cannot read fault plan {args.fault_plan!r}: {exc}"
                ) from exc
    workload_args: Dict[str, object] = {}
    for override in args.workload_arg:
        key, sep, value = override.partition("=")
        if not sep:
            raise ConfigurationError(
                f"workload override {override!r} must look like key=value"
            )
        workload_args[key.strip()] = parse_value(value)
    grid: Dict[str, List[object]] = {}
    for pair in args.grid:
        key, sep, values = pair.partition("=")
        if not sep or not values:
            raise ConfigurationError(f"grid {pair!r} must look like key=v1,v2,...")
        grid[key.strip()] = [parse_value(value) for value in values.split(",")]
    scenario: Dict[str, object] = {
        "workload": args.workload,
        "cluster": args.cluster,
        "backend": args.backend,
        "iterations": args.iterations,
        "mfu": args.mfu,
    }
    if workload_args:
        scenario["workload_args"] = workload_args
    if knobs:
        scenario["knobs"] = knobs
    spec: Dict[str, object] = {"scenario": scenario}
    if grid:
        spec["grid"] = grid
    if args.fork:
        spec["fork"] = True
    return spec


def _emit_job(job: dict, args: argparse.Namespace) -> None:
    """Emit a finished job's results as rows, or the raw job record."""
    if job.get("state") == "done" and job.get("results"):
        results = [ScenarioResult.from_dict(row) for row in job["results"]]
        _emit(_result_rows(results, args.format), args.format, args.output)
        print(
            f"job {job['id']}: {job['num_points']} points, "
            f"{job['points_simulated']} simulated, cache "
            f"{job.get('points_from_cache') or {}}",
            file=sys.stderr,
        )
    else:
        _emit([job], args.format, args.output, single=True)


def _cmd_submit(args: argparse.Namespace) -> int:
    from ..service import ServiceClient

    spec = _submit_spec_from_args(args)
    client = ServiceClient(args.url)
    job = client.submit(spec)
    if args.wait:
        job = client.wait(job["id"], timeout=args.timeout, raise_on_failure=False)
    _emit_job(job, args)
    return 0 if job.get("state") != "failed" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from ..service import ServiceClient

    client = ServiceClient(args.url)
    if args.wait:
        job = client.wait(args.job, timeout=args.timeout, raise_on_failure=False)
    else:
        job = client.job(args.job)
    _emit_job(job, args)
    return 0 if job.get("state") != "failed" else 1


def _cmd_fetch(args: argparse.Namespace) -> int:
    from ..service import ServiceClient

    envelope = ServiceClient(args.url).result(args.hash)
    _emit([envelope], args.format, args.output, single=True)
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from ..core.system import reconfiguration_latency_sweep

    workload = parse_workload(args.workload, args.workload_arg)
    cluster = parse_cluster(args.cluster)
    try:
        delays = [float(value) for value in args.delays.split(",")]
    except ValueError as exc:
        raise ConfigurationError(
            f"--delays must be comma-separated seconds, got {args.delays!r}"
        ) from exc
    points = reconfiguration_latency_sweep(
        workload,
        cluster,
        delays,
        num_iterations=args.iterations,
        max_workers=args.workers,
    )
    rows = [
        {
            "reconfiguration_delay": point.reconfiguration_delay,
            "provisioning": point.provisioning,
            "iteration_time": point.iteration_time,
            "normalized_iteration_time": point.normalized_iteration_time,
            "reconfigurations_per_iteration": point.reconfigurations_per_iteration,
            "exposed_reconfig_time": point.exposed_reconfig_time,
        }
        for point in points
    ]
    _emit(rows, args.format, args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Simulate ML training workloads on photonic, electrical, "
        "fat-tree, rail-optimized, OCS, or ideal fabrics.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    backends_parser = subparsers.add_parser(
        "backends", help="list registered fabric backends"
    )
    backends_parser.add_argument("--format", choices=("json", "text"), default="text")
    backends_parser.set_defaults(func=_cmd_backends)

    run_parser = subparsers.add_parser("run", help="simulate one scenario")
    _add_scenario_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="simulate a parameter grid in parallel"
    )
    _add_scenario_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2",
        help="sweep dimension (repeatable); scenario fields or backend knobs",
    )
    sweep_parser.add_argument("--workers", type=int, default=None)
    sweep_parser.add_argument(
        "--executor", choices=("thread", "process", "serial"), default="process"
    )
    sweep_parser.add_argument(
        "--fork",
        action="store_true",
        help="delta-sweep: simulate the shared prefix of fault-schedule "
        "grids once, then branch from in-memory forks (bit-identical "
        "results, less wall-clock when schedules diverge late)",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    snapshot_parser = subparsers.add_parser(
        "snapshot",
        help="simulate part of one scenario and save a resumable checkpoint",
    )
    _add_scenario_arguments(snapshot_parser)
    snapshot_parser.add_argument(
        "--checkpoint",
        required=True,
        metavar="PATH",
        help="file the live session is spilled to",
    )
    snapshot_parser.add_argument(
        "--at",
        type=int,
        default=None,
        metavar="N",
        help="iterations to simulate before saving (default: all of "
        "--iterations, i.e. a finished-run checkpoint)",
    )
    snapshot_parser.set_defaults(func=_cmd_snapshot)

    resume_parser = subparsers.add_parser(
        "resume",
        help="load a checkpoint, finish the run, and emit its metrics",
    )
    resume_parser.add_argument(
        "--checkpoint",
        required=True,
        metavar="PATH",
        help="file written by `repro-sim snapshot` (or SimulationSession.save)",
    )
    resume_parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="total iterations to finish at (default: the scenario's own "
        "count; may exceed it to simulate further)",
    )
    resume_parser.add_argument("--format", choices=("json", "csv"), default="json")
    resume_parser.add_argument("--output", default=None)
    resume_parser.set_defaults(func=_cmd_resume)

    scale_parser = subparsers.add_parser(
        "scale",
        help="the large-scale scenario family (1k/4k/10k-endpoint fabrics)",
    )
    scale_parser.add_argument(
        "--endpoints",
        default="1000",
        help="comma-separated GPU counts (multiples of 40, e.g. 1000,4000,10000)",
    )
    scale_parser.add_argument(
        "--backends",
        default="fattree",
        help="comma-separated backends (fattree, railopt, photonic, ...)",
    )
    scale_parser.add_argument(
        "--network-mode", choices=NETWORK_MODES, default="flow"
    )
    scale_parser.add_argument(
        "--allocator-epsilon",
        type=float,
        default=None,
        metavar="EPS",
        help="flow-mode ε-approximate reallocation (0 = exact); the key to "
        "10k-endpoint-and-up fat trees",
    )
    scale_parser.add_argument(
        "--coarsen-quantum",
        type=float,
        default=None,
        metavar="SECONDS",
        help="flow-mode event coarsening quantum (0 = exact)",
    )
    scale_parser.add_argument("--iterations", type=int, default=2)
    scale_parser.add_argument("--workers", type=int, default=None)
    scale_parser.add_argument(
        "--executor", choices=("thread", "process", "serial"), default="process"
    )
    scale_parser.add_argument("--format", choices=("json", "csv"), default="json")
    scale_parser.add_argument("--output", default=None)
    scale_parser.set_defaults(func=_cmd_scale)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the persistent experiment service (HTTP API + job queue "
        "+ content-addressed result store)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8070,
        help="listening port (0 binds an ephemeral port; the ready line on "
        "stdout reports the actual URL)",
    )
    serve_parser.add_argument(
        "--store",
        default=".repro-store",
        metavar="DIR",
        help="directory of the persistent result store and quarantine log",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation worker processes (default: CPU count, capped at 8)",
    )
    serve_parser.add_argument(
        "--job-workers",
        type=int,
        default=4,
        help="jobs allowed to run concurrently",
    )
    serve_parser.add_argument(
        "--max-grid-points",
        type=int,
        default=None,
        help="largest grid one submission may expand into (default 256)",
    )
    serve_parser.add_argument(
        "--executor",
        choices=("process", "serial"),
        default="process",
        help="'serial' simulates inline on the job thread (debugging)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit", help="submit a sweep to a running experiment service"
    )
    _add_scenario_arguments(submit_parser)
    submit_parser.add_argument(
        "--url", required=True, help="service base URL, e.g. http://127.0.0.1:8070"
    )
    submit_parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2",
        help="sweep dimension (repeatable); scenario fields or backend knobs",
    )
    submit_parser.add_argument(
        "--fork",
        action="store_true",
        help="ask the service to delta-sweep fault-schedule grids",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="poll the job to completion and emit its results",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout in seconds"
    )
    submit_parser.set_defaults(func=_cmd_submit)

    status_parser = subparsers.add_parser(
        "status", help="fetch a submitted job's state (and results when done)"
    )
    status_parser.add_argument("--url", required=True)
    status_parser.add_argument("--job", required=True, metavar="JOB_ID")
    status_parser.add_argument("--wait", action="store_true")
    status_parser.add_argument("--timeout", type=float, default=600.0)
    status_parser.add_argument("--format", choices=("json", "csv"), default="json")
    status_parser.add_argument("--output", default=None)
    status_parser.set_defaults(func=_cmd_status)

    fetch_parser = subparsers.add_parser(
        "fetch",
        help="fetch one stored result envelope by configuration hash",
    )
    fetch_parser.add_argument("--url", required=True)
    fetch_parser.add_argument("--hash", required=True, metavar="CONFIG_HASH")
    fetch_parser.add_argument("--format", choices=("json", "csv"), default="json")
    fetch_parser.add_argument("--output", default=None)
    fetch_parser.set_defaults(func=_cmd_fetch)

    fig8_parser = subparsers.add_parser(
        "fig8", help="the paper's Fig. 8 reconfiguration-latency sweep"
    )
    fig8_parser.add_argument(
        "--workload", default="tiny", help=f"preset: {sorted(WORKLOAD_PRESETS)}"
    )
    fig8_parser.add_argument(
        "--workload-arg", action="append", default=[], metavar="KEY=VALUE"
    )
    fig8_parser.add_argument("--cluster", default="perlmutter:2")
    fig8_parser.add_argument(
        "--delays",
        default="1e-8,7e-6,1e-5,0.015,0.025,0.1",
        help="comma-separated OCS switching delays in seconds (Table 3)",
    )
    fig8_parser.add_argument("--iterations", type=int, default=3)
    fig8_parser.add_argument("--workers", type=int, default=None)
    fig8_parser.add_argument("--format", choices=("json", "csv"), default="json")
    fig8_parser.add_argument("--output", default=None)
    fig8_parser.set_defaults(func=_cmd_fig8)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-sim: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
