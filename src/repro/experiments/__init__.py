"""Fabric-agnostic experiment layer: backends, scenarios, runner, CLI.

This package turns the end-to-end simulator into an experiment platform:

* :mod:`repro.experiments.backends` — the :class:`FabricBackend` registry
  adapting every topology (photonic, electrical, ideal, fat-tree,
  rail-optimized, bare OCS) to the
  :class:`~repro.simulator.network.NetworkModel` interface.
* :mod:`repro.experiments.runner` — declarative :class:`Scenario` specs, the
  memoized parallel :class:`ExperimentRunner`, and grid expansion.
* :mod:`repro.experiments.contention` — bundled scenarios contrasting the
  analytic and flow-level network modes (contention-free and
  provisioned-photonic equivalence; shared-uplink incast and circuit-thrash
  divergence).
* :mod:`repro.experiments.cli` — the ``repro-sim`` console script.
"""

from .backends import (
    FabricBackend,
    NETWORK_MODES,
    all_backends,
    available_backends,
    backend,
    create_network,
    get_backend,
    register_backend,
)
from .contention import (
    DEGRADED_BACKENDS,
    DEGRADED_CONDITIONS,
    NetworkModeComparison,
    circuit_thrash_scenario,
    compare_network_modes,
    contention_free_scenario,
    degraded_fabric_grid,
    degraded_fabric_scenario,
    mini_fat_tree_cluster,
    provisioned_photonic_scenario,
    shared_uplink_incast_scenario,
)
from .runner import (
    ExperimentRunner,
    Scenario,
    ScenarioResult,
    expand_grid,
    run_scenario,
    scenario_hash,
)

__all__ = [
    "DEGRADED_BACKENDS",
    "DEGRADED_CONDITIONS",
    "ExperimentRunner",
    "FabricBackend",
    "NETWORK_MODES",
    "NetworkModeComparison",
    "Scenario",
    "ScenarioResult",
    "all_backends",
    "available_backends",
    "backend",
    "circuit_thrash_scenario",
    "compare_network_modes",
    "contention_free_scenario",
    "create_network",
    "degraded_fabric_grid",
    "degraded_fabric_scenario",
    "expand_grid",
    "get_backend",
    "mini_fat_tree_cluster",
    "provisioned_photonic_scenario",
    "register_backend",
    "run_scenario",
    "scenario_hash",
    "shared_uplink_incast_scenario",
]
