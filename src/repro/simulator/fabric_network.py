"""Topology-backed network models: packet fabrics and bare OCS rails.

The models in :mod:`repro.simulator.network` price every scale-out collective
at the NIC port line rate, which is exact for fully-provisioned rails but
ignores the internal structure of multi-tier packet fabrics.  This module adds
:class:`NetworkModel` implementations that resolve actual paths through a
:class:`~repro.topology.base.Topology` graph:

* :class:`TopologyNetworkModel` — the generic machinery: for every
  communication group it routes the group's ring hops through the fabric
  graph, counts how many concurrent ring flows share each link, and derives
  oversubscription-aware alpha–beta :class:`~repro.collectives.cost_model.LinkParameters`
  (bottleneck bandwidth divided by the sharing factor, latency of the longest
  path) fed to the same ring cost model the baselines use.
* :class:`FatTreeNetworkModel` — transfers routed through the sliced
  full-bisection fat tree of :mod:`repro.topology.fattree`.
* :class:`RailOptimizedNetworkModel` — transfers routed through the
  leaf/spine rail-optimized fabric of :mod:`repro.topology.railopt`.
* :class:`OCSReconfigurableNetworkModel` — bare OCS rails *without* the Opus
  control plane: each rail serves one circuit schedule at a time and every
  schedule change charges the full technology switching delay on the critical
  path (the "reconfigure on demand" envelope of Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..collectives.cost_model import LinkParameters
from ..errors import ConfigurationError
from ..parallelism.dag import Operation
from ..parallelism.mesh import DeviceMesh
from ..parallelism.trace import ReconfigRecord
from ..topology.base import Link, Topology, gpu_node_name
from ..topology.devices import ClusterSpec, OCSTechnology
from ..topology.fattree import FatTreeFabric, build_fat_tree_fabric
from ..topology.photonic import PhotonicRail
from ..topology.railopt import RailOptimizedFabric, build_rail_optimized_fabric
from .network import CommTiming, NetworkModel


class TopologyNetworkModel(NetworkModel):
    """Price scale-out collectives by resolving paths through a fabric graph.

    For a communication group the ring algorithm sends along consecutive
    (rank, successor) pairs; pairs inside one scale-up domain ride the
    NVLink interconnect and never touch the fabric.  Every cross-domain pair
    is routed with :meth:`~repro.topology.base.Topology.shortest_path`; the
    effective per-flow bandwidth is the minimum over all traversed links of
    ``link.bandwidth / flows_sharing_the_link``, which makes oversubscribed
    uplinks (spine tiers, partially-provisioned cores) slow the ring down
    exactly as fair sharing would.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        topology: Topology,
    ) -> None:
        super().__init__(cluster, mesh)
        self.topology = topology
        self._group_links: Dict[Tuple[int, ...], LinkParameters] = {}
        #: Topology version the group-parameter cache was built at; fault
        #: injection degrades and fails links mid-run, and bottleneck
        #: parameters computed against the healthy capacities must not
        #: survive that.
        self._group_links_version = topology.version

    def install_fault_plan(self, plan) -> None:
        """Bind a fault plan, running its injector inline (analytic mode).

        Link events mutate this model's topology; :meth:`timing` advances
        the injector to each collective's ready time before pricing, so
        degraded capacities and failed links reshape the bottleneck
        arithmetic (and reroute the ring hops) from that instant on.
        """
        from .faults import FaultInjector

        self.fault_injector = FaultInjector(plan, topology=self.topology)

    # ------------------------------------------------------------------ #
    # Path resolution
    # ------------------------------------------------------------------ #

    def _ring_paths(self, group: Tuple[int, ...]) -> List[List[Link]]:
        """Routes of the group's cross-domain ring hops, one per directed pair."""
        paths: List[List[Link]] = []
        size = len(group)
        for index, rank in enumerate(group):
            successor = group[(index + 1) % size]
            if successor == rank:
                continue
            if self.mesh.domain_of(rank) == self.mesh.domain_of(successor):
                continue  # intra-domain hop: stays on the scale-up interconnect
            paths.append(
                self.topology.shortest_path(
                    gpu_node_name(self.mesh.gpu_of(rank)),
                    gpu_node_name(self.mesh.gpu_of(successor)),
                )
            )
        return paths

    def group_link_parameters(self, group: Tuple[int, ...]) -> LinkParameters:
        """Effective alpha–beta link parameters for one communication group.

        Cached per group, keyed on the topology version: a fault event that
        degrades or fails a link invalidates every cached bottleneck.
        """
        version = self.topology.version
        if version != self._group_links_version:
            self._group_links.clear()
            self._group_links_version = version
        cached = self._group_links.get(group)
        if cached is not None:
            return cached
        paths = self._ring_paths(group)
        if not paths:
            raise ConfigurationError(
                f"group {group} is scale-out but has no cross-domain ring hop"
            )
        usage: Dict[Tuple[str, str, int], int] = {}
        for path in paths:
            for link in path:
                usage[link.key] = usage.get(link.key, 0) + 1
        bottleneck = min(
            link.bandwidth / usage[link.key] for path in paths for link in path
        )
        latency = max(self.topology.path_latency(path) for path in paths)
        parameters = LinkParameters(bandwidth=bottleneck, latency=latency)
        self._group_links[group] = parameters
        return parameters

    # ------------------------------------------------------------------ #
    # NetworkModel interface
    # ------------------------------------------------------------------ #

    def _scaleout_duration(self, operation: Operation) -> float:
        assert operation.collective is not None
        link = self.group_link_parameters(operation.collective.group)
        return self._ring.collective_time(operation.collective, link)

    def timing(self, operation: Operation, ready_time: float) -> CommTiming:
        if self.fault_injector is not None and self.fault_injector.inline:
            # List scheduling prices collectives in non-decreasing ready
            # order, so applying every fault event up to the ready time here
            # gives the analytic mode its time-domain fault semantics.
            self.fault_injector.advance_to(ready_time)
        duration = self.transfer_duration(operation)
        return CommTiming(start=ready_time, end=ready_time + duration)


class FatTreeNetworkModel(TopologyNetworkModel):
    """Scale-out transfers routed through the k-ary fat-tree fabric."""

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        fabric: Optional[FatTreeFabric] = None,
        oversubscription: float = 1.0,
    ) -> None:
        if fabric is not None and oversubscription != 1.0:
            raise ConfigurationError(
                "pass either a prebuilt fabric or an oversubscription factor; "
                "a provided fabric's link capacities are used as-is"
            )
        fabric = fabric or build_fat_tree_fabric(
            cluster, oversubscription=oversubscription
        )
        if fabric.cluster != cluster:
            raise ConfigurationError(
                "the fat-tree fabric must be built from the same cluster "
                "specification as the network model"
            )
        self.fabric = fabric
        super().__init__(cluster, mesh, fabric.topology)


class RailOptimizedNetworkModel(TopologyNetworkModel):
    """Scale-out transfers routed through the electrical rail-optimized fabric."""

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        fabric: Optional[RailOptimizedFabric] = None,
        always_spine: bool = True,
    ) -> None:
        fabric = fabric or build_rail_optimized_fabric(cluster, always_spine=always_spine)
        if fabric.cluster != cluster:
            raise ConfigurationError(
                "the rail-optimized fabric must be built from the same cluster "
                "specification as the network model"
            )
        self.fabric = fabric
        super().__init__(cluster, mesh, fabric.topology)


class OCSReconfigurableNetworkModel(NetworkModel):
    """Bare OCS rails: every circuit-schedule change blocks for the switch time.

    This is the photonic data plane *without* Opus: no profiling, no
    provisioning, no phase coalescing.  Each rail's crossbar holds the circuits
    of exactly one communication schedule (the ring over the domains of the
    group it last served); whenever a scale-out collective arrives whose
    domain set differs from what a rail has installed, the model tears the old
    circuits down, sets the new ring up, and charges the full reconfiguration
    delay before the transfer may start.  Groups whose schedule is already
    installed start immediately, so a single-group workload pays the delay
    once and an alternating multi-group workload pays it on every switch —
    the behaviour the paper's Fig. 8 "no provisioning" curve upper-bounds.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        reconfiguration_delay: Optional[float] = None,
        technology: Optional[OCSTechnology] = None,
    ) -> None:
        super().__init__(cluster, mesh)
        technology = technology or cluster.ocs
        if reconfiguration_delay is None:
            reconfiguration_delay = technology.reconfiguration_time
        if not isinstance(reconfiguration_delay, (int, float)):
            raise ConfigurationError(
                f"reconfiguration_delay must be a number in seconds, got "
                f"{reconfiguration_delay!r}"
            )
        if reconfiguration_delay < 0:
            raise ConfigurationError("reconfiguration_delay must be non-negative")
        self.reconfiguration_delay = reconfiguration_delay
        self._rails: Dict[int, PhotonicRail] = {
            rail: PhotonicRail(rail, cluster, technology=technology)
            for rail in range(cluster.num_rails)
        }
        self._installed_domains: Dict[int, Tuple[int, ...]] = {}
        self.total_reconfigurations = 0

    def rail(self, rail: int) -> PhotonicRail:
        """Return the :class:`PhotonicRail` backing rail index ``rail``."""
        if rail not in self._rails:
            raise ConfigurationError(f"rail {rail} does not exist")
        return self._rails[rail]

    def install_fault_plan(self, plan) -> None:
        """Bind a fault plan (inline); supports OCS port failures."""
        from .faults import FaultInjector

        injector = FaultInjector(plan)
        injector.on_port_failed = self._apply_port_failure
        self.fault_injector = injector

    def _apply_port_failure(self, event, now: float) -> None:
        photonic_rail = self.rail(event.rail)
        victim = photonic_rail.fail_port(event.port)
        if victim is not None:
            # The installed schedule lost a circuit; forget it so the next
            # collective reinstalls (routing around the failed port).
            self._installed_domains.pop(event.rail, None)

    def installed_domains(self, rail: int) -> Tuple[int, ...]:
        """Domains of the schedule currently installed on ``rail`` (may be empty)."""
        return self._installed_domains.get(rail, ())

    def _install(self, rail: int, domains: Tuple[int, ...]) -> int:
        """Reconfigure ``rail`` to a ring over ``domains``; return circuits changed."""
        photonic_rail = self._rails[rail]
        self._installed_domains[rail] = domains
        if len(domains) >= 3 and photonic_rail.ports_per_gpu < 2:
            # A 3+-member ring needs two ports per GPU (constraint C1/C3);
            # with one port the rail time-shares pairwise circuits instead, so
            # the whole crossbar state is replaced.
            photonic_rail.ocs.clear()
            return len(domains)
        nic_ports = tuple(range(min(2, photonic_rail.ports_per_gpu)))
        configuration = photonic_rail.ring_configuration(domains, nic_ports=nic_ports)
        torn_down, set_up = photonic_rail.ocs.apply(configuration)
        return torn_down + set_up

    def timing(self, operation: Operation, ready_time: float) -> CommTiming:
        assert operation.collective is not None
        if self.fault_injector is not None and self.fault_injector.inline:
            self.fault_injector.advance_to(ready_time)
        duration = self.transfer_duration(operation)
        if not self.is_scaleout(operation):
            return CommTiming(start=ready_time, end=ready_time + duration)
        group = operation.collective.group
        domains = self.mesh.domains_of_group(group)
        records: List[ReconfigRecord] = []
        for rail in self.mesh.rails_of_group(group):
            if self._installed_domains.get(rail) == domains:
                continue
            changed = self._install(rail, domains)
            self.total_reconfigurations += 1
            records.append(
                ReconfigRecord(
                    rail=rail,
                    start=ready_time,
                    end=ready_time + self.reconfiguration_delay,
                    provisioned=False,
                    blocking=self.reconfiguration_delay,
                    group_name=operation.collective.parallelism or "",
                    num_circuits_changed=changed,
                )
            )
        # Rails switch in parallel, so one delay covers all of them.
        start = ready_time + (self.reconfiguration_delay if records else 0.0)
        return CommTiming(start=start, end=start + duration, reconfigs=tuple(records))
