"""Multipath routing policies for packet-fabric flow mode.

Static packet fabrics (fat tree, rail-optimized, fully-connected electrical)
route every transfer on one deterministic shortest path.  This module adds
the alternative policies behind the ``routing_policy`` knob:

* ``single`` — today's behaviour, handled entirely by the network model's
  existing route table (this module is not even instantiated);
* ``ecmp`` — every flow picks deterministically, by an integer hash of its
  (source, destination, step, position) coordinates, from the *equal-cost
  path set* enumerated by
  :meth:`~repro.topology.base.Topology.equal_cost_paths`;
* ``adaptive`` — every flow picks the least-congested equal-cost path at its
  start instant, read from the flow simulator's live per-link occupancy
  (QSPN-style congestion-aware route choice);
* ``spray`` — every transfer is split across ``k`` equal-cost paths as ``k``
  sub-flows whose sizes sum exactly to the transfer size; the step's
  completion group recombines them (the step finishes when the last
  sub-flow drains).

Determinism is load-bearing: the ECMP hash is a fixed integer mix (never
Python's per-process-randomized ``hash``), the path sets come out of the
topology in natural-sorted order, and the adaptive tie-break is (congestion,
enumeration index).  Every cache in :class:`PolicyRouter` is keyed on the
topology version, so circuit installs, faults, and degradations flush stale
path sets automatically.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..errors import SimulationError, TopologyError
from ..topology.base import Link, gpu_node_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..collectives.schedule import Schedule, Transfer
    from .flow_network import FlowNetworkModel

#: Every accepted ``routing_policy`` knob value.
ROUTING_POLICIES = ("single", "ecmp", "adaptive", "spray")

#: Cap on the enumerated equal-cost set per pair.  Fat trees expose one path
#: per core choice, so this covers realistic fan-outs while bounding the
#: enumeration on pathological graphs; truncation keeps the natural-sorted
#: prefix, so it is deterministic too.
DEFAULT_MAX_PATHS = 8

#: Sub-flows a sprayed transfer is split into (clamped to the equal-cost
#: set size, so a single-path pair degenerates to an ordinary flow).
DEFAULT_SPRAY_WAYS = 4

_MASK64 = (1 << 64) - 1


def _mix(*values: int) -> int:
    """Deterministic 64-bit integer mix (splitmix-style).

    Python's builtin ``hash`` is randomized per process for strings and must
    never reach a path choice; this mix is a pure function of its integer
    inputs, so ECMP selections replay bit-for-bit across runs and machines.
    """
    state = 0x9E3779B97F4A7C15
    for value in values:
        state = ((state ^ (value & _MASK64)) * 0xBF58476D1CE4E5B9) & _MASK64
        state ^= state >> 31
    return state


def _name_mix(src: str, dst: str) -> int:
    """Stable hash of a node-name pair (for policy-aware fault reroutes)."""
    return zlib.crc32(f"{src}->{dst}".encode("utf-8"))


class _PolicyResolver:
    """Deferred per-flow route choice under a routing policy.

    The picklable sibling of :class:`~repro.simulator.flow_network._RouteResolver`:
    adaptive flows (and any policy-routed flow under an active fault plan)
    resolve their path at the flow's start instant, against the live
    topology and — for adaptive — the live link occupancy.  ``salt`` and
    ``way`` replay the same deterministic choice a concrete item would have
    embedded, so switching to deferred resolution changes *when* the route
    is read, never *which* route a given policy picks from a given state.
    """

    __slots__ = ("router", "src", "dst", "salt", "way")

    def __init__(
        self, router: "PolicyRouter", src: int, dst: int, salt: int, way: int
    ) -> None:
        self.router = router
        self.src = src
        self.dst = dst
        self.salt = salt
        self.way = way

    def __call__(self) -> Tuple[Link, ...]:
        return self.router.resolve(self.src, self.dst, self.salt, self.way)

    def __getstate__(self):
        return (self.router, self.src, self.dst, self.salt, self.way)

    def __setstate__(self, state):
        self.router, self.src, self.dst, self.salt, self.way = state


class PolicyRouter:
    """Chooses concrete flow paths for one network model under a policy.

    Owns the per-pair equal-cost path sets (version-keyed, flushed whenever
    the topology changes) and turns a schedule's transfers into the
    ``(path_or_resolver, size)`` item lists the flow simulator injects.  The
    path tuples are shared across flows, steps, and iterations, so the
    simulator's identity-anchored rate memos keep hitting exactly as they do
    under single-path routing.
    """

    def __init__(
        self,
        model: "FlowNetworkModel",
        policy: str,
        max_paths: int = DEFAULT_MAX_PATHS,
        spray_ways: int = DEFAULT_SPRAY_WAYS,
    ) -> None:
        if policy not in ROUTING_POLICIES:
            raise SimulationError(
                f"unknown routing policy {policy!r}; expected one of "
                f"{', '.join(ROUTING_POLICIES)}"
            )
        self.model = model
        self.policy = policy
        self.max_paths = int(max_paths)
        self.spray_ways = int(spray_ways)
        #: (src_rank, dst_rank) -> equal-cost path tuple-of-tuples.
        self._rank_sets: Dict[Tuple[int, int], Tuple[Tuple[Link, ...], ...]] = {}
        #: (src_node, dst_node) -> same, for name-addressed fault reroutes.
        self._node_sets: Dict[Tuple[str, str], Tuple[Tuple[Link, ...], ...]] = {}
        self._sets_version = model.topology.version

    # ------------------------------------------------------------------ #
    # Path sets
    # ------------------------------------------------------------------ #

    def _check_version(self) -> None:
        version = self.model.topology.version
        if version != self._sets_version:
            self._rank_sets.clear()
            self._node_sets.clear()
            self._sets_version = version

    def _node_set(self, src: str, dst: str) -> Tuple[Tuple[Link, ...], ...]:
        """Equal-cost set between two node names (raises ``TopologyError``)."""
        key = (src, dst)
        paths = self._node_sets.get(key)
        if paths is None:
            paths = tuple(
                self.model.topology.equal_cost_paths(
                    src, dst, max_paths=self.max_paths
                )
            )
            self._node_sets[key] = paths
        return paths

    def path_set(self, src_rank: int, dst_rank: int) -> Tuple[Tuple[Link, ...], ...]:
        """Equal-cost set between two ranks' GPUs (version-keyed cache)."""
        self._check_version()
        key = (src_rank, dst_rank)
        paths = self._rank_sets.get(key)
        if paths is None:
            mesh = self.model.mesh
            src = gpu_node_name(mesh.gpu_of(src_rank))
            dst = gpu_node_name(mesh.gpu_of(dst_rank))
            try:
                paths = self._node_set(src, dst)
            except TopologyError as exc:
                raise SimulationError(
                    f"no route from rank {src_rank} to rank {dst_rank} on "
                    f"{self.model.topology.name!r}: {exc}"
                ) from exc
            self._rank_sets[key] = paths
        return paths

    # ------------------------------------------------------------------ #
    # Choice
    # ------------------------------------------------------------------ #

    def resolve(
        self, src_rank: int, dst_rank: int, salt: int, way: int = 0
    ) -> Tuple[Link, ...]:
        """The policy's path for one flow of the (src, dst) pair.

        ``salt`` discriminates flows of the same pair (step index and
        position within the step), ``way`` a sprayed transfer's sub-flow.
        """
        paths = self.path_set(src_rank, dst_rank)
        count = len(paths)
        if count == 1:
            return paths[0]
        if self.policy == "adaptive":
            return self._least_congested(paths)
        return paths[(_mix(src_rank, dst_rank, salt) + way) % count]

    def reroute(self, src: str, dst: str) -> Tuple[Link, ...]:
        """Policy-aware replacement route for a link-failure casualty.

        Installed as :attr:`FlowSimulator.route_policy`, so a flow rerouted
        around a dead link stays under the run's routing policy instead of
        collapsing onto the deterministic shortest path.  Addressed by node
        names (the simulator only knows the flow's endpoints); lets
        ``TopologyError`` propagate so the simulator can convert an
        unroutable casualty into its typed ``LinkFailedError``.
        """
        self._check_version()
        paths = self._node_set(src, dst)
        count = len(paths)
        if count == 1:
            return paths[0]
        if self.policy == "adaptive":
            return self._least_congested(paths)
        return paths[_name_mix(src, dst) % count]

    def _least_congested(
        self, paths: Sequence[Tuple[Link, ...]]
    ) -> Tuple[Link, ...]:
        """The path minimizing (worst link occupancy, total occupancy, index).

        Occupancy is the live active-flow count per link from the simulator's
        user registry — maintained on every code path (unlike rate sums,
        which only exist under ε-approximation) and identical between exact
        and replayed batches, so the choice is deterministic.
        """
        occupancy = self.model.simulator.link_occupancy
        best_path = paths[0]
        best_rank: Tuple[int, int, int] = None  # type: ignore[assignment]
        for index, path in enumerate(paths):
            worst = 0
            total = 0
            for link in path:
                count = occupancy(link.key)
                if count > worst:
                    worst = count
                total += count
            rank = (worst, total, index)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_path = path
        return best_path

    # ------------------------------------------------------------------ #
    # Item expansion
    # ------------------------------------------------------------------ #

    def step_items_for(
        self, steps: "Schedule", deferred: bool
    ) -> List[List[Tuple[object, float]]]:
        """Per-step ``(path_or_resolver, size)`` item lists for a schedule.

        ``deferred`` (an active fault plan) switches concrete routes to
        resolvers so every flow re-reads the live topology at its start
        instant — same contract as single-path routing under faults.
        """
        items: List[List[Tuple[object, float]]] = []
        for step_index, step in enumerate(steps):
            row: List[Tuple[object, float]] = []
            for position, transfer in enumerate(step.transfers):
                row.extend(
                    self.transfer_items(transfer, step_index, position, deferred)
                )
            items.append(row)
        return items

    def transfer_items(
        self, transfer: "Transfer", step_index: int, position: int, deferred: bool
    ) -> List[Tuple[object, float]]:
        """The flow items realizing one transfer under this policy."""
        src, dst, size = transfer.src, transfer.dst, transfer.size_bytes
        salt = _mix(step_index, position)
        if self.policy == "spray":
            ways = min(self.spray_ways, len(self.path_set(src, dst)))
            if ways > 1:
                # share * (ways - 1) + remainder == size exactly in floats:
                # the last sub-flow absorbs every rounding crumb.
                share = size / ways
                remainder = size - share * (ways - 1)
                return [
                    (
                        self._route_item(src, dst, salt, way, deferred),
                        share if way < ways - 1 else remainder,
                    )
                    for way in range(ways)
                ]
        return [(self._route_item(src, dst, salt, 0, deferred), size)]

    def _route_item(
        self, src: int, dst: int, salt: int, way: int, deferred: bool
    ) -> object:
        if self.policy == "adaptive" or deferred:
            return _PolicyResolver(self, src, dst, salt, way)
        return self.resolve(src, dst, salt, way)
