"""Network models: how long a communication operation takes and when it may start.

The DAG executor is network-agnostic: for every communication operation it
asks a :class:`NetworkModel` when the transfer may begin (given the time the
ranks are ready) and how long it takes.  Three implementations matter:

* :class:`ElectricalRailNetworkModel` — the baseline: full rail connectivity,
  transfers start as soon as the ranks are ready (this is also the
  "reconfiguration latency 0" point of Fig. 8).
* :class:`PhotonicRailNetworkModel` (defined in :mod:`repro.core.network`) —
  transfers may additionally wait for the Opus controller to install the
  required circuits; reconfigurations are recorded in the trace.
* :class:`IdealNetworkModel` — infinite bandwidth, for isolating compute time
  in tests.

All models price the transfer itself with the same ring alpha–beta cost model;
the paper's simulation likewise assumes equal per-port bandwidth for electrical
and optical rails (§4.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..collectives.cost_model import LinkParameters, RingCostModel, TreeCostModel
from ..errors import ConfigurationError
from ..parallelism.dag import Operation
from ..parallelism.mesh import DeviceMesh
from ..parallelism.trace import ReconfigRecord
from ..topology.devices import ClusterSpec
from .snapshot import Snapshottable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultInjector, FaultPlan


@dataclass(frozen=True)
class CommTiming:
    """When a communication operation starts and ends, plus any reconfigurations."""

    start: float
    end: float
    reconfigs: Tuple[ReconfigRecord, ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError("a transfer cannot end before it starts")

    @property
    def duration(self) -> float:
        """Transfer duration in seconds."""
        return self.end - self.start


class NetworkModel(Snapshottable, ABC):
    """Timing oracle for communication operations.

    Every model is snapshottable: its whole state — including any bound
    fault injector and, for flow models, the shared simulator — captures
    into a :class:`~repro.simulator.snapshot.SimState` and restores (or
    forks) with bit-for-bit identical continuation.
    """

    def __init__(self, cluster: ClusterSpec, mesh: DeviceMesh) -> None:
        self.cluster = cluster
        self.mesh = mesh
        self._scaleout_link = LinkParameters(
            bandwidth=cluster.scaleout_port_bandwidth, latency=2e-6
        )
        self._scaleup_link = LinkParameters(
            bandwidth=cluster.scaleup.interconnect_bandwidth,
            latency=cluster.scaleup.interconnect_latency,
        )
        self._ring = RingCostModel()
        self._tree = TreeCostModel()
        self._scaleout_groups: dict = {}
        #: Bound fault injector (``None`` on healthy runs).  Set by
        #: :meth:`install_fault_plan`; the DAG executor reads it for compute
        #: slowdowns and trace records.
        self.fault_injector: Optional["FaultInjector"] = None

    def install_fault_plan(self, plan: "FaultPlan") -> None:
        """Bind a fault plan to this model.

        The base implementation supports plans without fabric events
        (compute slowdowns only): the injector runs inline and the executor
        settles it against each iteration's end time.  Models with a routed
        topology or a circuit control plane override this to wire link and
        OCS-port events into their own machinery.
        """
        from .faults import FaultInjector

        self.fault_injector = FaultInjector(plan)

    def extend_fault_plan(self, plan: "FaultPlan") -> None:
        """Install additional fault events on a live (possibly mid-run) model.

        This is how a forked simulation diverges from the shared prefix it
        was copied from.  With no plan installed yet it is a plain
        (mid-run) :meth:`install_fault_plan`; otherwise the live injector
        gains the new events while keeping its applied-event cursor.  Flow
        models override this to also invalidate their route caches and
        schedule the events on the flow engine.
        """
        if plan.is_empty:
            return
        if self.fault_injector is None:
            self.install_fault_plan(plan)
        else:
            self.fault_injector.extend(plan.events)

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #

    def is_scaleout(self, operation: Operation) -> bool:
        """Whether the operation's group spans more than one scale-up domain.

        Memoized per group: the executor asks on every scheduling pass, and
        group membership is immutable for the lifetime of a mesh.
        """
        assert operation.collective is not None
        group = operation.collective.group
        cached = self._scaleout_groups.get(group)
        if cached is None:
            cached = self.mesh.is_scaleout_group(group)
            self._scaleout_groups[group] = cached
        return cached

    def transfer_duration(self, operation: Operation) -> float:
        """Duration of the data transfer itself (excluding circuit waits)."""
        assert operation.collective is not None
        if self.is_scaleout(operation):
            return self._scaleout_duration(operation)
        return self._ring.collective_time(operation.collective, self._scaleup_link)

    def _scaleout_duration(self, operation: Operation) -> float:
        assert operation.collective is not None
        return self._ring.collective_time(operation.collective, self._scaleout_link)

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #

    @abstractmethod
    def timing(self, operation: Operation, ready_time: float) -> CommTiming:
        """Return when ``operation`` starts and ends, given rank readiness."""

    def on_comm_end(self, operation: Operation, end_time: float) -> None:
        """Hook invoked by the executor when a communication finishes."""

    def on_iteration_start(self, iteration: int, time: float) -> None:
        """Hook invoked by the executor at the start of every iteration."""

    def on_iteration_end(self, iteration: int, time: float) -> None:
        """Hook invoked by the executor at the end of every iteration."""


class ElectricalRailNetworkModel(NetworkModel):
    """Packet-switched rails: full connectivity, no circuit waits.

    ``use_tree_collectives`` lets large scale-out groups use latency-optimized
    tree algorithms, which full-connectivity fabrics permit but degree-limited
    photonic rails do not (constraint C1).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        use_tree_collectives: bool = False,
    ) -> None:
        super().__init__(cluster, mesh)
        self.use_tree_collectives = use_tree_collectives

    def _scaleout_duration(self, operation: Operation) -> float:
        assert operation.collective is not None
        if self.use_tree_collectives and operation.collective.group_size > 2:
            group_size = operation.collective.group_size
            if group_size & (group_size - 1) == 0:
                return self._tree.collective_time(
                    operation.collective, self._scaleout_link
                )
        return super()._scaleout_duration(operation)

    def timing(self, operation: Operation, ready_time: float) -> CommTiming:
        duration = self.transfer_duration(operation)
        return CommTiming(start=ready_time, end=ready_time + duration)


class IdealNetworkModel(NetworkModel):
    """Zero-cost network: every transfer completes instantly.

    Used in tests to isolate compute-time effects and to compute the
    communication-free lower bound of an iteration.
    """

    def timing(self, operation: Operation, ready_time: float) -> CommTiming:
        return CommTiming(start=ready_time, end=ready_time)
