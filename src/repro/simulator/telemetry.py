"""Link telemetry: operational counters from the flow simulator.

The O&M-metrics line of work shows congestion hotspots can be *detected*
from operational counters alone — no application cooperation, no packet
inspection.  The flow-level simulator already computes the ground truth
those counters approximate (per-link allocated rate and active-flow count,
refreshed on every allocation pass), so the telemetry loop here is the
simulation-side analogue:

* :class:`LinkTelemetry` samples per-link utilization (allocated rate over
  live capacity) and queue pressure (active-flow count) into rolling windows
  and exponentially-weighted moving averages;
* :class:`HotspotDetector` flags links whose smoothed utilization has sat
  above a threshold for enough consecutive samples — the EWMA-threshold
  detector of the O&M paper.

Samples are driven from the network model's collective-completion hook (a
deterministic, replayable instant), never from wall-clock timers, so a
telemetry-driven run is exactly reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Tuple

from .flows import LinkKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flows import FlowSimulator

#: Default EWMA smoothing factor (weight of the newest sample).
DEFAULT_ALPHA = 0.25

#: Default rolling-window length per link, in samples.
DEFAULT_WINDOW = 32


class LinkTelemetry:
    """Rolling per-link utilization / queue-pressure collector.

    One :meth:`sample` call walks the simulator's live link registry once.
    Links with no active flows decay toward zero instead of going stale —
    a hotspot that drained stops being a hotspot within a few samples.
    """

    def __init__(
        self,
        simulator: "FlowSimulator",
        alpha: float = DEFAULT_ALPHA,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"telemetry alpha must be in (0, 1], got {alpha!r}")
        if window < 1:
            raise ValueError(f"telemetry window must be positive, got {window!r}")
        self.simulator = simulator
        self.alpha = float(alpha)
        self.window = int(window)
        #: Smoothed utilization (allocated rate / capacity) per link.
        self.utilization: Dict[LinkKey, float] = {}
        #: Smoothed active-flow count per link.
        self.pressure: Dict[LinkKey, float] = {}
        #: Rolling (time, utilization, flows) windows per link.
        self.windows: Dict[LinkKey, Deque[Tuple[float, float, int]]] = {}
        #: Consecutive samples each link has spent at-or-above any observer's
        #: threshold is the observer's business; the collector only counts
        #: how many samples it has ever taken per link.
        self.sample_counts: Dict[LinkKey, int] = {}
        #: Total samples taken.
        self.samples = 0

    def sample(self, now: float) -> None:
        """Take one sample of every in-use link at simulated time ``now``."""
        alpha = self.alpha
        decay = 1.0 - alpha
        topology = self.simulator.topology
        seen: List[LinkKey] = []
        for key, rate, flows in self.simulator.link_loads():
            link_id = key[2]
            if topology is None or not topology.has_link(link_id):
                continue  # torn/failed links carry no capacity to utilize
            capacity = topology.link(link_id).bandwidth
            utilization = rate / capacity if capacity > 0.0 else 0.0
            seen.append(key)
            previous = self.utilization.get(key)
            if previous is None:
                self.utilization[key] = utilization
                self.pressure[key] = float(flows)
                self.windows[key] = deque(maxlen=self.window)
            else:
                self.utilization[key] = previous * decay + utilization * alpha
                self.pressure[key] = (
                    self.pressure[key] * decay + float(flows) * alpha
                )
            self.windows[key].append((now, utilization, flows))
            self.sample_counts[key] = self.sample_counts.get(key, 0) + 1
        # Idle links decay: a link absent from the registry has zero load.
        seen_set = set(seen)
        for key in self.utilization:
            if key not in seen_set:
                self.utilization[key] *= decay
                self.pressure[key] *= decay
                self.windows[key].append((now, 0.0, 0))
                self.sample_counts[key] = self.sample_counts.get(key, 0) + 1
        self.samples += 1


class HotspotDetector:
    """EWMA-threshold hotspot detection over a :class:`LinkTelemetry` feed.

    A link is a hotspot when its smoothed utilization is at or above
    ``threshold`` and the collector has at least ``min_samples`` samples for
    it — one transient spike is not a hotspot, a sustained one is.
    """

    def __init__(
        self,
        telemetry: LinkTelemetry,
        threshold: float = 0.9,
        min_samples: int = 2,
    ) -> None:
        if threshold <= 0.0:
            raise ValueError(f"hotspot threshold must be positive, got {threshold!r}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be positive, got {min_samples!r}")
        self.telemetry = telemetry
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)

    def hotspots(self) -> List[LinkKey]:
        """Every current hotspot link, in sorted (deterministic) order."""
        counts = self.telemetry.sample_counts
        return sorted(
            key
            for key, value in self.telemetry.utilization.items()
            if value >= self.threshold and counts.get(key, 0) >= self.min_samples
        )
