"""Snapshot/restore/fork support: the state registry behind resumability.

Every stateful layer of the simulator — the event engine, the flow
simulator, the network models, the DAG executor, the control plane — can be
captured into a :class:`SimState` and later restored (or forked) with
bit-for-bit identical continuation.  Two mechanisms make that safe:

* **Named continuations.**  Pending engine events carry callbacks.  Bound
  methods of objects inside the captured graph serialize naturally (pickle
  and :func:`copy.deepcopy` both rebuild ``callback.__self__`` through the
  shared memo, so the copy's events call into the copy's objects).  Plain
  functions and lambdas do **not**: deepcopy treats them as atoms, so a
  closure in a forked snapshot would keep mutating the *original*
  simulation — a silent split-brain.  The registry therefore requires every
  non-method callback stored in persistent state to be a module-level
  function registered under a stable name via :func:`register_continuation`;
  the engine encodes such callbacks by name and anything unregistered is
  rejected at snapshot time with :class:`~repro.errors.SnapshotError`.

* **Whole-graph capture.**  :class:`Snapshottable.snapshot` pickles the
  object (and everything it references) into an opaque payload;
  :meth:`Snapshottable.restore` materializes that payload and adopts its
  state in place.  Restore therefore replaces the object's entire reachable
  state: snapshot and restore at the root object you care about (the
  session, a standalone simulator, a standalone engine) — restoring an
  engine that is *shared* with a live simulator would disconnect the two.

The on-disk checkpoint format (``SimulationSession.save``) wraps the same
payload in a versioned header; see ``repro.experiments.session``.
"""

from __future__ import annotations

import pickle
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import SnapshotError

#: Bumped when the meaning of a pickled payload changes incompatibly.
SNAPSHOT_FORMAT_VERSION = 1

#: name -> module-level callable usable as a persistent event callback.
_CONTINUATIONS: Dict[str, Callable[..., Any]] = {}
#: id(callable) -> name, for O(1) reverse lookups during encoding.
_CONTINUATION_NAMES: Dict[int, str] = {}


def register_continuation(name: str) -> Callable[[Callable], Callable]:
    """Register a module-level function as a named, snapshot-safe callback.

    Use as a decorator::

        @register_continuation("faults.apply_event")
        def _apply_fault_event(engine, payload):
            ...

    Registered continuations are encoded *by name* when an engine is
    snapshotted and looked up again on restore, so the snapshot stays valid
    across processes and releases (as long as the name is stable).
    """

    def decorator(func: Callable) -> Callable:
        existing = _CONTINUATIONS.get(name)
        if existing is not None and existing is not func:
            raise SnapshotError(
                f"continuation name {name!r} is already registered"
            )
        _CONTINUATIONS[name] = func
        _CONTINUATION_NAMES[id(func)] = name
        return func

    return decorator


def continuation(name: str) -> Callable[..., Any]:
    """Look up a registered continuation by name."""
    try:
        return _CONTINUATIONS[name]
    except KeyError:
        raise SnapshotError(
            f"unknown continuation {name!r}; the snapshot was written by a "
            "version that registered it, or the registering module was not "
            "imported"
        ) from None


#: Sentinel wrapper marking an encoded continuation inside serialized state.
@dataclass(frozen=True)
class _EncodedContinuation:
    name: str


def encode_callback(callback: Callable) -> object:
    """Encode one persistent event callback for serialization.

    Bound methods pass through (they serialize via the pickle/deepcopy memo,
    rebinding to the copied owner); registered module-level functions are
    replaced by a named marker; anything else — a lambda, a closure, an
    unregistered function, a ``functools.partial`` — is rejected, because it
    would either fail to pickle or silently keep referencing the original
    simulation after a fork.
    """
    if isinstance(callback, types.MethodType):
        return callback
    name = _CONTINUATION_NAMES.get(id(callback))
    if name is not None:
        return _EncodedContinuation(name)
    raise SnapshotError(
        f"event callback {callback!r} is not snapshot-safe: persistent "
        "callbacks must be bound methods or module-level functions "
        "registered with register_continuation()"
    )


def decode_callback(encoded: object) -> Callable:
    """Invert :func:`encode_callback`."""
    if isinstance(encoded, _EncodedContinuation):
        return continuation(encoded.name)
    return encoded  # a bound method, restored by the pickle/deepcopy memo


@dataclass
class SimState:
    """An opaque captured state: the unit snapshot/restore trades in.

    ``kind`` names the class that produced the state (checked on restore, so
    a topology snapshot cannot be fed to an engine), ``payload`` is a pickle
    of the captured object graph, and ``format_version`` guards against
    incompatible readers.
    """

    kind: str
    payload: bytes = field(repr=False)
    format_version: int = SNAPSHOT_FORMAT_VERSION

    def require(self, kind: str) -> None:
        """Validate that this state can restore an object of ``kind``."""
        if self.format_version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format version {self.format_version} is not "
                f"supported (this build reads version {SNAPSHOT_FORMAT_VERSION})"
            )
        if self.kind != kind:
            raise SnapshotError(
                f"cannot restore a {self.kind!r} snapshot into a {kind!r}"
            )

    def materialize(self) -> Any:
        """Unpickle the captured object graph (a fresh, independent copy)."""
        try:
            return pickle.loads(self.payload)
        except Exception as exc:  # pickle raises a zoo of error types
            raise SnapshotError(f"cannot materialize snapshot: {exc}") from exc


class Snapshottable:
    """Mixin giving a stateful object ``snapshot()`` / ``restore()`` / ``fork()``.

    The default implementation captures the whole object graph by pickling
    ``self``; subclasses with cheaper self-contained state (e.g.
    :class:`~repro.topology.base.Topology`) override ``_snapshot_payload`` /
    ``_adopt``.
    """

    @property
    def snapshot_kind(self) -> str:
        return type(self).__qualname__

    def _snapshot_payload(self) -> Any:
        return self

    def snapshot(self) -> SimState:
        """Capture the current state into an opaque :class:`SimState`."""
        try:
            payload = pickle.dumps(self._snapshot_payload(), protocol=pickle.HIGHEST_PROTOCOL)
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(
                f"cannot snapshot {self.snapshot_kind}: {exc}"
            ) from exc
        return SimState(kind=self.snapshot_kind, payload=payload)

    def _adopt(self, materialized: Any) -> None:
        """Replace this object's state with a materialized snapshot's.

        The attribute dict is *shared* (not copied) with the materialized
        object: pending event callbacks are bound methods of the
        materialized graph, so any attribute they rebind must stay visible
        through ``self`` too.
        """
        self.__dict__ = materialized.__dict__

    def restore(self, state: SimState) -> None:
        """Restore a previously captured :class:`SimState` in place.

        The restored state is a *fresh copy* — restoring does not alias the
        snapshot, so one SimState can seed many restores (that is exactly
        what fork-sweeps do with the on-disk checkpoints).
        """
        state.require(self.snapshot_kind)
        self._adopt(state.materialize())

    def fork(self) -> "Snapshottable":
        """An independent deep copy that continues bit-for-bit identically.

        Implemented as an in-memory ``snapshot()`` + ``materialize()`` round
        trip rather than ``copy.deepcopy``: it is roughly twice as fast on
        simulation-sized object graphs (deepcopy pays per-object memo dict
        overhead that the C pickler amortizes), it runs the engine's
        ``__getstate__`` validation so a fork can never smuggle a closure
        that still points at the parent, and it makes fork semantics exactly
        the checkpoint/restore semantics — a fork behaves identically to a
        state that went to disk and came back.
        """
        return self.snapshot().materialize()
