"""DAG executor: list-scheduling simulation of one or more training iterations.

The executor takes the iteration DAG (compute + communication operations with
dependencies), a compute-time model, and a network model and produces an
:class:`~repro.parallelism.trace.IterationTrace`.  Scheduling semantics:

* every rank's GPU executes **compute** operations one at a time;
* **communication** operations occupy the ranks' scale-out NIC (or the
  scale-up interconnect for intra-domain groups), one at a time per rank, but
  may overlap with compute on the same rank — this is how FSDP parameter
  AllGathers overlap the forward pass exactly as the paper describes;
* an operation starts at the earliest time at which all its dependencies have
  finished and its resources are free; the network model may additionally
  delay the start of a communication until the required circuits are up.

Scheduling is greedy "earliest-start-first" list scheduling over the ready
set, which is deterministic and — given that the DAG already encodes the 1F1B
ordering — faithful to how collectives are issued per CUDA stream in the real
system.  Communication order per communication group follows issue order,
which is the FIFO the paper's FC-FS control-plane policy relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import DeadlockError, SimulationError
from ..parallelism.config import WorkloadConfig
from ..parallelism.dag import IterationDAG, OpKind, Operation
from ..parallelism.mesh import DeviceMesh
from ..parallelism.trace import (
    CommRecord,
    ComputeRecord,
    IterationTrace,
    TrainingTrace,
)
from ..collectives.primitives import total_traffic_bytes
from ..topology.devices import ClusterSpec
from .compute import ComputeTimeModel
from .network import CommTiming, NetworkModel


@dataclass
class SimulationConfig:
    """Executor knobs.

    Attributes
    ----------
    mfu:
        Model FLOPs utilization for the compute model.
    compute_jitter:
        Relative standard deviation of a lognormal-ish multiplicative jitter
        applied to compute durations (0 disables jitter).  The paper's window
        CDF (Fig. 4a) is taken over 10 iterations of a real system whose
        compute times vary slightly; jitter reproduces that spread.
    seed:
        Seed for the jitter random number generator.
    """

    mfu: float = 0.40
    compute_jitter: float = 0.0
    seed: int = 0


class DAGExecutor:
    """Simulates the execution of an iteration DAG on a cluster."""

    def __init__(
        self,
        dag: IterationDAG,
        cluster: ClusterSpec,
        network: NetworkModel,
        compute_model: Optional[ComputeTimeModel] = None,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.dag = dag
        self.cluster = cluster
        self.network = network
        self.config = config or SimulationConfig()
        self.compute_model = compute_model or ComputeTimeModel(
            gpu=cluster.scaleup.gpu, mfu=self.config.mfu
        )
        self.mesh: DeviceMesh = dag.mesh
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run_iteration(self, iteration: int = 0, start_time: float = 0.0) -> IterationTrace:
        """Simulate one iteration starting at ``start_time``."""
        trace = IterationTrace(iteration=iteration)
        self.network.on_iteration_start(iteration, start_time)

        operations = self.dag.operations()
        remaining_deps: Dict[int, int] = {
            op.op_id: len(op.deps) for op in operations
        }
        dep_end: Dict[int, float] = {}
        successors: Dict[int, List[int]] = {op.op_id: [] for op in operations}
        for op in operations:
            for dep in op.deps:
                successors[dep].append(op.op_id)

        gpu_free: Dict[int, float] = {}
        nic_free: Dict[int, float] = {}
        scaleup_free: Dict[int, float] = {}

        ready: Set[int] = {
            op.op_id for op in operations if remaining_deps[op.op_id] == 0
        }
        completed = 0
        total = len(operations)

        while ready:
            # Pick the ready operation with the earliest feasible start time;
            # break ties by op id (issue order).
            best_id = None
            best_start = None
            for op_id in ready:
                op = self.dag.operation(op_id)
                candidate = self._earliest_start(
                    op, dep_end, gpu_free, nic_free, scaleup_free, start_time
                )
                if best_start is None or (candidate, op_id) < (best_start, best_id):
                    best_start = candidate
                    best_id = op_id
            assert best_id is not None and best_start is not None
            ready.discard(best_id)
            operation = self.dag.operation(best_id)

            if operation.kind == OpKind.COMPUTE:
                end = self._execute_compute(operation, best_start, gpu_free, trace)
            else:
                end = self._execute_comm(
                    operation, best_start, nic_free, scaleup_free, trace
                )
            dep_end[best_id] = end
            completed += 1
            for successor in successors[best_id]:
                remaining_deps[successor] -= 1
                if remaining_deps[successor] == 0:
                    ready.add(successor)

        if completed != total:
            raise DeadlockError(
                f"executor finished only {completed}/{total} operations; "
                "the DAG has unreachable operations"
            )
        self.network.on_iteration_end(iteration, trace.end)
        return trace

    def run_training(self, num_iterations: int, start_time: float = 0.0) -> TrainingTrace:
        """Simulate ``num_iterations`` back-to-back iterations.

        The network model's state (learned traffic profiles, circuit state)
        carries across iterations, matching Opus's profile-then-provision
        behaviour: iteration 0 is the profiling iteration, later iterations
        benefit from provisioning.
        """
        if num_iterations <= 0:
            raise SimulationError("num_iterations must be positive")
        training = TrainingTrace()
        current = start_time
        for iteration in range(num_iterations):
            trace = self.run_iteration(iteration=iteration, start_time=current)
            training.add(trace)
            current = trace.end
        return training

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _earliest_start(
        self,
        operation: Operation,
        dep_end: Dict[int, float],
        gpu_free: Dict[int, float],
        nic_free: Dict[int, float],
        scaleup_free: Dict[int, float],
        start_time: float,
    ) -> float:
        ready = start_time
        for dep in operation.deps:
            ready = max(ready, dep_end[dep])
        if operation.kind == OpKind.COMPUTE:
            for rank in operation.ranks:
                ready = max(ready, gpu_free.get(rank, start_time))
        else:
            resource = nic_free if self.network.is_scaleout(operation) else scaleup_free
            for rank in operation.ranks:
                ready = max(ready, resource.get(rank, start_time))
        return ready

    def _compute_duration(self, operation: Operation) -> float:
        duration = self.compute_model.duration(operation)
        if self.config.compute_jitter > 0:
            factor = self._rng.lognormvariate(0.0, self.config.compute_jitter)
            duration *= factor
        return duration

    def _execute_compute(
        self,
        operation: Operation,
        start: float,
        gpu_free: Dict[int, float],
        trace: IterationTrace,
    ) -> float:
        end = start + self._compute_duration(operation)
        for rank in operation.ranks:
            gpu_free[rank] = end
        trace.compute_records.append(
            ComputeRecord(
                op_id=operation.op_id,
                ranks=operation.ranks,
                start=start,
                end=end,
                phase=operation.phase,
                tag=operation.tag,
            )
        )
        return end

    def _execute_comm(
        self,
        operation: Operation,
        ready_time: float,
        nic_free: Dict[int, float],
        scaleup_free: Dict[int, float],
        trace: IterationTrace,
    ) -> float:
        assert operation.collective is not None
        timing: CommTiming = self.network.timing(operation, ready_time)
        scaleout = self.network.is_scaleout(operation)
        resource = nic_free if scaleout else scaleup_free
        for rank in operation.ranks:
            resource[rank] = timing.end
        rails: Tuple[int, ...] = ()
        if self.mesh.cluster is not None and scaleout:
            rails = self.mesh.rails_of_group(operation.collective.group)
        trace.comm_records.append(
            CommRecord(
                op_id=operation.op_id,
                collective=operation.collective.collective,
                parallelism=operation.collective.parallelism,
                group=operation.collective.group,
                rails=rails,
                size_bytes=operation.collective.size_bytes,
                total_bytes=total_traffic_bytes(operation.collective),
                start=timing.start,
                end=timing.end,
                phase=operation.phase,
                tag=operation.tag,
                scaleout=scaleout,
            )
        )
        trace.reconfig_records.extend(timing.reconfigs)
        self.network.on_comm_end(operation, timing.end)
        return timing.end
