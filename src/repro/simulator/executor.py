"""DAG executor: list-scheduling simulation of one or more training iterations.

The executor takes the iteration DAG (compute + communication operations with
dependencies), a compute-time model, and a network model and produces an
:class:`~repro.parallelism.trace.IterationTrace`.  Scheduling semantics:

* every rank's GPU executes **compute** operations one at a time;
* **communication** operations occupy the ranks' scale-out NIC (or the
  scale-up interconnect for intra-domain groups), one at a time per rank, but
  may overlap with compute on the same rank — this is how FSDP parameter
  AllGathers overlap the forward pass exactly as the paper describes;
* an operation starts at the earliest time at which all its dependencies have
  finished and its resources are free; the network model may additionally
  delay the start of a communication until the required circuits are up.

Scheduling is greedy "earliest-start-first" list scheduling over the ready
set, which is deterministic and — given that the DAG already encodes the 1F1B
ordering — faithful to how collectives are issued per CUDA stream in the real
system.  Communication order per communication group follows issue order,
which is the FIFO the paper's FC-FS control-plane policy relies on.

The executor supports two kinds of network models:

* **analytic** models answer ``timing()`` synchronously with a closed-form
  alpha–beta estimate, so an operation's end is known the moment it is
  scheduled;
* **flow-level** models (:class:`~repro.simulator.flow_network.FlowNetworkModel`,
  ``flow_mode = True``) expand scale-out collectives into point-to-point
  transfers inside a shared max–min fair flow simulator, so a collective's
  end depends on which other collectives are concurrently on the wire.  For
  these the executor interleaves its scheduling decisions with network
  events: a collective stays "in flight" (its ranks' NICs locked) until the
  simulator reaches its completion, and no operation is committed at a start
  time that network events could still precede.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import DeadlockError, SimulationError
from ..parallelism.dag import IterationDAG, OpKind, Operation
from ..parallelism.mesh import DeviceMesh
from ..parallelism.trace import (
    CommRecord,
    ComputeRecord,
    IterationTrace,
    ReconfigRecord,
    TrainingTrace,
)
from ..collectives.primitives import total_traffic_bytes
from ..topology.devices import ClusterSpec
from .compute import ComputeTimeModel
from .network import CommTiming, NetworkModel


@dataclass
class SimulationConfig:
    """Executor knobs.

    Attributes
    ----------
    mfu:
        Model FLOPs utilization for the compute model.
    compute_jitter:
        Relative standard deviation of a lognormal-ish multiplicative jitter
        applied to compute durations (0 disables jitter).  The paper's window
        CDF (Fig. 4a) is taken over 10 iterations of a real system whose
        compute times vary slightly; jitter reproduces that spread.
    seed:
        Seed for the jitter random number generator.
    """

    mfu: float = 0.40
    compute_jitter: float = 0.0
    seed: int = 0


@dataclass
class _ScheduleState:
    """Mutable bookkeeping shared by the two scheduling loops."""

    remaining_deps: Dict[int, int]
    dep_end: Dict[int, float]
    successors: Dict[int, List[int]]
    gpu_free: Dict[int, float]
    nic_free: Dict[int, float]
    scaleup_free: Dict[int, float]
    ready: Set[int]
    start_time: float
    #: Ops added to ``ready`` since the flow loop last drained this list;
    #: lets its priority queue ingest newcomers without rescanning ``ready``.
    newly_ready: List[int] = field(default_factory=list)

    def finish(self, op_id: int, end: float) -> None:
        """Record ``op_id``'s end and move newly-unblocked successors to ready."""
        self.dep_end[op_id] = end
        for successor in self.successors[op_id]:
            self.remaining_deps[successor] -= 1
            if self.remaining_deps[successor] == 0:
                self.ready.add(successor)
                self.newly_ready.append(successor)


class DAGExecutor:
    """Simulates the execution of an iteration DAG on a cluster."""

    def __init__(
        self,
        dag: IterationDAG,
        cluster: ClusterSpec,
        network: NetworkModel,
        compute_model: Optional[ComputeTimeModel] = None,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.dag = dag
        self.cluster = cluster
        self.network = network
        self.config = config or SimulationConfig()
        self.compute_model = compute_model or ComputeTimeModel(
            gpu=cluster.scaleup.gpu, mfu=self.config.mfu
        )
        self.mesh: DeviceMesh = dag.mesh
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run_iteration(self, iteration: int = 0, start_time: float = 0.0) -> IterationTrace:
        """Simulate one iteration starting at ``start_time``."""
        trace = IterationTrace(iteration=iteration)
        self.network.on_iteration_start(iteration, start_time)

        operations = self.dag.operations()
        state = _ScheduleState(
            remaining_deps={op.op_id: len(op.deps) for op in operations},
            dep_end={},
            successors={op.op_id: [] for op in operations},
            gpu_free={},
            nic_free={},
            scaleup_free={},
            ready={op.op_id for op in operations if not op.deps},
            start_time=start_time,
        )
        for op in operations:
            for dep in op.deps:
                state.successors[dep].append(op.op_id)
        total = len(operations)

        if getattr(self.network, "flow_mode", False):
            completed = self._schedule_flow(state, trace)
        else:
            completed = self._schedule_analytic(state, trace)

        if completed != total:
            raise DeadlockError(
                f"executor finished only {completed}/{total} operations; "
                "the DAG has unreachable operations"
            )
        self.network.on_iteration_end(iteration, trace.end)
        injector = getattr(self.network, "fault_injector", None)
        if injector is not None:
            if injector.inline:
                # Analytic models advance the injector as collectives are
                # priced; settle any events the last pricing call left behind
                # so fault application is deterministic per iteration.
                injector.advance_to(trace.end)
            trace.fault_records.extend(injector.pop_records())
        return trace

    def _schedule_analytic(self, state: "_ScheduleState", trace: IterationTrace) -> int:
        """List scheduling against an analytic network model (synchronous ends)."""
        completed = 0
        ready = state.ready
        while ready:
            # Pick the ready operation with the earliest feasible start time;
            # break ties by op id (issue order).
            best_id = None
            best_start = None
            for op_id in ready:
                op = self.dag.operation(op_id)
                candidate = self._earliest_start(op, state)
                if best_start is None or (candidate, op_id) < (best_start, best_id):
                    best_start = candidate
                    best_id = op_id
            assert best_id is not None and best_start is not None
            ready.discard(best_id)
            operation = self.dag.operation(best_id)

            if operation.kind == OpKind.COMPUTE:
                end = self._execute_compute(operation, best_start, state.gpu_free, trace)
            else:
                end = self._execute_comm(operation, best_start, state, trace)
            state.finish(operation.op_id, end)
            completed += 1
        return completed

    def _schedule_flow(self, state: "_ScheduleState", trace: IterationTrace) -> int:
        """Event-interleaved list scheduling against a flow-level network model.

        Scale-out collectives the model can expand are injected into the
        shared flow simulator at their start time; their completion is only
        known once the simulator has advanced past it, because transfers
        injected later (but starting earlier than the tentative completion)
        reshape the max–min fair allocation.  The loop therefore interleaves
        scheduling decisions with network events: before committing the
        earliest-start ready operation, every network event at or before that
        start is processed, so any collective completion that would unlock an
        earlier (or tie-breaking lower-id) operation is observed first.
        Compute operations and analytically-priced collectives finalize
        immediately, exactly as in the analytic loop.

        Circuit-switched models additionally gate each launch: ``begin_comm``
        may schedule the collective's first flows at a later time than
        ``best_start`` (the OCS switching delay), or defer the launch until
        conflicting circuits drain.  Both manifest as future simulator events,
        so the drain loops below cover them; the NICs stay locked for the
        whole gated window, which is exactly the blocking the paper's Fig. 8
        measures.
        """
        network = self.network
        completed = 0
        ready = state.ready
        #: op_id -> (operation, start); completion pending in the simulator.
        inflight: Dict[int, Tuple[Operation, float]] = {}
        #: Ranks whose scale-out NIC is held by an in-flight collective.
        locked: Set[int] = set()
        #: (op_id, end) pairs appended by collective-completion callbacks.
        finished: List[Tuple[int, float]] = []
        # Lazy priority queue over the ready set.  Earliest-start candidates
        # only grow over time (dep ends are fixed once known, resource free
        # times only move forward), so a stored candidate is a lower bound:
        # pop the minimum, recompute, and re-push if it moved.  A pop whose
        # value is still accurate is the true (candidate, op_id) minimum —
        # every other stored entry is a lower bound at or above it.  This
        # replaces the O(|ready|) rescan per commit without changing which
        # operation is selected, so traces stay bit-identical.
        heap: List[Tuple[float, int]] = []
        queued: Set[int] = set()
        #: Scale-out ops popped while their NIC was locked; re-queued once
        #: ``finalize`` releases locks (the only place locks clear).
        parked: List[Tuple[float, int]] = []

        def refill() -> None:
            newcomers = state.newly_ready
            if not newcomers:
                return
            for op_id in newcomers:
                if op_id not in queued:
                    queued.add(op_id)
                    candidate = self._earliest_start(self.dag.operation(op_id), state)
                    heapq.heappush(heap, (candidate, op_id))
            newcomers.clear()

        state.newly_ready.extend(ready)
        # Circuit-switched flow models gate launches on the controller and
        # buffer the switching events performed per collective; pick them up
        # at completion so they land in the trace like analytic reconfigs do.
        pop_records = getattr(network, "pop_reconfig_records", None)

        def finalize() -> None:
            nonlocal completed
            any_finished = bool(finished)
            while finished:
                op_id, end = finished.pop(0)
                operation, begin = inflight.pop(op_id)
                for rank in operation.ranks:
                    state.nic_free[rank] = end
                    locked.discard(rank)
                records = tuple(pop_records(op_id)) if pop_records else ()
                self._record_comm(operation, begin, end, records, trace)
                self.network.on_comm_end(operation, end)
                state.finish(op_id, end)
                completed += 1
            if any_finished and parked:
                # Locks may have cleared; parked ops compete again.
                for entry in parked:
                    heapq.heappush(heap, entry)
                parked.clear()

        while ready or inflight:
            finalize()
            refill()
            best_id = None
            best_start = None
            while heap:
                candidate, op_id = heapq.heappop(heap)
                if op_id not in ready:
                    queued.discard(op_id)
                    continue  # committed via an earlier pop; stale entry
                op = self.dag.operation(op_id)
                current = self._earliest_start(op, state)
                if current > candidate:
                    heapq.heappush(heap, (current, op_id))
                    continue
                if (
                    op.kind != OpKind.COMPUTE
                    and self.network.is_scaleout(op)
                    and any(rank in locked for rank in op.ranks)
                ):
                    # NIC held by an in-flight collective; end unknown.  Set
                    # aside — candidates cannot shrink, so re-queueing the
                    # same entry after locks clear keeps the bound valid.
                    parked.append((candidate, op_id))
                    continue
                best_start = candidate
                best_id = op_id
                break

            next_event = network.next_event_time
            if best_id is None:
                if not inflight:
                    break  # nothing runnable: let the caller report the deadlock
                if next_event is None:
                    raise SimulationError(
                        "flow-level network is idle while collectives are "
                        "still in flight; flows can never complete"
                    )
                # Everything runnable is blocked on in-flight collectives:
                # drain network events until one of them actually finishes.
                while not finished and network.next_event_time is not None:
                    network.advance()
                continue
            if next_event is not None and next_event <= best_start:
                # Network events precede (or tie) the candidate start; their
                # completions may unlock an earlier-starting operation.  Drain
                # them in a burst — flow starts and intermediate completion
                # checks change no scheduling input, so rescanning the ready
                # set is only needed once a collective actually finishes.
                # The popped candidate goes back on the queue uncommitted.
                heapq.heappush(heap, (best_start, best_id))
                while not finished:
                    next_event = network.next_event_time
                    if next_event is None or next_event > best_start:
                        break
                    network.advance()
                continue

            assert best_start is not None
            ready.discard(best_id)
            queued.discard(best_id)
            operation = self.dag.operation(best_id)
            if operation.kind == OpKind.COMPUTE:
                end = self._execute_compute(operation, best_start, state.gpu_free, trace)
                state.finish(best_id, end)
                completed += 1
            elif network.can_expand(operation):
                locked.update(operation.ranks)
                inflight[best_id] = (operation, best_start)
                network.begin_comm(
                    operation,
                    best_start,
                    lambda end, op_id=best_id: finished.append((op_id, end)),
                )
            else:
                end = self._execute_comm(operation, best_start, state, trace)
                state.finish(best_id, end)
                completed += 1
        finalize()
        return completed

    def run_training(self, num_iterations: int, start_time: float = 0.0) -> TrainingTrace:
        """Simulate ``num_iterations`` back-to-back iterations.

        The network model's state (learned traffic profiles, circuit state)
        carries across iterations, matching Opus's profile-then-provision
        behaviour: iteration 0 is the profiling iteration, later iterations
        benefit from provisioning.
        """
        if num_iterations <= 0:
            raise SimulationError("num_iterations must be positive")
        training = TrainingTrace()
        current = start_time
        for iteration in range(num_iterations):
            trace = self.run_iteration(iteration=iteration, start_time=current)
            training.add(trace)
            current = trace.end
        return training

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _earliest_start(self, operation: Operation, state: "_ScheduleState") -> float:
        start_time = state.start_time
        ready = start_time
        for dep in operation.deps:
            ready = max(ready, state.dep_end[dep])
        if operation.kind == OpKind.COMPUTE:
            for rank in operation.ranks:
                ready = max(ready, state.gpu_free.get(rank, start_time))
        else:
            resource = (
                state.nic_free
                if self.network.is_scaleout(operation)
                else state.scaleup_free
            )
            for rank in operation.ranks:
                ready = max(ready, resource.get(rank, start_time))
        return ready

    def _compute_duration(self, operation: Operation, start: float) -> float:
        duration = self.compute_model.duration(operation)
        if self.config.compute_jitter > 0:
            factor = self._rng.lognormvariate(0.0, self.config.compute_jitter)
            duration *= factor
        injector = getattr(self.network, "fault_injector", None)
        if injector is not None:
            # Per-device slowdown faults (stragglers): the latest slowdown
            # event at or before the operation's start stretches its ranks.
            duration *= injector.compute_factor(operation.ranks, start)
        return duration

    def _execute_compute(
        self,
        operation: Operation,
        start: float,
        gpu_free: Dict[int, float],
        trace: IterationTrace,
    ) -> float:
        end = start + self._compute_duration(operation, start)
        for rank in operation.ranks:
            gpu_free[rank] = end
        trace.compute_records.append(
            ComputeRecord(
                op_id=operation.op_id,
                ranks=operation.ranks,
                start=start,
                end=end,
                phase=operation.phase,
                tag=operation.tag,
            )
        )
        return end

    def _execute_comm(
        self,
        operation: Operation,
        ready_time: float,
        state: "_ScheduleState",
        trace: IterationTrace,
    ) -> float:
        assert operation.collective is not None
        timing: CommTiming = self.network.timing(operation, ready_time)
        scaleout = self.network.is_scaleout(operation)
        resource = state.nic_free if scaleout else state.scaleup_free
        for rank in operation.ranks:
            resource[rank] = timing.end
        self._record_comm(operation, timing.start, timing.end, timing.reconfigs, trace)
        self.network.on_comm_end(operation, timing.end)
        return timing.end

    def _record_comm(
        self,
        operation: Operation,
        start: float,
        end: float,
        reconfigs: Tuple[ReconfigRecord, ...],
        trace: IterationTrace,
    ) -> None:
        assert operation.collective is not None
        scaleout = self.network.is_scaleout(operation)
        rails: Tuple[int, ...] = ()
        if self.mesh.cluster is not None and scaleout:
            rails = self.mesh.rails_of_group(operation.collective.group)
        trace.comm_records.append(
            CommRecord(
                op_id=operation.op_id,
                collective=operation.collective.collective,
                parallelism=operation.collective.parallelism,
                group=operation.collective.group,
                rails=rails,
                size_bytes=operation.collective.size_bytes,
                total_bytes=total_traffic_bytes(operation.collective),
                start=start,
                end=end,
                phase=operation.phase,
                tag=operation.tag,
                scaleout=scaleout,
            )
        )
        trace.reconfig_records.extend(reconfigs)
