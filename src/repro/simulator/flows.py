"""Flow-level (fluid) network simulation with max–min fair bandwidth sharing.

Each :class:`Flow` moves ``size_bytes`` along a fixed path of links.  Whenever
the set of active flows changes (an arrival or a completion), the simulator
recomputes the max–min fair allocation with the standard progressive-filling
algorithm and reschedules the next completion.  This is the usual fluid
approximation used by datacenter-fabric studies, including the ones the paper
builds on (TopoOpt, Rail-only): no packets, no transport dynamics, just
capacity sharing.

Two things make the engine scale to 10k-endpoint fabrics:

* **Vectorized water-filling** — :func:`max_min_fair_rates` runs the
  progressive-filling rounds over a flat link×flow incidence structure with
  numpy when the flow set is large, falling back to the incremental
  pure-Python algorithm for small sets (and when numpy is unavailable).
* **Component-local reallocation** — the simulator maintains per-link user
  sets incrementally and, on every arrival/completion batch, recomputes rates
  only for the connected component of flows that (transitively) share links
  with the changed flows.  Max–min fair allocation decomposes exactly over
  such components: flows whose bottleneck sets are unaffected keep their
  rates, their progress is tracked lazily per flow, and their completion
  estimates stay queued in a lazy heap instead of being rescanned per event.

Three optional knobs trade exactness for speed on heavily-contended fabrics
(fat trees, where every reallocation closure is one giant component); all
default to off, and the off configuration is bit-for-bit identical to the
exact engine:

* ``allocator_epsilon`` — skip a component re-rate when no member flow's
  rate would move by more than this relative fraction.  Completions accrue
  per-link *debt* (freed-but-not-redistributed rate) and the component is
  re-rated exactly as soon as any link's debt exceeds ε of its allocated
  load; arrivals are rated from residual capacity when that leaves each new
  flow within ε of its equal-share reference.  Fault events always re-rate
  exactly and clear all debt.
* ``coarsen_quantum`` — round arrival and completion events *up* to the next
  multiple of the quantum, so triggers landing within one quantum collapse
  into a single solver pass.  Fault events are never coarsened.
* ``fill_workers`` — water-fill large disjoint sharing components
  concurrently in a process pool, merging results in deterministic
  component order.

The DAG executor uses this engine when run with a flow-level network model
(:class:`~repro.simulator.flow_network.FlowNetworkModel`, selected with the
``network_mode="flow"`` backend knob): every scale-out collective is expanded
into per-step point-to-point transfers that share one simulator, so
concurrent collectives contend for link capacity.  The analytic mode bypasses
it.  The engine is also usable standalone for micro-studies such as incast on
a shared rail switch versus dedicated circuits.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import LinkFailedError, SimulationError, TopologyError
from ..topology.base import Link, Topology
from .engine import SimulationEngine
from .snapshot import Snapshottable, register_continuation

try:  # numpy is a declared dependency, but the pure-Python path keeps the
    import numpy as _np  # engine usable in stripped-down environments.
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

#: Tolerance used when deciding whether a flow has finished transferring.
_BYTES_EPSILON = 1e-6

#: Flow-set size below which progressive filling runs directly — component
#: decomposition and numpy dispatch only pay for themselves on larger sets.
_DECOMPOSE_MIN_FLOWS = 16

#: Component size at which the numpy water-filling pays for its setup cost.
_VECTORIZE_MIN_FLOWS = 32

#: Component size below which the parallel filler solves inline: pickling a
#: small incidence to a worker process costs more than filling it locally.
_PARALLEL_MIN_FLOWS = 256

#: Smallest batch worth sealing: below this the generic per-flow completion
#: path costs about the same as seal validation plus the bulk sweep.
_SEALED_MIN_FLOWS = 32

#: Deferred route: called at the flow's start event to resolve the path.
#: Circuit-switched fabrics install a collective's circuits *after* its flows
#: are scheduled (the switching delay separates the two), so the route over
#: those circuits only exists — and is only looked up — when the flow starts.
#: A resolver must return currently-installed links (the version-keyed route
#: caches guarantee this), so resolver paths skip the per-link liveness check.
PathResolver = Callable[[], Sequence[Link]]

LinkKey = Tuple[str, str, int]


def _flow_id_of(flow: "Flow") -> int:
    """Sort key for deterministic iteration over flow sets."""
    return flow.flow_id


class AllocatorStats:
    """Counters over the simulator's allocation machinery.

    One instance can be shared across simulator rebuilds — the flow network
    models keep a single object for a whole training run — so coarsening and
    ε-approximation wins stay visible in benchmark output no matter how many
    times the underlying simulator is recreated.
    """

    __slots__ = (
        "allocator_invocations",
        "rerated_components",
        "rerated_flows",
        "epsilon_skips",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.allocator_invocations = 0
        self.rerated_components = 0
        self.rerated_flows = 0
        self.epsilon_skips = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "allocator_invocations": self.allocator_invocations,
            "rerated_components": self.rerated_components,
            "rerated_flows": self.rerated_flows,
            "epsilon_skips": self.epsilon_skips,
        }

    def __repr__(self) -> str:
        return f"AllocatorStats({self.as_dict()!r})"


class _FlowGroup:
    """Completion accounting for one batch of flows injected together.

    The owner receives a single callback with the batch's last finish time
    once every member completed — one callback per collective step instead of
    one per flow.  The group also remembers the (cached, shared) item list it
    was built from, which keys the isolated-component allocation memo.
    """

    __slots__ = ("outstanding", "end", "callback", "items")

    def __init__(self, outstanding: int, callback: Callable[[float], None]) -> None:
        self.outstanding = outstanding
        self.end = 0.0
        self.callback = callback
        self.items: object = None


class _PhantomBatch:
    """Marker standing in for a sealed batch's per-flow link registrations.

    A shape-replayed batch (see :class:`_BatchShape`) claims its links by
    pointing every key at one of these instead of registering each member
    flow — one dict entry per link either way, but claimed with two C-level
    bulk operations instead of a Python loop per flow per link.  Any code
    path that needs real per-flow membership (a later batch joining one of
    the links, a fault) first calls ``_materialize_phantom``, which swaps
    the markers for ordinary registrations; undisturbed batches retire in
    bulk without ever materializing.
    """

    __slots__ = ("members", "keys", "retired", "outstanding")

    def __init__(self) -> None:
        self.members: List[Tuple["Flow", int]] = []
        self.keys: Tuple[LinkKey, ...] = ()
        self.retired = False
        #: Sealed completion entries (one per drain-duration group) still in
        #: flight; the markers come down when the last one retires.
        self.outstanding = 0


class _BatchShape:
    """Memoized bookkeeping for one recurring self-contained batch shape.

    Synchronized steady state re-injects identically-shaped batches — the
    same (cached) path objects, the same sizes — once per collective step,
    hundreds of times per iteration.  After the first fully-registered
    solve, the shape records everything replay needs: the allocation, the
    claimed link keys, per-flow latencies, and the uniform drain duration.
    Replays then skip per-flow registration, solving, and estimate math
    entirely (see ``_try_shape_replay``); a replay is bit-for-bit identical
    to the slow path because every stored float was produced by it.
    """

    __slots__ = (
        "anchors",
        "sizes",
        "rates",
        "latencies",
        "keys",
        "key_set",
        "id_items",
        "groups",
    )

    def __init__(
        self,
        anchors: Tuple[Tuple[Link, ...], ...],
        sizes: Tuple[float, ...],
        rates: List[float],
        latencies: Tuple[float, ...],
        keys: Tuple[LinkKey, ...],
        key_set: FrozenSet[LinkKey],
        groups: Optional[Tuple[Tuple[float, Tuple[int, ...]], ...]],
    ) -> None:
        self.anchors = anchors
        self.sizes = sizes
        self.rates = rates
        self.latencies = latencies
        self.keys = keys
        self.key_set = key_set
        self.id_items = tuple((key[2], key) for key in keys)
        #: (drain_duration, member_indices) per completion-estimate group, in
        #: first-occurrence order (matching the slow path's estimate dict) —
        #: or ``None`` when the shape is not replayable (a zero or infinite
        #: rate somewhere).
        self.groups = groups


class Flow:
    """One fluid flow over a fixed path.

    Attributes
    ----------
    flow_id:
        Unique identifier assigned by the simulator.
    path:
        The links the flow traverses, in order.  An empty path means the
        source and destination are co-located and the flow completes after
        its latency only.
    size_bytes:
        Bytes to transfer.
    start_time:
        Arrival time of the flow.
    """

    __slots__ = (
        "flow_id",
        "path",
        "size_bytes",
        "start_time",
        "remaining_bytes",
        "rate",
        "finish_time",
        "_progress_time",
        "_epoch",
        "_added_version",
        "_resolver",
        "_on_complete",
        "_group",
        "_path_latency",
    )

    def __init__(
        self,
        flow_id: int,
        path: Sequence[Link],
        size_bytes: float,
        start_time: float,
    ) -> None:
        if size_bytes < 0:
            raise SimulationError("flow size must be non-negative")
        self.flow_id = flow_id
        self.path: Tuple[Link, ...] = tuple(path)
        self.size_bytes = size_bytes
        self.start_time = start_time
        self.remaining_bytes = float(size_bytes)
        self.rate = 0.0
        self.finish_time: Optional[float] = None
        #: Time up to which ``remaining_bytes`` is accurate (lazy progress).
        self._progress_time = start_time
        #: Bumped on every rate change; stale completion-heap entries carry an
        #: older epoch and are dropped when they surface.
        self._epoch = 0
        #: Topology version when the flow was admitted (liveness fast path).
        self._added_version: Optional[int] = None
        #: Deferred path resolver, completion callback, and batch accounting
        #: (set by the owning simulator; None for standalone flows).
        self._resolver: Optional[PathResolver] = None
        self._on_complete: Optional[Callable[["Flow"], None]] = None
        self._group: Optional[_FlowGroup] = None
        #: Path latency, folded in during link registration (hot path).
        self._path_latency = 0.0

    @property
    def latency(self) -> float:
        """Total propagation latency along the flow's path."""
        return sum(link.latency for link in self.path)

    @property
    def done(self) -> bool:
        """Whether the flow has finished transferring."""
        return self.finish_time is not None

    def __repr__(self) -> str:
        return (
            f"Flow(flow_id={self.flow_id}, hops={len(self.path)}, "
            f"size_bytes={self.size_bytes!r}, start_time={self.start_time!r})"
        )


def max_min_fair_rates(
    flows: Sequence[Flow], capacities: Optional[Dict[LinkKey, float]] = None
) -> Dict[int, float]:
    """Compute the max–min fair rate of each flow by progressive filling.

    Dispatches to a numpy water-filling over the link×flow incidence
    structure for large flow sets and to the incremental pure-Python
    algorithm otherwise; both produce identical allocations.

    Parameters
    ----------
    flows:
        Active flows; flows with an empty path receive infinite rate.
    capacities:
        Optional override of per-link capacities keyed by ``link.key``
        (defaults to each link's ``bandwidth``).

    Returns
    -------
    dict
        Mapping of ``flow_id`` to allocated rate in bytes/second.
    """
    if len(flows) < _DECOMPOSE_MIN_FLOWS:
        return _max_min_fair_rates_python(flows, capacities)
    if _np is not None and len(flows) >= _VECTORIZE_MIN_FLOWS:
        # The numpy solver labels link-sharing components itself and fills
        # them in parallel (one bottleneck per component per round), so no
        # Python-level decomposition is needed in front of it.
        return _max_min_fair_rates_numpy(flows, capacities)
    # Max-min fairness decomposes exactly over connected components of the
    # flow/link sharing graph: progressive filling on one component never
    # reads capacity touched by another.  Without numpy, solving components
    # independently still turns the round count from "distinct shares
    # overall" into "distinct shares per component".
    components = _sharing_components(flows)
    rates: Dict[int, float] = {}
    for component in components:
        rates.update(_max_min_fair_rates_python(component, capacities))
    return rates


def _sharing_components(flows: Sequence[Flow]) -> List[List[Flow]]:
    """Partition flows into connected components of link sharing.

    Empty-path flows form singleton components (they get infinite rate from
    either solver).  Union-find over link keys with path halving; each
    (flow, link) incidence is touched O(alpha) times.
    """
    parent: Dict[LinkKey, LinkKey] = {}
    for flow in flows:
        path = flow.path
        if not path:
            continue
        first = path[0].key
        root = parent.setdefault(first, first)
        while parent[root] is not root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        for link in path[1:]:
            key = link.key
            other = parent.setdefault(key, key)
            while parent[other] is not other:
                parent[other] = parent[parent[other]]
                other = parent[other]
            if other is not root:
                parent[other] = root
    groups: Dict[Optional[LinkKey], List[Flow]] = {}
    for flow in flows:
        if not flow.path:
            groups.setdefault(None, []).append(flow)
            continue
        root = flow.path[0].key
        while parent[root] is not root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        groups.setdefault(root, []).append(flow)
    return list(groups.values())


def _max_min_fair_rates_python(
    flows: Sequence[Flow], capacities: Optional[Dict[LinkKey, float]] = None
) -> Dict[int, float]:
    """Progressive filling with incremental per-link user-set bookkeeping."""
    remaining_capacity: Dict[LinkKey, float] = {}
    # Per-link set of *still-unallocated* flows; flows are removed as they
    # freeze, so each (flow, link) pair is touched O(1) times overall instead
    # of being re-intersected against the unallocated set every round.
    link_flows: Dict[LinkKey, Set[int]] = {}
    flow_by_id: Dict[int, Flow] = {flow.flow_id: flow for flow in flows}
    for flow in flows:
        for link in flow.path:
            key = link.key
            if key not in remaining_capacity:
                capacity = link.bandwidth
                if capacities and key in capacities:
                    capacity = capacities[key]
                remaining_capacity[key] = capacity
                link_flows[key] = set()
            link_flows[key].add(flow.flow_id)

    rates: Dict[int, float] = {}
    num_unallocated = 0
    for flow in flows:
        if not flow.path:
            rates[flow.flow_id] = math.inf
        else:
            num_unallocated += 1

    while num_unallocated:
        # Find the most constrained link: smallest fair share among its
        # still-unallocated flows.
        best_share = None
        for key, users in link_flows.items():
            if not users:
                continue
            share = remaining_capacity[key] / len(users)
            if best_share is None or share < best_share:
                best_share = share
        if best_share is None:
            # Remaining flows traverse only links with no capacity constraint.
            for flow in flows:
                if flow.flow_id not in rates:
                    rates[flow.flow_id] = math.inf
            break
        # Freeze every flow crossing a link whose fair share equals the bottleneck.
        frozen: Set[int] = set()
        for key, users in link_flows.items():
            if not users:
                continue
            share = remaining_capacity[key] / len(users)
            if share <= best_share * (1 + 1e-12):
                frozen.update(users)
        # Subtract the frozen flows' rates from every link they traverse and
        # drop them from the per-link user sets (incremental bookkeeping);
        # links whose last user froze are retired from the scan entirely.
        for flow_id in frozen:
            rates[flow_id] = best_share
            for link in flow_by_id[flow_id].path:
                key = link.key
                users = link_flows.get(key)
                if users is None:
                    continue  # retired in an earlier round; never read again
                remaining_capacity[key] = max(
                    0.0, remaining_capacity[key] - best_share
                )
                users.discard(flow_id)
                if not users:
                    del link_flows[key]
        num_unallocated -= len(frozen)
    return rates


#: Iteration cap for the component-label propagation inside the numpy
#: solver.  Typical sharing graphs converge in a handful of sweeps; on
#: pathological long chains the solver safely falls back to one global
#: component (exact, just more filling rounds).
_LABEL_SWEEPS_MAX = 16


def _max_min_fair_rates_numpy(
    flows: Sequence[Flow], capacities: Optional[Dict[LinkKey, float]] = None
) -> Dict[int, float]:
    """Segmented water-filling over a flat link×flow incidence structure.

    The solver first labels the connected components of the link-sharing
    graph with a few ``minimum.reduceat`` sweeps, then runs progressive
    filling with one bottleneck *per component* per round: independent
    components fill in parallel, so the round count is the deepest single
    component's share ladder instead of the number of distinct shares
    overall.  Every round is a handful of O(incidence) array operations,
    and the incidence arrays are compacted as flows freeze.  The allocation
    is identical to the pure-Python algorithm.
    """
    rates: Dict[int, float] = {}
    link_index: Dict[LinkKey, int] = {}
    caps: List[float] = []
    entry_flow: List[int] = []
    entry_link: List[int] = []
    constrained: List[Flow] = []
    for flow in flows:
        if not flow.path:
            rates[flow.flow_id] = math.inf
            continue
        flow_pos = len(constrained)
        constrained.append(flow)
        for link in flow.path:
            key = link.key
            link_pos = link_index.get(key)
            if link_pos is None:
                link_pos = len(caps)
                link_index[key] = link_pos
                capacity = link.bandwidth
                if capacities and key in capacities:
                    capacity = capacities[key]
                caps.append(capacity)
            entry_flow.append(flow_pos)
            entry_link.append(link_pos)
    if not constrained:
        return rates

    flow_rate = _fill_incidence(
        _np.asarray(caps, dtype=float),
        _np.asarray(entry_flow, dtype=_np.intp),
        _np.asarray(entry_link, dtype=_np.intp),
        len(constrained),
    )
    for flow_pos, flow in enumerate(constrained):
        value = flow_rate[flow_pos]
        rates[flow.flow_id] = math.inf if math.isinf(value) else float(value)
    return rates


def _fill_incidence(cap, e_flow, e_link, num_flows):
    """Water-fill one pre-built link×flow incidence; returns per-flow rates.

    Factored out of :func:`_max_min_fair_rates_numpy` so the parallel
    per-component filler can run the *identical* arithmetic on
    sub-incidences inside worker processes.  ``e_flow`` must be
    non-decreasing and every flow/link position must appear at least once.
    """
    num_links = cap.shape[0]

    # --- component labels (links): alternating min-propagation ----------- #
    # Entries were appended flow-by-flow, so e_flow is non-decreasing and
    # every flow/link has at least one entry: reduceat segments are exact.
    flow_starts = _np.searchsorted(e_flow, _np.arange(num_flows))
    link_order = _np.argsort(e_link, kind="stable")
    sorted_links = e_link[link_order]
    link_starts = _np.flatnonzero(
        _np.r_[True, sorted_links[1:] != sorted_links[:-1]]
    )
    label = _np.arange(num_links, dtype=_np.intp)
    converged = False
    for _sweep in range(_LABEL_SWEEPS_MAX):
        flow_label = _np.minimum.reduceat(label[e_link], flow_starts)
        new_label = _np.minimum.reduceat(
            flow_label[e_flow][link_order], link_starts
        )
        if _np.array_equal(new_label, label):
            converged = True
            break
        label = new_label
    if not converged:
        # Under-merged labels would freeze non-global minima inside one true
        # component; a single global component is always exact.
        label = _np.zeros(num_links, dtype=_np.intp)
    _uniq, comp_of_link = _np.unique(label, return_inverse=True)
    comp_of_flow = comp_of_link[e_link[flow_starts]]
    comp_order = _np.argsort(comp_of_link, kind="stable")
    sorted_comps = comp_of_link[comp_order]
    comp_starts = _np.flatnonzero(
        _np.r_[True, sorted_comps[1:] != sorted_comps[:-1]]
    )

    user_count = _np.bincount(e_link, minlength=num_links).astype(float)
    entry_alive = _np.ones(len(e_flow), dtype=bool)
    flow_rate = _np.zeros(num_flows, dtype=float)
    flow_unallocated = _np.ones(num_flows, dtype=bool)
    remaining = num_flows

    while remaining:
        with _np.errstate(divide="ignore"):
            shares = _np.where(
                user_count > 0.0, cap / _np.maximum(user_count, 1.0), _np.inf
            )
        # One bottleneck per component; finished components read inf and
        # freeze nothing (their entries are all dead).  A component whose
        # remaining links are unconstrained freezes its flows at inf.
        comp_best = _np.minimum.reduceat(shares[comp_order], comp_starts)
        frozen_link = shares <= comp_best[comp_of_link] * (1 + 1e-12)
        frozen_entries = entry_alive & frozen_link[e_link]
        newly_frozen = _np.unique(e_flow[frozen_entries])
        if newly_frozen.size == 0:
            flow_rate[flow_unallocated] = _np.inf
            break
        flow_rate[newly_frozen] = comp_best[comp_of_flow[newly_frozen]]
        flow_unallocated[newly_frozen] = False
        dead = entry_alive & ~flow_unallocated[e_flow]
        dead_link = e_link[dead]
        finite_rate = _np.where(
            _np.isfinite(flow_rate), flow_rate, 0.0
        )  # inf-rate flows only ever cross unconstrained links
        cap_drain = _np.bincount(
            dead_link, weights=finite_rate[e_flow[dead]], minlength=num_links
        )
        cap -= cap_drain
        _np.maximum(cap, 0.0, out=cap)
        user_count -= _np.bincount(dead_link, minlength=num_links)
        entry_alive &= ~dead
        remaining -= int(newly_frozen.size)
        # Compact the incidence arrays once most entries have died, so a
        # many-round filling scans the shrinking live set instead of the
        # full original incidence.
        alive_count = int(entry_alive.sum())
        if alive_count * 2 < e_flow.size:
            e_flow = e_flow[entry_alive]
            e_link = e_link[entry_alive]
            entry_alive = _np.ones(alive_count, dtype=bool)

    return flow_rate


def _component_incidence(
    component: Sequence[Flow],
    capacities: Optional[Dict[LinkKey, float]],
) -> Tuple[Optional[tuple], List[Flow], List[int]]:
    """Incidence arrays for one sharing component, ready to ship to a worker.

    Returns ``(args, constrained, inf_flow_ids)`` where ``args`` is the
    picklable ``(cap, e_flow, e_link, num_flows)`` tuple for
    :func:`_fill_incidence` (``None`` when every member has an empty path)
    and ``inf_flow_ids`` are the empty-path members, rated infinite.
    """
    link_index: Dict[LinkKey, int] = {}
    caps: List[float] = []
    entry_flow: List[int] = []
    entry_link: List[int] = []
    constrained: List[Flow] = []
    inf_flow_ids: List[int] = []
    for flow in component:
        if not flow.path:
            inf_flow_ids.append(flow.flow_id)
            continue
        flow_pos = len(constrained)
        constrained.append(flow)
        for link in flow.path:
            key = link.key
            link_pos = link_index.get(key)
            if link_pos is None:
                link_pos = len(caps)
                link_index[key] = link_pos
                capacity = link.bandwidth
                if capacities and key in capacities:
                    capacity = capacities[key]
                caps.append(capacity)
            entry_flow.append(flow_pos)
            entry_link.append(link_pos)
    if not constrained:
        return None, constrained, inf_flow_ids
    args = (
        _np.asarray(caps, dtype=float),
        _np.asarray(entry_flow, dtype=_np.intp),
        _np.asarray(entry_link, dtype=_np.intp),
        len(constrained),
    )
    return args, constrained, inf_flow_ids


def _fill_subincidence(args: tuple):
    """Process-pool entry point: fill one shipped component incidence."""
    cap, e_flow, e_link, num_flows = args
    return _fill_incidence(cap, e_flow, e_link, num_flows)


#: Persistent process pool for :func:`_max_min_fair_rates_parallel` (worker
#: startup is far too expensive to pay per solver call).
_FILL_POOL = None
_FILL_POOL_WORKERS = 0


def _fill_pool(workers: int):
    global _FILL_POOL, _FILL_POOL_WORKERS
    if _FILL_POOL is None or _FILL_POOL_WORKERS != workers:
        from concurrent.futures import ProcessPoolExecutor

        if _FILL_POOL is not None:
            _FILL_POOL.shutdown(wait=False)
        _FILL_POOL = ProcessPoolExecutor(max_workers=workers)
        _FILL_POOL_WORKERS = workers
    return _FILL_POOL


def _max_min_fair_rates_parallel(
    flows: Sequence[Flow],
    capacities: Optional[Dict[LinkKey, float]] = None,
    workers: int = 2,
    min_flows: int = _PARALLEL_MIN_FLOWS,
) -> Dict[int, float]:
    """Max–min fair rates with disjoint components filled concurrently.

    Components are labeled once; large ones ship as plain incidence arrays
    to a persistent process pool while small ones fill inline.  Results
    merge in component order (``pool.map`` preserves ordering), so the
    allocation — and every trace built on it — is identical to the serial
    solvers.  Falls back to serial filling when no pool can be created
    (restricted environments) or numpy is unavailable.
    """
    if _np is None:
        return max_min_fair_rates(flows, capacities)
    components = _sharing_components(flows)
    rates: Dict[int, float] = {}
    shipped: List[Tuple[List[Flow], tuple]] = []
    for component in components:
        if len(component) < min_flows:
            rates.update(max_min_fair_rates(component, capacities))
            continue
        args, constrained, inf_flow_ids = _component_incidence(
            component, capacities
        )
        for flow_id in inf_flow_ids:
            rates[flow_id] = math.inf
        if args is not None:
            shipped.append((constrained, args))
    if shipped:
        results = None
        if workers > 1 and len(shipped) > 1:
            try:
                pool = _fill_pool(workers)
                results = list(
                    pool.map(_fill_subincidence, [args for _c, args in shipped])
                )
            except Exception:  # pragma: no cover - pool unavailable
                results = None
        if results is None:
            results = [_fill_subincidence(args) for _c, args in shipped]
        for (constrained, _args), flow_rate in zip(shipped, results):
            for flow_pos, flow in enumerate(constrained):
                value = flow_rate[flow_pos]
                rates[flow.flow_id] = (
                    math.inf if math.isinf(value) else float(value)
                )
    return rates


@register_continuation("flows.empty_batch_complete")
def _complete_empty_batch(engine: SimulationEngine, on_complete) -> None:
    """Completion event for a degenerate zero-flow batch (see add_flows)."""
    on_complete(engine.now)


class FlowSimulator(Snapshottable):
    """Event-driven fluid simulator over a set of flows.

    Usage::

        sim = FlowSimulator()
        sim.add_flow(path, size_bytes, start_time=0.0, on_complete=callback)
        sim.run()

    Arrivals at one instant are batched behind a single engine event, and a
    batch of arrivals/completions triggers rate recomputation only for the
    connected component of flows sharing links with the change (see the
    module docstring).
    """

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        topology: Optional[Topology] = None,
        allocator_epsilon: float = 0.0,
        coarsen_quantum: float = 0.0,
        fill_workers: int = 0,
        stats: Optional[AllocatorStats] = None,
    ) -> None:
        self.engine = engine or SimulationEngine()
        #: ε-approximate reallocation: skip component re-rates that would
        #: move no member flow's rate by more than this relative fraction.
        #: 0.0 (the default) is the exact engine, bit-for-bit.
        self.allocator_epsilon = float(allocator_epsilon)
        #: Event coarsening: arrival and completion events round *up* to the
        #: next multiple of this quantum (seconds), collapsing triggers that
        #: land within one quantum into a single solver pass.  0.0 = off.
        self.coarsen_quantum = float(coarsen_quantum)
        #: Water-fill disjoint components in a process pool of this size
        #: (0 or 1 = serial).
        self.fill_workers = int(fill_workers)
        if self.allocator_epsilon < 0.0:
            raise SimulationError("allocator_epsilon must be non-negative")
        if self.coarsen_quantum < 0.0:
            raise SimulationError("coarsen_quantum must be non-negative")
        if self.fill_workers < 0:
            raise SimulationError("fill_workers must be non-negative")
        self.stats = stats if stats is not None else AllocatorStats()
        #: Per-link allocated-rate sums, maintained only under ε-approximation
        #: (the exact path never reads them).  Refreshed from scratch on every
        #: exact component re-rate, so float drift never accumulates.
        self._link_load: Dict[LinkKey, float] = {}
        #: Freed-but-not-redistributed rate per link (deferred-dirty debt from
        #: ε-skipped completion re-rates); cleared on every exact re-rate.
        self._deferred_debt: Dict[LinkKey, float] = {}
        #: Optional topology the flows route over.  When set, every flow's
        #: links are checked for liveness at the flow's start event, so a
        #: route over a torn-down circuit fails loudly instead of silently
        #: charging capacity that no longer exists.
        self.topology = topology
        self._active: Set[Flow] = set()
        #: Next flow id.  A plain int (not itertools.count) so snapshots can
        #: capture and restore it explicitly.
        self._counter = 0
        #: Flows pending start, batched per exact arrival instant; one
        #: engine event per distinct instant reallocates once for the batch.
        self._pending_at: Dict[float, List[Flow]] = {}
        #: Active flows per link key, maintained incrementally.  The value is
        #: the lone :class:`Flow` while a link has a single user (the common
        #: case on provisioned fabrics) and is promoted to a set of flows on
        #: the first sharer — one allocation per *contended* link instead of
        #: one per registration.
        self._link_users: Dict[LinkKey, object] = {}
        #: Per-path registration metadata keyed by the path tuple's identity:
        #: (path, link keys, static bottleneck bandwidth, total latency).
        #: Paths come from the models' route tables as shared tuples, so one
        #: entry serves every flow and iteration using the route.  Holding
        #: the path in the value pins the id.  (Mutating a link's bandwidth
        #: between two same-path flows is not picked up by the cached
        #: bottleneck; the progressive-filling path always reads live.)
        self._path_meta: Dict[int, Tuple[Tuple[Link, ...], Tuple[LinkKey, ...], float, float]] = {}
        #: Lazy completion heap of (finish_estimate, tiebreak_id, epoch,
        #: payload) entries — single flows carry their epoch (stale entries,
        #: whose flow's rate changed since, are skipped), uniform batches
        #: carry ``-1`` and a list of (flow, epoch) members.
        self._completion_heap: List[Tuple[float, int, int, object]] = []
        self._completion_event = None
        #: Memoized allocations for self-contained batches, keyed by the
        #: identity of the (cached) item list they were injected from.
        self._isolated_rates: Dict[int, Tuple[object, Optional[int], List[float]]] = {}
        #: Content-keyed fallback memo for self-contained batches that span
        #: several injection groups (e.g. one synchronized step of many
        #: concurrent rings): max–min rates are a pure function of the
        #: ordered path list and the topology version, so later steps with
        #: the same routes replay the allocation positionally.
        self._content_rates: Dict[
            Tuple[Optional[int], Tuple[int, ...]],
            Tuple[Tuple[Tuple[Link, ...], ...], List[float]],
        ] = {}
        #: Sealed-batch bookkeeping.  A *sealed* completion-heap entry is a
        #: self-contained batch whose members all share one finish estimate;
        #: if nothing disturbed it in flight, completion retires its link
        #: registrations per *link* instead of per flow×link and skips the
        #: per-flow drain math.  Disturbances are recorded where they happen:
        #: every exact re-rate adds its closure's links to
        #: ``_sealed_disturbed``, the ε arrival-skip adds the links it quietly
        #: joins, and fault handling bumps ``_seal_gen`` (invalidating every
        #: outstanding seal at once).  The disturbed-link set is cleared
        #: whenever the last sealed entry pops, so it stays small.
        self._seal_gen = 0
        self._sealed_outstanding = 0
        self._sealed_disturbed: Set[LinkKey] = set()
        #: Full replay bookkeeping for recurring batch shapes (the sealed
        #: lane's other half): content key -> :class:`_BatchShape`.
        self._batch_shapes: Dict[
            Tuple[Optional[int], Tuple[int, ...]], _BatchShape
        ] = {}
        #: Live phantom batches (shape replays whose links are claimed by
        #: markers); faults materialize them all before touching capacities.
        self._phantoms: Set[_PhantomBatch] = set()
        #: What happens to a flow whose path loses a link while the flow is
        #: pending or on the wire: ``"fail"`` raises the typed
        #: :class:`~repro.errors.LinkFailedError`, ``"reroute"`` resolves a
        #: fresh route over the surviving topology.  Fault-aware network
        #: models set this from their :class:`~repro.simulator.faults.FaultPlan`.
        self.link_failure_policy: str = "fail"
        #: Optional route chooser consulted when a rerouted casualty needs a
        #: fresh path: ``route_policy(src_node, dst_node)`` returns the link
        #: sequence to move the flow onto.  Network models running a
        #: non-default routing policy install their policy router here so a
        #: fault reroute stays under the run's policy (adaptive flows pick
        #: the least-congested survivor, ECMP flows re-hash over the
        #: surviving equal-cost set) instead of collapsing onto the
        #: deterministic shortest path.  ``None`` — the default — preserves
        #: the original shortest-path reroute bit-for-bit.
        self.route_policy: Optional[Callable[[str, str], Sequence[Link]]] = None
        #: link_id -> key of every link with at least one active user, so
        #: circuit tear-downs (which only know topology link ids) can find
        #: the flows riding them without scanning the user registry.
        self._link_id_keys: Dict[int, LinkKey] = {}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Identity-keyed memo caches: pickle and deepcopy preserve object
        # identity *within* one captured graph but not the id() values used
        # as dict keys, so every memo is re-keyed on the anchor object its
        # value pins.  Without this the memos would merely go cold after a
        # restore or fork — still correct, but the cold rebuilds would be
        # counted as extra allocator work, breaking the guarantee that a
        # continued snapshot reports the same stats as a straight run.
        self._path_meta = {id(meta[0]): meta for meta in self._path_meta.values()}
        self._isolated_rates = {
            id(memo[0]): memo for memo in self._isolated_rates.values()
        }
        self._content_rates = {
            (key[0], tuple(id(anchor) for anchor in memo[0])): memo
            for key, memo in self._content_rates.items()
        }
        self._batch_shapes = {
            (key[0], tuple(id(anchor) for anchor in shape.anchors)): shape
            for key, shape in self._batch_shapes.items()
        }

    def _quantize(self, time: float) -> float:
        """Round ``time`` up to the next coarsening-quantum boundary.

        Never moves an event earlier (the engine rejects past schedules, and
        causality must hold), and leaves boundary values untouched.  With
        the quantum at 0 the time passes through unchanged, keeping the
        exact path bit-for-bit.
        """
        quantum = self.coarsen_quantum
        if quantum <= 0.0 or time <= 0.0:
            return time
        return math.ceil(time / quantum) * quantum

    # ------------------------------------------------------------------ #
    # Flow management
    # ------------------------------------------------------------------ #

    def add_flow(
        self,
        path: Union[Sequence[Link], PathResolver],
        size_bytes: float,
        start_time: float = 0.0,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Register a flow that arrives at ``start_time``.

        ``path`` is either the concrete link sequence or a zero-argument
        callable resolved at the flow's start event (deferred path
        resolution): on circuit-switched fabrics the route only exists once
        the circuits are installed, which happens between scheduling and
        start.  Until a deferred path resolves, the flow reports an empty
        path.
        """
        if self.coarsen_quantum > 0.0:
            start_time = self._quantize(start_time)
        resolver: Optional[PathResolver] = None
        if callable(path):
            resolver, path = path, ()
        flow_id = self._counter
        self._counter = flow_id + 1
        flow = Flow(
            flow_id=flow_id,
            path=path,
            size_bytes=size_bytes,
            start_time=start_time,
        )
        if self.topology is not None:
            flow._added_version = self.topology.version
        flow._resolver = resolver
        flow._on_complete = on_complete
        batch = self._pending_at.get(start_time)
        if batch is None:
            self._pending_at[start_time] = batch = []
            self.engine.schedule(start_time, self._on_batch_start, start_time)
        batch.append(flow)
        return flow

    def add_flows(
        self,
        items: Sequence[Tuple[Union[Sequence[Link], PathResolver], float]],
        start_time: float,
        on_complete: Callable[[float], None],
    ) -> List[Flow]:
        """Register a batch of flows sharing one arrival instant and callback.

        ``items`` are ``(path_or_resolver, size_bytes)`` pairs.  The batch's
        ``on_complete`` fires once — with the last member's finish time — when
        every flow in the batch has drained.  This is the bulk interface the
        flow network models use for collective steps: one engine event and
        one completion callback per step instead of one per transfer.
        """
        for _path, size_bytes in items:
            # Validate before any state mutation: a mid-loop raise would
            # otherwise leave phantom flows registered in the pending batch
            # under a group whose callback could never fire.
            if size_bytes < 0:
                raise SimulationError("flow size must be non-negative")
        if self.coarsen_quantum > 0.0:
            start_time = self._quantize(start_time)
        version = self.topology.version if self.topology is not None else None
        group = _FlowGroup(len(items), on_complete)
        group.items = items
        flow_id = self._counter
        batch = self._pending_at.get(start_time)
        if batch is None:
            self._pending_at[start_time] = batch = []
            self.engine.schedule(start_time, self._on_batch_start, start_time)
        created: List[Flow] = []
        new_flow = Flow.__new__
        for path, size_bytes in items:
            resolver = None
            if callable(path):
                resolver, path = path, ()
            # Inlined Flow construction: this loop runs once per transfer of
            # every collective step, so the constructor call overhead counts.
            flow = new_flow(Flow)
            flow.flow_id = flow_id
            flow_id += 1
            flow.path = path if type(path) is tuple else tuple(path)
            flow.size_bytes = size_bytes
            flow.start_time = start_time
            flow.remaining_bytes = float(size_bytes)
            flow.rate = 0.0
            flow.finish_time = None
            flow._progress_time = start_time
            flow._epoch = 0
            flow._added_version = version
            flow._resolver = resolver
            flow._on_complete = None
            flow._group = group
            flow._path_latency = 0.0
            batch.append(flow)
            created.append(flow)
        self._counter = flow_id
        if not items:
            # Degenerate empty batch: nothing will ever decrement the group,
            # so it completes at its start time.  The callback is a named
            # continuation (not a closure) so a snapshot taken while the
            # event is pending stays serializable.
            self.engine.schedule(start_time, _complete_empty_batch, on_complete)
        return created

    def flow(self, flow_id: int) -> Flow:
        """Return the pending or active flow with id ``flow_id``.

        Completed flows are dropped from the simulator's bookkeeping (callers
        hold the :class:`Flow` returned by :meth:`add_flow` or receive it in
        their completion callback), so looking one up here raises.  This is a
        debugging accessor and scans the pending/active sets; the hot paths
        deliberately carry flow objects instead of ids.
        """
        for flow in self._active:
            if flow.flow_id == flow_id:
                return flow
        for batch in self._pending_at.values():
            for flow in batch:
                if flow.flow_id == flow_id:
                    return flow
        raise SimulationError(f"unknown (or already completed) flow id {flow_id}")

    @property
    def active_flows(self) -> List[Flow]:
        """Flows currently transferring."""
        return sorted(self._active, key=_flow_id_of)

    # ------------------------------------------------------------------ #
    # Live-load introspection (routing policies, telemetry)
    # ------------------------------------------------------------------ #

    def link_occupancy(self, key: LinkKey) -> int:
        """Number of active flows currently riding the link ``key``.

        Read from the user registry, which every code path maintains (unlike
        the rate sums, which only exist under ε-approximation) — so adaptive
        route choice sees the same congestion picture whether the competing
        batches went through the exact solver or the sealed replay lane.
        Phantom batches are counted without materializing them: reading
        congestion must not perturb the replay fast path.
        """
        users = self._link_users.get(key)
        if users is None:
            return 0
        kind = type(users)
        if kind is set:
            return len(users)
        if kind is _PhantomBatch:
            count = 0
            for flow, _epoch in users.members:
                if flow.finish_time is None:
                    for link in flow.path:
                        if link.key == key:
                            count += 1
                            break
            return count
        return 1

    def link_loads(self) -> Iterable[Tuple[LinkKey, float, int]]:
        """Yield ``(key, allocated_rate, active_flows)`` per in-use link.

        The telemetry collector's sampling primitive: one pass over the user
        registry, summing live member rates (infinite rates — empty-path
        flows never register on links, but a defensive 0 keeps the sums
        finite).  Phantom batches are expanded read-only into a side
        accumulator, shared across all of the phantom's links.
        """
        phantom_loads: Dict[int, Dict[LinkKey, Tuple[float, int]]] = {}
        for key, users in self._link_users.items():
            kind = type(users)
            if kind is set:
                rate = 0.0
                for flow in users:
                    if not math.isinf(flow.rate):
                        rate += flow.rate
                yield key, rate, len(users)
            elif kind is _PhantomBatch:
                loads = phantom_loads.get(id(users))
                if loads is None:
                    loads = {}
                    for flow, _epoch in users.members:
                        if flow.finish_time is not None:
                            continue
                        rate = flow.rate if not math.isinf(flow.rate) else 0.0
                        for link in flow.path:
                            entry = loads.get(link.key)
                            loads[link.key] = (
                                (entry[0] + rate, entry[1] + 1)
                                if entry is not None
                                else (rate, 1)
                            )
                    phantom_loads[id(users)] = loads
                rate, count = loads.get(key, (0.0, 0))
                yield key, rate, count
            else:
                rate = users.rate
                yield key, (0.0 if math.isinf(rate) else rate), 1

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None) -> float:
        """Run until all flows complete (or ``until``); returns the stop time.

        Raises
        ------
        SimulationError
            If the event queue drains while flows are still active.  This
            happens when a flow is allocated rate 0 forever — e.g. its path
            crosses a link whose capacity was overridden to 0 — so it would
            otherwise never complete and ``run`` would silently return with
            unfinished flows.
        """
        stop = self.engine.run(until=until)
        if self._active and self.engine.pending == 0:
            stalled = ", ".join(
                f"flow {flow.flow_id} (rate {flow.rate:g} B/s, "
                f"{flow.remaining_bytes:g} B left)"
                for flow in self.active_flows
            )
            raise SimulationError(
                f"simulation stalled at t={stop:g}s with active flows that can "
                f"never complete: {stalled}; check for zero-capacity links"
            )
        return stop

    # ------------------------------------------------------------------ #
    # Fault reaction
    # ------------------------------------------------------------------ #

    def apply_link_change(
        self, keys: Iterable[LinkKey], now: Optional[float] = None
    ) -> None:
        """Re-rate flows after the capacity of ``keys`` changed.

        Called when a fault event degrades or restores link bandwidth: the
        connected components of flows touching the changed links are
        re-allocated from the live capacities (everyone else keeps their
        rates and estimates), and the path-derived caches — per-path static
        bottlenecks, isolated-batch allocations — are dropped so no future
        batch replays a rate computed against the old capacity.
        """
        if now is None:
            now = self.engine.now
        self._path_meta.clear()
        self._isolated_rates.clear()
        self._content_rates.clear()
        self._batch_shapes.clear()
        # Invalidate every outstanding sealed batch: capacities (or the
        # registry itself) are about to change under them.  Phantom batches
        # must come back to real per-flow registrations first — the exact
        # re-rate below walks the user registry.
        self._seal_gen += 1
        if self._phantoms:
            for phantom in list(self._phantoms):
                self._materialize_phantom(phantom)
        # Fault events are never approximated away: the re-rate is exact
        # regardless of allocator_epsilon, and all deferred debt is retired
        # (it was accrued against capacities that no longer hold).
        self._deferred_debt.clear()
        dirty = [key for key in keys if key in self._link_users]
        if dirty:
            self._reallocate((), dirty, now, exact=True)

    def fail_links(
        self, keys: Iterable[LinkKey], now: Optional[float] = None
    ) -> List[Flow]:
        """React to links that just left the fabric (fault or circuit tear).

        Flows riding a dead link are handled per :attr:`link_failure_policy`:
        ``"fail"`` (the default) raises :class:`~repro.errors.LinkFailedError`
        carrying the flow and link, ``"reroute"`` moves each casualty onto a
        fresh shortest path over the surviving topology (raising the same
        typed error when no route survives).  Rerouted flows and the
        survivors they now share links with are re-rated; returns the
        affected flows.
        """
        if now is None:
            now = self.engine.now
        self._path_meta.clear()
        self._isolated_rates.clear()
        self._content_rates.clear()
        self._batch_shapes.clear()
        # Invalidate every outstanding sealed batch: capacities (or the
        # registry itself) are about to change under them.  Phantom batches
        # must come back to real per-flow registrations first — the exact
        # re-rate below walks the user registry.
        self._seal_gen += 1
        if self._phantoms:
            for phantom in list(self._phantoms):
                self._materialize_phantom(phantom)
        # Like apply_link_change: failures force an exact re-rate and retire
        # all deferred debt, no matter the ε.
        self._deferred_debt.clear()
        link_users = self._link_users
        failed_keys = set(keys)
        casualties: List[Flow] = []
        seen: Set[Flow] = set()
        for key in sorted(failed_keys):
            users = link_users.pop(key, None)
            self._link_load.pop(key, None)
            if users is None:
                continue
            del self._link_id_keys[key[2]]
            for flow in (users,) if type(users) is not set else users:
                if flow not in seen:
                    seen.add(flow)
                    casualties.append(flow)
        if not casualties:
            return []
        casualties.sort(key=_flow_id_of)
        reroute = self.link_failure_policy == "reroute"
        victims: List[Tuple[Flow, Link]] = []
        for flow in casualties:
            dead = next(link for link in flow.path if link.key in failed_keys)
            if not reroute:
                raise LinkFailedError(
                    f"flow {flow.flow_id} was on the wire over link "
                    f"{dead.src}->{dead.dst} (id {dead.link_id}) when it "
                    f"failed at t={now:g}s (link_failure_policy='fail')",
                    flow_id=flow.flow_id,
                    link_key=dead.key,
                )
            victims.append((flow, dead))
        dirty_links: List[LinkKey] = []
        version = self.topology.version if self.topology is not None else None
        for flow, dead in victims:
            self._advance_flow(flow, now)
            self._unregister_path(flow, failed_keys, dirty_links)
            flow.path = self._reroute_path(flow, dead, now)
            flow._added_version = version
            self._register_path(flow)
        self._reallocate(casualties, dirty_links, now, exact=True)
        return casualties

    def fail_link_ids(
        self, link_ids: Iterable[int], now: Optional[float] = None
    ) -> List[Flow]:
        """Like :meth:`fail_links`, addressed by topology link id.

        Circuit tear-down events only know the topology link ids they
        removed; this resolves them against the per-id index and is a no-op
        (no cache invalidation, no allocation work) when no active flow was
        riding the torn links — the overwhelmingly common case on a healthy
        circuit fabric.
        """
        index = self._link_id_keys
        keys = [index[link_id] for link_id in link_ids if link_id in index]
        if not keys:
            return []
        return self.fail_links(keys, now)

    def _unregister_path(
        self, flow: Flow, skip_keys: Set[LinkKey], dirty_links: List[LinkKey]
    ) -> None:
        """Remove ``flow`` from its links' user sets (cold fault path)."""
        link_users = self._link_users
        track = self.allocator_epsilon > 0.0
        load = self._link_load
        for link in flow.path:
            key = link.key
            if key in skip_keys:
                continue
            users = link_users.get(key)
            if users is flow:
                del link_users[key]
                del self._link_id_keys[key[2]]
                if track:
                    load.pop(key, None)
            elif type(users) is set:
                users.discard(flow)
                if len(users) == 1:
                    (link_users[key],) = users
                dirty_links.append(key)
                if track:
                    left = load.get(key, 0.0) - flow.rate
                    load[key] = left if left > 0.0 else 0.0

    def _register_path(self, flow: Flow) -> None:
        """Register ``flow`` on every link of its path (cold fault path)."""
        link_users = self._link_users
        track = self.allocator_epsilon > 0.0 and not math.isinf(flow.rate)
        load = self._link_load
        for link in flow.path:
            key = link.key
            users = link_users.get(key)
            if users is None:
                link_users[key] = flow
                self._link_id_keys[key[2]] = key
            elif type(users) is set:
                users.add(flow)
            else:
                link_users[key] = {users, flow}
            if track:
                load[key] = load.get(key, 0.0) + flow.rate
        flow._path_latency = sum(link.latency for link in flow.path)

    def _reroute_path(
        self, flow: Flow, dead: Link, now: float
    ) -> Tuple[Link, ...]:
        """A fresh route for a flow whose path lost ``dead``; typed raise if none."""
        if self.topology is None:
            raise LinkFailedError(
                f"flow {flow.flow_id} lost link {dead.src}->{dead.dst} "
                f"(id {dead.link_id}) at t={now:g}s and no topology is "
                "attached to re-route over",
                flow_id=flow.flow_id,
                link_key=dead.key,
            )
        src, dst = flow.path[0].src, flow.path[-1].dst
        try:
            if self.route_policy is not None:
                return tuple(self.route_policy(src, dst))
            return tuple(self.topology.shortest_path(src, dst))
        except TopologyError as exc:
            raise LinkFailedError(
                f"flow {flow.flow_id} lost link {dead.src}->{dead.dst} "
                f"(id {dead.link_id}) at t={now:g}s and no surviving route "
                f"from {src!r} to {dst!r} exists",
                flow_id=flow.flow_id,
                link_key=dead.key,
            ) from exc

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #

    def _on_batch_start(self, engine: SimulationEngine, start_time: float) -> None:
        now = engine.now
        batch = self._pending_at.pop(start_time, ())
        if (
            self._batch_shapes
            and len(batch) >= _SEALED_MIN_FLOWS
            and self._try_shape_replay(batch, now)
        ):
            return
        link_users = self._link_users
        link_id_keys = self._link_id_keys
        active = self._active
        topology = self.topology
        version = topology.version if topology is not None else None
        path_meta = self._path_meta
        dirty: List[Flow] = []
        solo_bw: List[float] = []
        batch_links: Set[LinkKey] = set()
        add_batch_link = batch_links.add
        intra_shared = False
        external_shared = False
        for flow in batch:
            resolver = flow._resolver
            if resolver is not None:
                # Freshly resolved against the live topology; no liveness
                # check needed (see PathResolver).
                flow._resolver = None
                flow.path = tuple(resolver())
            elif version is not None and flow._added_version != version:
                self._check_links_alive(flow, now)
            flow._progress_time = now
            path = flow.path
            if flow.size_bytes <= _BYTES_EPSILON or not path:
                # Zero-size flows and co-located endpoints (empty path =
                # infinite rate) complete after their latency only; no
                # representable transfer time separates start from finish.
                self._complete_flow(flow, now + flow.latency)
                continue
            active.add(flow)
            # Register the flow on every link of its (shared, cached) path
            # via the per-path metadata, and track who shares links with
            # whom — other members of this batch, or flows already on the wire.
            meta = path_meta.get(id(path))
            if meta is None or meta[0] is not path:
                keys = tuple(link.key for link in path)
                meta = (
                    path,
                    keys,
                    min(link.bandwidth for link in path),
                    sum(link.latency for link in path),
                )
                if len(path_meta) >= 65536:
                    path_meta.clear()
                path_meta[id(path)] = meta
            for key in meta[1]:
                users = link_users.get(key)
                if users is None:
                    link_users[key] = flow
                    link_id_keys[key[2]] = key
                    add_batch_link(key)
                else:
                    if type(users) is _PhantomBatch:
                        # A shape-replayed batch holds this link via a
                        # marker; swap in its real registrations and join
                        # them.  The key can come back empty — the marker
                        # may have outlived its members (they finished, but
                        # the phantom's later duration groups kept the
                        # claim up) — in which case this flow is alone.
                        self._materialize_phantom(users)
                        users = link_users.get(key)
                    if users is None:
                        link_users[key] = flow
                        link_id_keys[key[2]] = key
                        add_batch_link(key)
                        continue
                    if type(users) is set:
                        users.add(flow)
                    else:
                        link_users[key] = {users, flow}
                    if key in batch_links:
                        intra_shared = True
                    else:
                        external_shared = True
            flow._path_latency = meta[3]
            dirty.append(flow)
            solo_bw.append(meta[2])
        if not dirty:
            self._sync_completion_event(now)
            return
        if not intra_shared and not external_shared:
            # The whole batch rides dedicated links (the dominant case on
            # provisioned circuits and fully-connected rails): every flow's
            # max-min fair rate is its plain path bottleneck, no progressive
            # filling and no component closure needed.
            if len(dirty) == len(batch) and len(dirty) >= _SEALED_MIN_FLOWS:
                self._store_shape(batch, solo_bw, version, batch_links)
            self._apply_batch_rates(dirty, solo_bw, now, sealed_links=batch_links)
            return
        if not external_shared:
            # The batch contends only within itself (e.g. one collective step
            # funneling through shared uplinks, no bystanders): its max-min
            # fair allocation depends only on the batch's paths, so identical
            # re-injections — the same step next iteration, the same-shape
            # collective elsewhere — replay the memoized allocation.  The
            # group memo replays single-group batches by item-list identity;
            # the content memo catches everything else (multi-group unions
            # like one synchronized step of many concurrent rings, whose
            # routes repeat step after step), and on a genuine miss solves
            # the batch directly — no component closure is needed when the
            # batch shares links with nobody outside itself.
            rates = self._isolated_batch_rates(batch, dirty, version)
            if rates is None:
                rates = self._self_contained_rates(dirty, version)
            if len(dirty) == len(batch) and len(dirty) >= _SEALED_MIN_FLOWS:
                self._store_shape(batch, rates, version, batch_links)
            self._apply_batch_rates(dirty, rates, now, sealed_links=batch_links)
            return
        self._reallocate(dirty, (), now)

    def _apply_batch_rates(
        self,
        dirty: List[Flow],
        rates: Sequence[float],
        now: float,
        sealed_links: Optional[Set[LinkKey]] = None,
    ) -> None:
        """Assign known rates to a fresh batch and schedule its completions.

        Flows sharing one completion estimate (every transfer of a uniform
        collective step) ride a single heap entry.  When the caller vouches
        that the batch is self-contained (``sealed_links`` is its link set)
        and every member lands on the same estimate, the entry is *sealed*:
        unless something disturbs it in flight, completion retires the whole
        batch with per-link bookkeeping (see :meth:`_on_completion_check`).
        """
        inf = math.inf
        track = self.allocator_epsilon > 0.0
        load = self._link_load
        sealable = sealed_links is not None and len(dirty) >= _SEALED_MIN_FLOWS
        batches: Dict[float, List[Tuple[Flow, int]]] = {}
        for flow, rate in zip(dirty, rates):
            if rate <= 0.0:
                sealable = False  # zero-capacity link; run() reports the stall
                continue
            flow.rate = rate
            if track and rate != inf:
                for link in flow.path:
                    key = link.key
                    load[key] = load.get(key, 0.0) + rate
            epoch = flow._epoch + 1
            flow._epoch = epoch
            estimate = now if rate == inf else now + flow.remaining_bytes / rate
            members = batches.get(estimate)
            if members is None:
                batches[estimate] = [(flow, epoch)]
            else:
                members.append((flow, epoch))
        heap = self._completion_heap
        if sealable and len(batches) == 1:
            ((estimate, members),) = batches.items()
            heapq.heappush(
                heap,
                (
                    estimate,
                    members[0][0].flow_id,
                    -2,
                    (self._seal_gen, members, sealed_links, None),
                ),
            )
            self._sealed_outstanding += 1
        else:
            for estimate, members in batches.items():
                # ``epoch -1`` marks a batch entry; the unique first-member
                # flow id keeps tuple comparison away from the payload.
                heapq.heappush(heap, (estimate, members[0][0].flow_id, -1, members))
        self._sync_completion_event(now)

    def _isolated_batch_rates(
        self, batch: Sequence[Flow], dirty: List[Flow], version: Optional[int]
    ) -> Optional[List[float]]:
        """Memoized allocation for a batch that only contends with itself.

        Valid only when the batch is exactly one ``add_flows`` item list (the
        shared, cached per-step list), nothing in it completed early, and the
        topology version matches the memoized run — then the max-min fair
        rates are a pure function of the item list and can be replayed
        positionally.  Returns ``None`` when the memo cannot be used, in
        which case the caller falls back to progressive filling (whose result
        seeds the memo for next time via this same path).
        """
        group = batch[0]._group
        if (
            group is None
            or batch[-1]._group is not group
            or group.items is None
            or len(dirty) != len(batch)
        ):
            return None
        key = id(group.items)
        memo = self._isolated_rates.get(key)
        if (
            memo is not None
            and memo[0] is group.items
            and memo[1] == version
            and len(memo[2]) == len(dirty)
        ):
            return memo[2]
        flows = list(dirty)
        self.stats.allocator_invocations += 1
        computed = max_min_fair_rates(flows)
        rates = [computed[flow.flow_id] for flow in dirty]
        if len(self._isolated_rates) >= 4096:
            self._isolated_rates.clear()
        self._isolated_rates[key] = (group.items, version, rates)
        return rates

    def _self_contained_rates(
        self, dirty: List[Flow], version: Optional[int]
    ) -> List[float]:
        """Allocation for a self-contained batch, memoized on its route list.

        Max–min fair rates are a pure function of the batch's ordered paths
        and the live capacities, so the memo key is the tuple of path
        identities plus the topology version (capacity changes bump the
        version, and fault handling clears the memo outright).  The stored
        path tuple re-anchors every identity on a hit — a recycled ``id``
        (possible on circuit fabrics, whose per-flow resolver paths are not
        held by the route table) can never replay a stale allocation.  This
        is what makes synchronized steady state cheap: one step of N
        concurrent rings re-uses the same routes every step, so each shape
        is solved once and replayed positionally thereafter.
        """
        key = (version, tuple(id(flow.path) for flow in dirty))
        memo = self._content_rates.get(key)
        if memo is not None:
            anchors, rates = memo
            if all(a is flow.path for a, flow in zip(anchors, dirty)):
                return rates
        self.stats.allocator_invocations += 1
        self.stats.rerated_components += 1
        self.stats.rerated_flows += len(dirty)
        computed = max_min_fair_rates(dirty)
        rates = [computed[flow.flow_id] for flow in dirty]
        if len(self._content_rates) >= 4096:
            self._content_rates.clear()
        self._content_rates[key] = (
            tuple(flow.path for flow in dirty),
            rates,
        )
        return rates

    def _store_shape(
        self,
        batch: Sequence[Flow],
        rates: Sequence[float],
        version: Optional[int],
        batch_links: Set[LinkKey],
    ) -> None:
        """Record a self-contained batch's full replay bookkeeping.

        Called by ``_on_batch_start`` right before rates are applied, while
        every member is still fresh (``remaining_bytes`` untouched and
        ``_path_latency`` set by the registration loop).  A shape without a
        uniform drain duration is stored with ``duration = None`` so the
        replay probe caches the negative instead of re-deriving it.
        """
        shapes = self._batch_shapes
        key = (version, tuple([id(flow.path) for flow in batch]))
        if key in shapes:
            return
        inf = math.inf
        grouping: Optional[Dict[float, List[int]]] = {}
        for index, (flow, rate) in enumerate(zip(batch, rates)):
            if not 0.0 < rate < inf:
                grouping = None
                break
            duration = flow.remaining_bytes / rate
            bucket = grouping.get(duration)
            if bucket is None:
                grouping[duration] = [index]
            else:
                bucket.append(index)
        groups = (
            tuple((duration, tuple(idxs)) for duration, idxs in grouping.items())
            if grouping is not None
            else None
        )
        if len(shapes) >= 4096:
            shapes.clear()
        shapes[key] = _BatchShape(
            anchors=tuple(flow.path for flow in batch),
            sizes=tuple(flow.remaining_bytes for flow in batch),
            rates=list(rates),
            latencies=tuple(flow._path_latency for flow in batch),
            keys=tuple(batch_links),
            key_set=frozenset(batch_links),
            groups=groups,
        )

    def _try_shape_replay(self, batch: Sequence[Flow], now: float) -> bool:
        """Start ``batch`` via its memoized shape, skipping per-flow work.

        Hit conditions: same (cached) path objects in the same order, same
        sizes, same topology version, a uniform memoized drain duration, and
        none of the batch's links currently claimed by anyone.  On a hit the
        links are claimed with one :class:`_PhantomBatch` marker per key (two
        C-level bulk dict operations), the memoized rates and the single
        sealed completion estimate are applied, and the slow path — per-flow
        registration, classification, solving, estimate grouping — is skipped
        entirely.  Every float applied here was produced by the slow path for
        an identical batch, so replays are bit-for-bit identical to it.
        """
        topology = self.topology
        version = topology.version if topology is not None else None
        shape = self._batch_shapes.get(
            (version, tuple([id(flow.path) for flow in batch]))
        )
        if shape is None:
            return False
        groups = shape.groups
        if groups is None:
            return False
        sizes = shape.sizes
        for flow, anchor, size in zip(batch, shape.anchors, sizes):
            if (
                flow.path is not anchor
                or flow.remaining_bytes != size
                or flow._resolver is not None
                or flow._added_version != version
            ):
                return False
        link_users = self._link_users
        keys = shape.keys
        key_set = shape.key_set
        # ``isdisjoint`` iterates its argument: probe with whichever side is
        # smaller (the registry is tiny in steady state, the shape at 10k
        # endpoints claims tens of thousands of keys).
        if len(link_users) < len(key_set):
            if not key_set.isdisjoint(link_users):
                return False
        elif not link_users.keys().isdisjoint(key_set):
            return False
        phantom = _PhantomBatch()
        link_users.update(zip(keys, itertools.repeat(phantom)))
        self._link_id_keys.update(shape.id_items)
        members: List[Tuple[Flow, int]] = []
        append = members.append
        # Members stay out of ``_active``: their pending sealed completion
        # keeps the engine busy (so the stall check can't misfire), nothing
        # else iterates the set, and ``_materialize_phantom`` adds them back
        # the moment the batch rejoins the slow path.
        for flow, rate, latency in zip(batch, shape.rates, shape.latencies):
            flow._progress_time = now
            flow.rate = rate
            flow._path_latency = latency
            epoch = flow._epoch + 1
            flow._epoch = epoch
            append((flow, epoch))
        phantom.members = members
        phantom.keys = keys
        phantom.outstanding = len(groups)
        self._phantoms.add(phantom)
        heap = self._completion_heap
        gen = self._seal_gen
        for duration, indices in groups:
            group_members = [members[i] for i in indices]
            heapq.heappush(
                heap,
                (
                    now + duration,
                    group_members[0][0].flow_id,
                    -2,
                    (gen, group_members, key_set, phantom),
                ),
            )
        self._sealed_outstanding += len(groups)
        self._sync_completion_event(now)
        return True

    def _materialize_phantom(self, phantom: _PhantomBatch) -> None:
        """Swap a phantom batch's link markers for real registrations.

        Called the moment anything needs per-flow membership on one of the
        phantom's links: a later batch joining one of them, or a fault
        walking the registry.  After this the batch is indistinguishable
        from one started on the slow path — its seal stays valid unless the
        usual disturbance channels (exact-closure links, ε arrival joins,
        generation bumps) invalidate it.
        """
        if phantom.retired:
            return
        phantom.retired = True
        self._phantoms.discard(phantom)
        link_users = self._link_users
        link_id_keys = self._link_id_keys
        for key in phantom.keys:
            # Markers are exclusive (claimed only on unclaimed keys, and any
            # toucher materializes before registering), so this is ours.
            del link_users[key]
        track = self.allocator_epsilon > 0.0
        load = self._link_load
        active_add = self._active.add
        for flow, _epoch in phantom.members:
            if flow.finish_time is not None:
                continue
            active_add(flow)
            rate = flow.rate
            for link in flow.path:
                key = link.key
                users = link_users.get(key)
                if users is None:
                    link_users[key] = flow
                    link_id_keys[key[2]] = key
                elif type(users) is set:
                    users.add(flow)
                else:
                    link_users[key] = {users, flow}
                if track:
                    load[key] = load.get(key, 0.0) + rate

    def _on_completion_check(self, engine: SimulationEngine, _payload: object) -> None:
        self._completion_event = None
        now = engine.now
        heap = self._completion_heap
        pop = heapq.heappop
        push = heapq.heappush
        inf = math.inf
        finished: List[object] = []
        while heap and heap[0][0] <= now:
            _estimate, entry_id, epoch, payload = pop(heap)
            if epoch == -2:
                # Sealed self-contained batch: if its generation matches, no
                # exact re-rate's closure and no ε arrival-skip touched its
                # links, and no member was re-rated, then every user of every
                # batch link is still a member draining at the sealed rate —
                # the whole entry completes in bulk (ordered marker below).
                gen, seal_members, seal_keys, seal_phantom = payload
                disturbed_links = self._sealed_disturbed
                # ``seal_keys`` (a set, often tens of thousands of links at
                # scale) probes the usually-empty disturbance set, not the
                # other way round — ``isdisjoint`` iterates its argument.
                ok = gen == self._seal_gen and (
                    not disturbed_links
                    or seal_keys.isdisjoint(disturbed_links)
                )
                if ok and seal_phantom is not None:
                    # Materialized in flight: per-flow registrations now back
                    # the batch, so retire it through the generic path.  An
                    # *unretired* phantom needs no per-member validation at
                    # all — every channel that can touch a member's epoch or
                    # finish time first materializes the phantom.
                    ok = not seal_phantom.retired
                elif ok:
                    for flow, flow_epoch in seal_members:
                        if flow._epoch != flow_epoch or flow.finish_time is not None:
                            ok = False
                            break
                self._sealed_outstanding -= 1
                if self._sealed_outstanding == 0 and disturbed_links:
                    disturbed_links.clear()
                if seal_phantom is not None:
                    seal_phantom.outstanding -= 1
                if ok:
                    if seal_phantom is None:
                        # Slow-path seal: exclusive per-flow registrations
                        # retire with the (single) entry.
                        finished.append((seal_members, seal_keys))
                    elif seal_phantom.outstanding == 0:
                        # Last duration group of the phantom: markers come
                        # down with it.
                        seal_phantom.retired = True
                        self._phantoms.discard(seal_phantom)
                        finished.append((seal_members, seal_keys))
                    else:
                        # Earlier duration group: members complete, but the
                        # markers stay up for the groups still draining.
                        finished.append((seal_members, None))
                    continue
                # Disturbed: fall back to generic per-flow processing.  Every
                # disturbance channel materializes phantoms before it can
                # invalidate a seal; this is insurance for paths that don't.
                if seal_phantom is not None:
                    self._materialize_phantom(seal_phantom)
                members = seal_members
            else:
                members = ((payload, epoch),) if epoch >= 0 else payload
            for flow, flow_epoch in members:
                if flow.finish_time is not None or flow._epoch != flow_epoch:
                    continue  # stale: completed or the rate changed since
                # Lazy progress and drain check, inlined (see _advance_flow /
                # _flow_is_drained for the commented versions).
                rate = flow.rate
                elapsed = now - flow._progress_time
                if elapsed > 0.0:
                    if rate == inf:
                        flow.remaining_bytes = 0.0
                    elif rate > 0.0:
                        left = flow.remaining_bytes - rate * elapsed
                        flow.remaining_bytes = left if left > 0.0 else 0.0
                    flow._progress_time = now
                remaining = flow.remaining_bytes
                if (
                    remaining <= _BYTES_EPSILON
                    or rate == inf
                    or (rate > 0.0 and now + remaining / rate <= now)
                ):
                    finished.append(flow)
                else:
                    # Float roundoff left representable drain time: re-estimate.
                    push(
                        heap,
                        (now + remaining / rate, flow.flow_id, flow_epoch, flow),
                    )
        link_users = self._link_users
        active = self._active
        dirty_links: List[LinkKey] = []
        # Under ε-approximation, collect the rate each completion frees per
        # link (while flow.rate is still set) so _reallocate can weigh the
        # skipped redistribution against the survivors' allocated load.
        freed: Optional[Dict[LinkKey, float]] = (
            {} if self.allocator_epsilon > 0.0 else None
        )
        load = self._link_load
        link_id_keys = self._link_id_keys
        for item in finished:
            if type(item) is tuple:
                # Sealed batch (or one duration group of a phantom one),
                # validated at pop: every key's users are exactly the members
                # or the phantom marker standing in for them, so
                # registrations retire per link — deferred to the phantom's
                # last group when ``seal_keys`` is None — and the drain math
                # is skipped (rates never changed in flight).
                seal_members, seal_keys = item
                if seal_keys is not None:
                    for key in seal_keys:
                        del link_users[key]
                        del link_id_keys[key[2]]
                    if freed is not None:
                        debts = self._deferred_debt
                        for key in seal_keys:
                            load.pop(key, None)
                            debts.pop(key, None)
                for flow, _epoch in seal_members:
                    active.discard(flow)
                    self._complete_flow(flow, now + flow._path_latency)
                continue
            flow = item
            active.discard(flow)
            for link in flow.path:
                key = link.key
                users = link_users.get(key)
                if users is flow:
                    del link_users[key]
                    del link_id_keys[key[2]]
                    if freed is not None:
                        load.pop(key, None)
                        self._deferred_debt.pop(key, None)
                elif type(users) is set:
                    users.discard(flow)
                    if len(users) == 1:
                        # Collapse back to the lone-survivor representation.
                        (link_users[key],) = users
                    # Only links with surviving users can wake anyone up.
                    dirty_links.append(key)
                    if freed is not None:
                        rate = flow.rate
                        freed[key] = freed.get(key, 0.0) + rate
                        left = load.get(key, 0.0) - rate
                        load[key] = left if left > 0.0 else 0.0
            self._complete_flow(flow, now + flow._path_latency)
        self._reallocate((), dirty_links, now, freed=freed)

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def _reallocate(
        self,
        dirty_flows: Sequence[Flow],
        dirty_links: Sequence[LinkKey],
        now: float,
        freed: Optional[Dict[LinkKey, float]] = None,
        exact: bool = False,
    ) -> None:
        """Recompute rates for the component(s) touched by a flow change.

        ``dirty_flows`` are newly-started flows, ``dirty_links`` the links of
        flows that just completed.  The affected set is the transitive
        closure of link sharing starting from those seeds; max–min fair
        allocation decomposes exactly over such components, so every other
        active flow keeps its rate and completion estimate.  Flows that share
        no link with anyone (the dominant case on dedicated circuits and
        fully-provisioned rails) bypass progressive filling entirely: their
        max–min fair rate is the plain path bottleneck.

        Under ε-approximation (``allocator_epsilon > 0``) pure-completion
        and pure-arrival events may skip the component closure entirely —
        see :meth:`_skip_completion_rerate` and
        :meth:`_approximate_arrival_rates`.  Fault paths pass ``exact=True``
        to force the full re-rate regardless of ε.
        """
        eps = 0.0 if exact else self.allocator_epsilon
        track = self.allocator_epsilon > 0.0
        if (
            eps > 0.0
            and freed is not None
            and dirty_links
            and not dirty_flows
            and self._skip_completion_rerate(dirty_links, freed, now, eps)
        ):
            return
        link_users = self._link_users
        load = self._link_load
        shared: List[Flow] = []
        for flow in dirty_flows:
            solo_rate = math.inf
            for link in flow.path:
                if type(link_users[link.key]) is set:
                    solo_rate = None
                    break
                bandwidth = link.bandwidth
                if bandwidth < solo_rate:
                    solo_rate = bandwidth
            if solo_rate is None:
                shared.append(flow)
            elif solo_rate != flow.rate:
                self._advance_flow(flow, now)
                if track and not math.isinf(solo_rate):
                    delta = solo_rate - flow.rate
                    for link in flow.path:
                        key = link.key
                        load[key] = load.get(key, 0.0) + delta
                flow.rate = solo_rate
                flow._epoch += 1
                self._push_completion(flow, now)
        if (
            eps > 0.0
            and shared
            and not dirty_links
            and self._approximate_arrival_rates(shared, now, eps)
        ):
            return
        affected: Set[Flow] = set()
        seen_links: Set[LinkKey] = set(dirty_links)
        stack: List[LinkKey] = list(seen_links)
        for flow in shared:
            affected.add(flow)
            for link in flow.path:
                key = link.key
                if key not in seen_links:
                    seen_links.add(key)
                    stack.append(key)
        while stack:
            key = stack.pop()
            users = link_users.get(key)
            if users is None:
                continue
            for user in users if type(users) is set else (users,):
                if user in affected:
                    continue
                affected.add(user)
                for link in user.path:
                    other = link.key
                    if other not in seen_links:
                        seen_links.add(other)
                        stack.append(other)
        if affected:
            if self._sealed_outstanding:
                # The closure touched these links: any sealed batch riding
                # one of them can no longer complete in bulk.
                self._sealed_disturbed.update(seen_links)
            flows = sorted(affected, key=_flow_id_of)
            stats = self.stats
            stats.allocator_invocations += 1
            stats.rerated_components += 1
            stats.rerated_flows += len(flows)
            # The closure above already isolated the sharing component(s), so
            # dispatch straight to a solver instead of re-decomposing.
            if (
                self.fill_workers > 1
                and _np is not None
                and len(flows) >= _PARALLEL_MIN_FLOWS
            ):
                rates = _max_min_fair_rates_parallel(
                    flows, workers=self.fill_workers
                )
            elif _np is not None and len(flows) >= _VECTORIZE_MIN_FLOWS:
                rates = _max_min_fair_rates_numpy(flows)
            else:
                rates = _max_min_fair_rates_python(flows)
            for flow in flows:
                new_rate = rates[flow.flow_id]
                if new_rate != flow.rate:
                    self._advance_flow(flow, now)
                    flow.rate = new_rate
                    flow._epoch += 1
                    self._push_completion(flow, now)
            if track:
                # Exact re-rate: refresh the component's load sums from the
                # fresh allocation (every user of every seen link is in
                # ``flows``, a closure property) and retire its debt.
                debts = self._deferred_debt
                for key in seen_links:
                    debts.pop(key, None)
                    if key in load:
                        load[key] = 0.0
                for flow in flows:
                    rate = flow.rate
                    if math.isinf(rate):
                        continue
                    for link in flow.path:
                        load[link.key] = load.get(link.key, 0.0) + rate
        self._sync_completion_event(now)

    def _skip_completion_rerate(
        self,
        dirty_links: Sequence[LinkKey],
        freed: Dict[LinkKey, float],
        now: float,
        eps: float,
    ) -> bool:
        """ε-skip for a completion batch: leave the survivors' rates alone.

        Completions only ever *free* capacity, so the current allocation
        stays feasible; what the skip defers is redistributing the freed
        rate.  That shortfall is tracked as per-link debt, and the skip is
        taken only while every dirty link's accumulated debt stays within ε
        of its remaining allocated load — the deferred-dirty bound: as soon
        as a completion frees more than ε of a link's load, the component is
        re-rated exactly (which also retires the debt).  Survivors' rates
        are monotone under peer departures, so the deferral only ever delays
        completions, by at most the ε fraction of capacity left unassigned.
        """
        debts = self._deferred_debt
        load = self._link_load
        pending: Dict[LinkKey, float] = {}
        for key in dirty_links:
            if key in pending:
                continue
            debt = debts.get(key, 0.0) + freed.get(key, 0.0)
            # Written so inf/nan debt or load fails the comparison and forces
            # the exact path (also wakes zero-rate survivors: their link
            # carries no load, so any positive debt forces a re-rate).
            if not debt <= eps * load.get(key, 0.0):
                return False
            pending[key] = debt
        debts.update(pending)
        self.stats.epsilon_skips += 1
        self._sync_completion_event(now)
        return True

    def _approximate_arrival_rates(
        self, shared: List[Flow], now: float, eps: float
    ) -> bool:
        """ε fast path for arrivals: rate new flows from residual capacity.

        Existing flows keep their rates, and the new flows split the
        *residual* capacity of their links max–min fairly among themselves —
        a solve over the arriving batch instead of the full component
        closure.  The shortcut is only taken when every new flow still
        receives at least ``(1 - ε)`` of its equal-share reference
        ``min(cap / users)`` — a lower bound on its exact max–min rate — so
        no member's rate is off by more than a relative ε from a bound on
        exact; otherwise the caller falls back to the exact closure (which
        also reclaims anything an earlier skip left on the table).
        """
        link_users = self._link_users
        load = self._link_load
        residual: Dict[LinkKey, float] = {}
        fair_reference: List[float] = []
        for flow in shared:
            fair = math.inf
            for link in flow.path:
                key = link.key
                if key not in residual:
                    left = link.bandwidth - load.get(key, 0.0)
                    residual[key] = left if left > 0.0 else 0.0
                users = link_users[key]
                count = len(users) if type(users) is set else 1
                share = link.bandwidth / count
                if share < fair:
                    fair = share
            fair_reference.append(fair)
        self.stats.allocator_invocations += 1
        rates = max_min_fair_rates(shared, residual)
        floor = 1.0 - eps
        for flow, fair in zip(shared, fair_reference):
            if rates[flow.flow_id] < fair * floor:
                return False
        disturbed = (
            self._sealed_disturbed if self._sealed_outstanding else None
        )
        for flow in shared:
            rate = rates[flow.flow_id]
            if rate != flow.rate:
                self._advance_flow(flow, now)
                flow.rate = rate
                flow._epoch += 1
                self._push_completion(flow, now)
            if not math.isinf(rate):
                for link in flow.path:
                    key = link.key
                    load[key] = load.get(key, 0.0) + rate
            if disturbed is not None:
                # The skip joined these links without re-rating anyone:
                # sealed batches riding them must fall back at completion.
                disturbed.update(link.key for link in flow.path)
        self.stats.epsilon_skips += 1
        self._sync_completion_event(now)
        return True

    def _advance_flow(self, flow: Flow, now: float) -> None:
        """Bring ``flow.remaining_bytes`` up to date at ``now`` (lazy progress)."""
        elapsed = now - flow._progress_time
        if elapsed > 0.0:
            if math.isinf(flow.rate):
                flow.remaining_bytes = 0.0
            elif flow.rate > 0.0:
                flow.remaining_bytes = max(
                    0.0, flow.remaining_bytes - flow.rate * elapsed
                )
        flow._progress_time = now

    def _push_completion(self, flow: Flow, now: float) -> None:
        if flow.rate <= 0.0:
            return  # no completion in sight; run() reports the stall
        if math.isinf(flow.rate):
            estimate = now
        else:
            estimate = now + flow.remaining_bytes / flow.rate
        heapq.heappush(
            self._completion_heap, (estimate, flow.flow_id, flow._epoch, flow)
        )

    def _sync_completion_event(self, now: float) -> None:
        """Keep exactly one engine event pointed at the earliest live estimate."""
        heap = self._completion_heap
        while heap:
            _estimate, _entry_id, epoch, payload = heap[0]
            if epoch < 0:
                # Batch entry: treated as live without scanning its members
                # (at worst one spurious, empty completion event fires).
                break
            if payload.finish_time is None and payload._epoch == epoch:
                break
            heapq.heappop(heap)
        if not heap:
            if self._completion_event is not None:
                self._completion_event.cancel()
                self._completion_event = None
            return
        target = heap[0][0]
        if self.coarsen_quantum > 0.0:
            # Coarsening: completion checks land on quantum boundaries, so
            # estimates within one quantum drain in a single heap sweep and
            # trigger one reallocation pass instead of one each.
            target = self._quantize(target)
        if target < now:
            target = now
        if (
            self._completion_event is not None
            and self._completion_event.time == target
            and not self._completion_event.cancelled
        ):
            return
        if self._completion_event is not None:
            self._completion_event.cancel()
        self._completion_event = self.engine.schedule(
            target, self._on_completion_check, None
        )

    # ------------------------------------------------------------------ #
    # Liveness and completion
    # ------------------------------------------------------------------ #

    def _check_links_alive(self, flow: Flow, now: float) -> None:
        """Validate (and, under ``"reroute"``, repair) a pending flow's path.

        Skipped entirely when the topology version is unchanged since the
        flow was admitted (nothing can have been torn down), which makes the
        check O(1) on static packet fabrics.  When a path link is dead and
        :attr:`link_failure_policy` is ``"reroute"``, the flow is moved onto
        a fresh route over the surviving topology before it registers.

        Raises
        ------
        LinkFailedError
            If a path link was *failed* by fault injection (or no surviving
            route exists under the reroute policy).
        SimulationError
            If a path link is no longer installed for any other reason — on
            circuit fabrics this means a reconfiguration tore the circuit
            down between routing and flow start, and charging the stale
            capacity would silently corrupt the allocation.
        """
        if self.topology is None:
            return
        if flow._added_version == self.topology.version:
            return
        for link in flow.path:
            if self.topology.has_link(link.link_id) and (
                self.topology.link(link.link_id) is link
            ):
                continue
            if self.link_failure_policy == "reroute":
                flow.path = self._reroute_path(flow, link, now)
                flow._added_version = self.topology.version
                return
            if self.topology.link_failed(link.link_id):
                raise LinkFailedError(
                    f"flow {flow.flow_id} starting at t={now:g}s is routed "
                    f"over failed link {link.src}->{link.dst} "
                    f"(id {link.link_id}) (link_failure_policy='fail')",
                    flow_id=flow.flow_id,
                    link_key=link.key,
                )
            raise SimulationError(
                f"flow {flow.flow_id} starting at t={now:g}s is routed over "
                f"torn-down link {link.src}->{link.dst} (id {link.link_id}); "
                "the circuit was reconfigured away before the flow started"
            )

    @staticmethod
    def _flow_is_drained(flow: Flow, now: float) -> bool:
        """Whether ``flow`` counts as finished at ``now``.

        Besides the byte tolerance, a flow whose residual drain time is below
        the floating-point resolution of the clock (``now + time_left == now``)
        must complete *now*: no representable future event could ever drain
        it, and rescheduling a completion check at the same instant would spin
        the engine forever.  Infinite-rate flows (unconstrained routes) drain
        instantly by definition.
        """
        if flow.remaining_bytes <= _BYTES_EPSILON:
            return True
        if math.isinf(flow.rate):
            return True
        if flow.rate > 0:
            return now + flow.remaining_bytes / flow.rate <= now
        return False

    def _complete_flow(self, flow: Flow, finish_time: float) -> None:
        flow.finish_time = finish_time
        flow.remaining_bytes = 0.0
        flow.rate = 0.0
        if flow._on_complete is not None:
            flow._on_complete(flow)
        group = flow._group
        if group is not None:
            if finish_time > group.end:
                group.end = finish_time
            group.outstanding -= 1
            if group.outstanding == 0:
                group.callback(group.end)
