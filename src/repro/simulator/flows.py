"""Flow-level (fluid) network simulation with max–min fair bandwidth sharing.

Each :class:`Flow` moves ``size_bytes`` along a fixed path of links.  Whenever
the set of active flows changes (an arrival or a completion), the simulator
recomputes the max–min fair allocation with the standard progressive-filling
algorithm and reschedules the next completion.  This is the usual fluid
approximation used by datacenter-fabric studies, including the ones the paper
builds on (TopoOpt, Rail-only): no packets, no transport dynamics, just
capacity sharing.

Two things make the engine scale to 10k-endpoint fabrics:

* **Vectorized water-filling** — :func:`max_min_fair_rates` runs the
  progressive-filling rounds over a flat link×flow incidence structure with
  numpy when the flow set is large, falling back to the incremental
  pure-Python algorithm for small sets (and when numpy is unavailable).
* **Component-local reallocation** — the simulator maintains per-link user
  sets incrementally and, on every arrival/completion batch, recomputes rates
  only for the connected component of flows that (transitively) share links
  with the changed flows.  Max–min fair allocation decomposes exactly over
  such components: flows whose bottleneck sets are unaffected keep their
  rates, their progress is tracked lazily per flow, and their completion
  estimates stay queued in a lazy heap instead of being rescanned per event.

The DAG executor uses this engine when run with a flow-level network model
(:class:`~repro.simulator.flow_network.FlowNetworkModel`, selected with the
``network_mode="flow"`` backend knob): every scale-out collective is expanded
into per-step point-to-point transfers that share one simulator, so
concurrent collectives contend for link capacity.  The analytic mode bypasses
it.  The engine is also usable standalone for micro-studies such as incast on
a shared rail switch versus dedicated circuits.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import LinkFailedError, SimulationError, TopologyError
from ..topology.base import Link, Topology
from .engine import SimulationEngine

try:  # numpy is a declared dependency, but the pure-Python path keeps the
    import numpy as _np  # engine usable in stripped-down environments.
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

#: Tolerance used when deciding whether a flow has finished transferring.
_BYTES_EPSILON = 1e-6

#: Flow-set size below which progressive filling runs directly — component
#: decomposition and numpy dispatch only pay for themselves on larger sets.
_DECOMPOSE_MIN_FLOWS = 16

#: Component size at which the numpy water-filling pays for its setup cost.
_VECTORIZE_MIN_FLOWS = 32

#: Deferred route: called at the flow's start event to resolve the path.
#: Circuit-switched fabrics install a collective's circuits *after* its flows
#: are scheduled (the switching delay separates the two), so the route over
#: those circuits only exists — and is only looked up — when the flow starts.
#: A resolver must return currently-installed links (the version-keyed route
#: caches guarantee this), so resolver paths skip the per-link liveness check.
PathResolver = Callable[[], Sequence[Link]]

LinkKey = Tuple[str, str, int]


def _flow_id_of(flow: "Flow") -> int:
    """Sort key for deterministic iteration over flow sets."""
    return flow.flow_id


class _FlowGroup:
    """Completion accounting for one batch of flows injected together.

    The owner receives a single callback with the batch's last finish time
    once every member completed — one callback per collective step instead of
    one per flow.  The group also remembers the (cached, shared) item list it
    was built from, which keys the isolated-component allocation memo.
    """

    __slots__ = ("outstanding", "end", "callback", "items")

    def __init__(self, outstanding: int, callback: Callable[[float], None]) -> None:
        self.outstanding = outstanding
        self.end = 0.0
        self.callback = callback
        self.items: object = None


class Flow:
    """One fluid flow over a fixed path.

    Attributes
    ----------
    flow_id:
        Unique identifier assigned by the simulator.
    path:
        The links the flow traverses, in order.  An empty path means the
        source and destination are co-located and the flow completes after
        its latency only.
    size_bytes:
        Bytes to transfer.
    start_time:
        Arrival time of the flow.
    """

    __slots__ = (
        "flow_id",
        "path",
        "size_bytes",
        "start_time",
        "remaining_bytes",
        "rate",
        "finish_time",
        "_progress_time",
        "_epoch",
        "_added_version",
        "_resolver",
        "_on_complete",
        "_group",
        "_path_latency",
    )

    def __init__(
        self,
        flow_id: int,
        path: Sequence[Link],
        size_bytes: float,
        start_time: float,
    ) -> None:
        if size_bytes < 0:
            raise SimulationError("flow size must be non-negative")
        self.flow_id = flow_id
        self.path: Tuple[Link, ...] = tuple(path)
        self.size_bytes = size_bytes
        self.start_time = start_time
        self.remaining_bytes = float(size_bytes)
        self.rate = 0.0
        self.finish_time: Optional[float] = None
        #: Time up to which ``remaining_bytes`` is accurate (lazy progress).
        self._progress_time = start_time
        #: Bumped on every rate change; stale completion-heap entries carry an
        #: older epoch and are dropped when they surface.
        self._epoch = 0
        #: Topology version when the flow was admitted (liveness fast path).
        self._added_version: Optional[int] = None
        #: Deferred path resolver, completion callback, and batch accounting
        #: (set by the owning simulator; None for standalone flows).
        self._resolver: Optional[PathResolver] = None
        self._on_complete: Optional[Callable[["Flow"], None]] = None
        self._group: Optional[_FlowGroup] = None
        #: Path latency, folded in during link registration (hot path).
        self._path_latency = 0.0

    @property
    def latency(self) -> float:
        """Total propagation latency along the flow's path."""
        return sum(link.latency for link in self.path)

    @property
    def done(self) -> bool:
        """Whether the flow has finished transferring."""
        return self.finish_time is not None

    def __repr__(self) -> str:
        return (
            f"Flow(flow_id={self.flow_id}, hops={len(self.path)}, "
            f"size_bytes={self.size_bytes!r}, start_time={self.start_time!r})"
        )


def max_min_fair_rates(
    flows: Sequence[Flow], capacities: Optional[Dict[LinkKey, float]] = None
) -> Dict[int, float]:
    """Compute the max–min fair rate of each flow by progressive filling.

    Dispatches to a numpy water-filling over the link×flow incidence
    structure for large flow sets and to the incremental pure-Python
    algorithm otherwise; both produce identical allocations.

    Parameters
    ----------
    flows:
        Active flows; flows with an empty path receive infinite rate.
    capacities:
        Optional override of per-link capacities keyed by ``link.key``
        (defaults to each link's ``bandwidth``).

    Returns
    -------
    dict
        Mapping of ``flow_id`` to allocated rate in bytes/second.
    """
    if len(flows) < _DECOMPOSE_MIN_FLOWS:
        return _max_min_fair_rates_python(flows, capacities)
    if _np is not None and len(flows) >= _VECTORIZE_MIN_FLOWS:
        # The numpy solver labels link-sharing components itself and fills
        # them in parallel (one bottleneck per component per round), so no
        # Python-level decomposition is needed in front of it.
        return _max_min_fair_rates_numpy(flows, capacities)
    # Max-min fairness decomposes exactly over connected components of the
    # flow/link sharing graph: progressive filling on one component never
    # reads capacity touched by another.  Without numpy, solving components
    # independently still turns the round count from "distinct shares
    # overall" into "distinct shares per component".
    components = _sharing_components(flows)
    rates: Dict[int, float] = {}
    for component in components:
        rates.update(_max_min_fair_rates_python(component, capacities))
    return rates


def _sharing_components(flows: Sequence[Flow]) -> List[List[Flow]]:
    """Partition flows into connected components of link sharing.

    Empty-path flows form singleton components (they get infinite rate from
    either solver).  Union-find over link keys with path halving; each
    (flow, link) incidence is touched O(alpha) times.
    """
    parent: Dict[LinkKey, LinkKey] = {}
    for flow in flows:
        path = flow.path
        if not path:
            continue
        first = path[0].key
        root = parent.setdefault(first, first)
        while parent[root] is not root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        for link in path[1:]:
            key = link.key
            other = parent.setdefault(key, key)
            while parent[other] is not other:
                parent[other] = parent[parent[other]]
                other = parent[other]
            if other is not root:
                parent[other] = root
    groups: Dict[Optional[LinkKey], List[Flow]] = {}
    for flow in flows:
        if not flow.path:
            groups.setdefault(None, []).append(flow)
            continue
        root = flow.path[0].key
        while parent[root] is not root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        groups.setdefault(root, []).append(flow)
    return list(groups.values())


def _max_min_fair_rates_python(
    flows: Sequence[Flow], capacities: Optional[Dict[LinkKey, float]] = None
) -> Dict[int, float]:
    """Progressive filling with incremental per-link user-set bookkeeping."""
    remaining_capacity: Dict[LinkKey, float] = {}
    # Per-link set of *still-unallocated* flows; flows are removed as they
    # freeze, so each (flow, link) pair is touched O(1) times overall instead
    # of being re-intersected against the unallocated set every round.
    link_flows: Dict[LinkKey, Set[int]] = {}
    flow_by_id: Dict[int, Flow] = {flow.flow_id: flow for flow in flows}
    for flow in flows:
        for link in flow.path:
            key = link.key
            if key not in remaining_capacity:
                capacity = link.bandwidth
                if capacities and key in capacities:
                    capacity = capacities[key]
                remaining_capacity[key] = capacity
                link_flows[key] = set()
            link_flows[key].add(flow.flow_id)

    rates: Dict[int, float] = {}
    num_unallocated = 0
    for flow in flows:
        if not flow.path:
            rates[flow.flow_id] = math.inf
        else:
            num_unallocated += 1

    while num_unallocated:
        # Find the most constrained link: smallest fair share among its
        # still-unallocated flows.
        best_share = None
        for key, users in link_flows.items():
            if not users:
                continue
            share = remaining_capacity[key] / len(users)
            if best_share is None or share < best_share:
                best_share = share
        if best_share is None:
            # Remaining flows traverse only links with no capacity constraint.
            for flow in flows:
                if flow.flow_id not in rates:
                    rates[flow.flow_id] = math.inf
            break
        # Freeze every flow crossing a link whose fair share equals the bottleneck.
        frozen: Set[int] = set()
        for key, users in link_flows.items():
            if not users:
                continue
            share = remaining_capacity[key] / len(users)
            if share <= best_share * (1 + 1e-12):
                frozen.update(users)
        # Subtract the frozen flows' rates from every link they traverse and
        # drop them from the per-link user sets (incremental bookkeeping);
        # links whose last user froze are retired from the scan entirely.
        for flow_id in frozen:
            rates[flow_id] = best_share
            for link in flow_by_id[flow_id].path:
                key = link.key
                users = link_flows.get(key)
                if users is None:
                    continue  # retired in an earlier round; never read again
                remaining_capacity[key] = max(
                    0.0, remaining_capacity[key] - best_share
                )
                users.discard(flow_id)
                if not users:
                    del link_flows[key]
        num_unallocated -= len(frozen)
    return rates


#: Iteration cap for the component-label propagation inside the numpy
#: solver.  Typical sharing graphs converge in a handful of sweeps; on
#: pathological long chains the solver safely falls back to one global
#: component (exact, just more filling rounds).
_LABEL_SWEEPS_MAX = 16


def _max_min_fair_rates_numpy(
    flows: Sequence[Flow], capacities: Optional[Dict[LinkKey, float]] = None
) -> Dict[int, float]:
    """Segmented water-filling over a flat link×flow incidence structure.

    The solver first labels the connected components of the link-sharing
    graph with a few ``minimum.reduceat`` sweeps, then runs progressive
    filling with one bottleneck *per component* per round: independent
    components fill in parallel, so the round count is the deepest single
    component's share ladder instead of the number of distinct shares
    overall.  Every round is a handful of O(incidence) array operations,
    and the incidence arrays are compacted as flows freeze.  The allocation
    is identical to the pure-Python algorithm.
    """
    rates: Dict[int, float] = {}
    link_index: Dict[LinkKey, int] = {}
    caps: List[float] = []
    entry_flow: List[int] = []
    entry_link: List[int] = []
    constrained: List[Flow] = []
    for flow in flows:
        if not flow.path:
            rates[flow.flow_id] = math.inf
            continue
        flow_pos = len(constrained)
        constrained.append(flow)
        for link in flow.path:
            key = link.key
            link_pos = link_index.get(key)
            if link_pos is None:
                link_pos = len(caps)
                link_index[key] = link_pos
                capacity = link.bandwidth
                if capacities and key in capacities:
                    capacity = capacities[key]
                caps.append(capacity)
            entry_flow.append(flow_pos)
            entry_link.append(link_pos)
    if not constrained:
        return rates

    num_links = len(caps)
    cap = _np.asarray(caps, dtype=float)
    e_flow = _np.asarray(entry_flow, dtype=_np.intp)
    e_link = _np.asarray(entry_link, dtype=_np.intp)

    # --- component labels (links): alternating min-propagation ----------- #
    # Entries were appended flow-by-flow, so e_flow is non-decreasing and
    # every flow/link has at least one entry: reduceat segments are exact.
    flow_starts = _np.searchsorted(e_flow, _np.arange(len(constrained)))
    link_order = _np.argsort(e_link, kind="stable")
    sorted_links = e_link[link_order]
    link_starts = _np.flatnonzero(
        _np.r_[True, sorted_links[1:] != sorted_links[:-1]]
    )
    label = _np.arange(num_links, dtype=_np.intp)
    converged = False
    for _sweep in range(_LABEL_SWEEPS_MAX):
        flow_label = _np.minimum.reduceat(label[e_link], flow_starts)
        new_label = _np.minimum.reduceat(
            flow_label[e_flow][link_order], link_starts
        )
        if _np.array_equal(new_label, label):
            converged = True
            break
        label = new_label
    if not converged:
        # Under-merged labels would freeze non-global minima inside one true
        # component; a single global component is always exact.
        label = _np.zeros(num_links, dtype=_np.intp)
    _uniq, comp_of_link = _np.unique(label, return_inverse=True)
    comp_of_flow = comp_of_link[e_link[flow_starts]]
    comp_order = _np.argsort(comp_of_link, kind="stable")
    sorted_comps = comp_of_link[comp_order]
    comp_starts = _np.flatnonzero(
        _np.r_[True, sorted_comps[1:] != sorted_comps[:-1]]
    )

    user_count = _np.bincount(e_link, minlength=num_links).astype(float)
    entry_alive = _np.ones(len(e_flow), dtype=bool)
    flow_rate = _np.zeros(len(constrained), dtype=float)
    flow_unallocated = _np.ones(len(constrained), dtype=bool)
    remaining = len(constrained)

    while remaining:
        with _np.errstate(divide="ignore"):
            shares = _np.where(
                user_count > 0.0, cap / _np.maximum(user_count, 1.0), _np.inf
            )
        # One bottleneck per component; finished components read inf and
        # freeze nothing (their entries are all dead).  A component whose
        # remaining links are unconstrained freezes its flows at inf.
        comp_best = _np.minimum.reduceat(shares[comp_order], comp_starts)
        frozen_link = shares <= comp_best[comp_of_link] * (1 + 1e-12)
        frozen_entries = entry_alive & frozen_link[e_link]
        newly_frozen = _np.unique(e_flow[frozen_entries])
        if newly_frozen.size == 0:
            flow_rate[flow_unallocated] = _np.inf
            break
        flow_rate[newly_frozen] = comp_best[comp_of_flow[newly_frozen]]
        flow_unallocated[newly_frozen] = False
        dead = entry_alive & ~flow_unallocated[e_flow]
        dead_link = e_link[dead]
        finite_rate = _np.where(
            _np.isfinite(flow_rate), flow_rate, 0.0
        )  # inf-rate flows only ever cross unconstrained links
        cap_drain = _np.bincount(
            dead_link, weights=finite_rate[e_flow[dead]], minlength=num_links
        )
        cap -= cap_drain
        _np.maximum(cap, 0.0, out=cap)
        user_count -= _np.bincount(dead_link, minlength=num_links)
        entry_alive &= ~dead
        remaining -= int(newly_frozen.size)
        # Compact the incidence arrays once most entries have died, so a
        # many-round filling scans the shrinking live set instead of the
        # full original incidence.
        alive_count = int(entry_alive.sum())
        if alive_count * 2 < e_flow.size:
            e_flow = e_flow[entry_alive]
            e_link = e_link[entry_alive]
            entry_alive = _np.ones(alive_count, dtype=bool)

    for flow_pos, flow in enumerate(constrained):
        value = flow_rate[flow_pos]
        rates[flow.flow_id] = math.inf if math.isinf(value) else float(value)
    return rates


class FlowSimulator:
    """Event-driven fluid simulator over a set of flows.

    Usage::

        sim = FlowSimulator()
        sim.add_flow(path, size_bytes, start_time=0.0, on_complete=callback)
        sim.run()

    Arrivals at one instant are batched behind a single engine event, and a
    batch of arrivals/completions triggers rate recomputation only for the
    connected component of flows sharing links with the change (see the
    module docstring).
    """

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self.engine = engine or SimulationEngine()
        #: Optional topology the flows route over.  When set, every flow's
        #: links are checked for liveness at the flow's start event, so a
        #: route over a torn-down circuit fails loudly instead of silently
        #: charging capacity that no longer exists.
        self.topology = topology
        self._active: Set[Flow] = set()
        self._counter = itertools.count()
        #: Flows pending start, batched per exact arrival instant; one
        #: engine event per distinct instant reallocates once for the batch.
        self._pending_at: Dict[float, List[Flow]] = {}
        #: Active flows per link key, maintained incrementally.  The value is
        #: the lone :class:`Flow` while a link has a single user (the common
        #: case on provisioned fabrics) and is promoted to a set of flows on
        #: the first sharer — one allocation per *contended* link instead of
        #: one per registration.
        self._link_users: Dict[LinkKey, object] = {}
        #: Per-path registration metadata keyed by the path tuple's identity:
        #: (path, link keys, static bottleneck bandwidth, total latency).
        #: Paths come from the models' route tables as shared tuples, so one
        #: entry serves every flow and iteration using the route.  Holding
        #: the path in the value pins the id.  (Mutating a link's bandwidth
        #: between two same-path flows is not picked up by the cached
        #: bottleneck; the progressive-filling path always reads live.)
        self._path_meta: Dict[int, Tuple[Tuple[Link, ...], Tuple[LinkKey, ...], float, float]] = {}
        #: Lazy completion heap of (finish_estimate, tiebreak_id, epoch,
        #: payload) entries — single flows carry their epoch (stale entries,
        #: whose flow's rate changed since, are skipped), uniform batches
        #: carry ``-1`` and a list of (flow, epoch) members.
        self._completion_heap: List[Tuple[float, int, int, object]] = []
        self._completion_event = None
        #: Memoized allocations for self-contained batches, keyed by the
        #: identity of the (cached) item list they were injected from.
        self._isolated_rates: Dict[int, Tuple[object, Optional[int], List[float]]] = {}
        #: What happens to a flow whose path loses a link while the flow is
        #: pending or on the wire: ``"fail"`` raises the typed
        #: :class:`~repro.errors.LinkFailedError`, ``"reroute"`` resolves a
        #: fresh route over the surviving topology.  Fault-aware network
        #: models set this from their :class:`~repro.simulator.faults.FaultPlan`.
        self.link_failure_policy: str = "fail"
        #: link_id -> key of every link with at least one active user, so
        #: circuit tear-downs (which only know topology link ids) can find
        #: the flows riding them without scanning the user registry.
        self._link_id_keys: Dict[int, LinkKey] = {}

    # ------------------------------------------------------------------ #
    # Flow management
    # ------------------------------------------------------------------ #

    def add_flow(
        self,
        path: Union[Sequence[Link], PathResolver],
        size_bytes: float,
        start_time: float = 0.0,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Register a flow that arrives at ``start_time``.

        ``path`` is either the concrete link sequence or a zero-argument
        callable resolved at the flow's start event (deferred path
        resolution): on circuit-switched fabrics the route only exists once
        the circuits are installed, which happens between scheduling and
        start.  Until a deferred path resolves, the flow reports an empty
        path.
        """
        resolver: Optional[PathResolver] = None
        if callable(path):
            resolver, path = path, ()
        flow = Flow(
            flow_id=next(self._counter),
            path=path,
            size_bytes=size_bytes,
            start_time=start_time,
        )
        if self.topology is not None:
            flow._added_version = self.topology.version
        flow._resolver = resolver
        flow._on_complete = on_complete
        batch = self._pending_at.get(start_time)
        if batch is None:
            self._pending_at[start_time] = batch = []
            self.engine.schedule(start_time, self._on_batch_start, start_time)
        batch.append(flow)
        return flow

    def add_flows(
        self,
        items: Sequence[Tuple[Union[Sequence[Link], PathResolver], float]],
        start_time: float,
        on_complete: Callable[[float], None],
    ) -> List[Flow]:
        """Register a batch of flows sharing one arrival instant and callback.

        ``items`` are ``(path_or_resolver, size_bytes)`` pairs.  The batch's
        ``on_complete`` fires once — with the last member's finish time — when
        every flow in the batch has drained.  This is the bulk interface the
        flow network models use for collective steps: one engine event and
        one completion callback per step instead of one per transfer.
        """
        for _path, size_bytes in items:
            # Validate before any state mutation: a mid-loop raise would
            # otherwise leave phantom flows registered in the pending batch
            # under a group whose callback could never fire.
            if size_bytes < 0:
                raise SimulationError("flow size must be non-negative")
        version = self.topology.version if self.topology is not None else None
        group = _FlowGroup(len(items), on_complete)
        group.items = items
        counter = self._counter
        batch = self._pending_at.get(start_time)
        if batch is None:
            self._pending_at[start_time] = batch = []
            self.engine.schedule(start_time, self._on_batch_start, start_time)
        created: List[Flow] = []
        new_flow = Flow.__new__
        for path, size_bytes in items:
            resolver = None
            if callable(path):
                resolver, path = path, ()
            # Inlined Flow construction: this loop runs once per transfer of
            # every collective step, so the constructor call overhead counts.
            flow = new_flow(Flow)
            flow.flow_id = flow_id = next(counter)
            flow.path = path if type(path) is tuple else tuple(path)
            flow.size_bytes = size_bytes
            flow.start_time = start_time
            flow.remaining_bytes = float(size_bytes)
            flow.rate = 0.0
            flow.finish_time = None
            flow._progress_time = start_time
            flow._epoch = 0
            flow._added_version = version
            flow._resolver = resolver
            flow._on_complete = None
            flow._group = group
            flow._path_latency = 0.0
            batch.append(flow)
            created.append(flow)
        if not items:
            # Degenerate empty batch: nothing will ever decrement the group,
            # so it completes at its start time.
            self.engine.schedule(
                start_time, lambda engine, _p: on_complete(engine.now), None
            )
        return created

    def flow(self, flow_id: int) -> Flow:
        """Return the pending or active flow with id ``flow_id``.

        Completed flows are dropped from the simulator's bookkeeping (callers
        hold the :class:`Flow` returned by :meth:`add_flow` or receive it in
        their completion callback), so looking one up here raises.  This is a
        debugging accessor and scans the pending/active sets; the hot paths
        deliberately carry flow objects instead of ids.
        """
        for flow in self._active:
            if flow.flow_id == flow_id:
                return flow
        for batch in self._pending_at.values():
            for flow in batch:
                if flow.flow_id == flow_id:
                    return flow
        raise SimulationError(f"unknown (or already completed) flow id {flow_id}")

    @property
    def active_flows(self) -> List[Flow]:
        """Flows currently transferring."""
        return sorted(self._active, key=_flow_id_of)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None) -> float:
        """Run until all flows complete (or ``until``); returns the stop time.

        Raises
        ------
        SimulationError
            If the event queue drains while flows are still active.  This
            happens when a flow is allocated rate 0 forever — e.g. its path
            crosses a link whose capacity was overridden to 0 — so it would
            otherwise never complete and ``run`` would silently return with
            unfinished flows.
        """
        stop = self.engine.run(until=until)
        if self._active and self.engine.pending == 0:
            stalled = ", ".join(
                f"flow {flow.flow_id} (rate {flow.rate:g} B/s, "
                f"{flow.remaining_bytes:g} B left)"
                for flow in self.active_flows
            )
            raise SimulationError(
                f"simulation stalled at t={stop:g}s with active flows that can "
                f"never complete: {stalled}; check for zero-capacity links"
            )
        return stop

    # ------------------------------------------------------------------ #
    # Fault reaction
    # ------------------------------------------------------------------ #

    def apply_link_change(
        self, keys: Iterable[LinkKey], now: Optional[float] = None
    ) -> None:
        """Re-rate flows after the capacity of ``keys`` changed.

        Called when a fault event degrades or restores link bandwidth: the
        connected components of flows touching the changed links are
        re-allocated from the live capacities (everyone else keeps their
        rates and estimates), and the path-derived caches — per-path static
        bottlenecks, isolated-batch allocations — are dropped so no future
        batch replays a rate computed against the old capacity.
        """
        if now is None:
            now = self.engine.now
        self._path_meta.clear()
        self._isolated_rates.clear()
        dirty = [key for key in keys if key in self._link_users]
        if dirty:
            self._reallocate((), dirty, now)

    def fail_links(
        self, keys: Iterable[LinkKey], now: Optional[float] = None
    ) -> List[Flow]:
        """React to links that just left the fabric (fault or circuit tear).

        Flows riding a dead link are handled per :attr:`link_failure_policy`:
        ``"fail"`` (the default) raises :class:`~repro.errors.LinkFailedError`
        carrying the flow and link, ``"reroute"`` moves each casualty onto a
        fresh shortest path over the surviving topology (raising the same
        typed error when no route survives).  Rerouted flows and the
        survivors they now share links with are re-rated; returns the
        affected flows.
        """
        if now is None:
            now = self.engine.now
        self._path_meta.clear()
        self._isolated_rates.clear()
        link_users = self._link_users
        failed_keys = set(keys)
        casualties: List[Flow] = []
        seen: Set[Flow] = set()
        for key in sorted(failed_keys):
            users = link_users.pop(key, None)
            if users is None:
                continue
            del self._link_id_keys[key[2]]
            for flow in (users,) if type(users) is not set else users:
                if flow not in seen:
                    seen.add(flow)
                    casualties.append(flow)
        if not casualties:
            return []
        casualties.sort(key=_flow_id_of)
        reroute = self.link_failure_policy == "reroute"
        victims: List[Tuple[Flow, Link]] = []
        for flow in casualties:
            dead = next(link for link in flow.path if link.key in failed_keys)
            if not reroute:
                raise LinkFailedError(
                    f"flow {flow.flow_id} was on the wire over link "
                    f"{dead.src}->{dead.dst} (id {dead.link_id}) when it "
                    f"failed at t={now:g}s (link_failure_policy='fail')",
                    flow_id=flow.flow_id,
                    link_key=dead.key,
                )
            victims.append((flow, dead))
        dirty_links: List[LinkKey] = []
        version = self.topology.version if self.topology is not None else None
        for flow, dead in victims:
            self._advance_flow(flow, now)
            self._unregister_path(flow, failed_keys, dirty_links)
            flow.path = self._reroute_path(flow, dead, now)
            flow._added_version = version
            self._register_path(flow)
        self._reallocate(casualties, dirty_links, now)
        return casualties

    def fail_link_ids(
        self, link_ids: Iterable[int], now: Optional[float] = None
    ) -> List[Flow]:
        """Like :meth:`fail_links`, addressed by topology link id.

        Circuit tear-down events only know the topology link ids they
        removed; this resolves them against the per-id index and is a no-op
        (no cache invalidation, no allocation work) when no active flow was
        riding the torn links — the overwhelmingly common case on a healthy
        circuit fabric.
        """
        index = self._link_id_keys
        keys = [index[link_id] for link_id in link_ids if link_id in index]
        if not keys:
            return []
        return self.fail_links(keys, now)

    def _unregister_path(
        self, flow: Flow, skip_keys: Set[LinkKey], dirty_links: List[LinkKey]
    ) -> None:
        """Remove ``flow`` from its links' user sets (cold fault path)."""
        link_users = self._link_users
        for link in flow.path:
            key = link.key
            if key in skip_keys:
                continue
            users = link_users.get(key)
            if users is flow:
                del link_users[key]
                del self._link_id_keys[key[2]]
            elif type(users) is set:
                users.discard(flow)
                if len(users) == 1:
                    (link_users[key],) = users
                dirty_links.append(key)

    def _register_path(self, flow: Flow) -> None:
        """Register ``flow`` on every link of its path (cold fault path)."""
        link_users = self._link_users
        for link in flow.path:
            key = link.key
            users = link_users.get(key)
            if users is None:
                link_users[key] = flow
                self._link_id_keys[key[2]] = key
            elif type(users) is set:
                users.add(flow)
            else:
                link_users[key] = {users, flow}
        flow._path_latency = sum(link.latency for link in flow.path)

    def _reroute_path(
        self, flow: Flow, dead: Link, now: float
    ) -> Tuple[Link, ...]:
        """A fresh route for a flow whose path lost ``dead``; typed raise if none."""
        if self.topology is None:
            raise LinkFailedError(
                f"flow {flow.flow_id} lost link {dead.src}->{dead.dst} "
                f"(id {dead.link_id}) at t={now:g}s and no topology is "
                "attached to re-route over",
                flow_id=flow.flow_id,
                link_key=dead.key,
            )
        src, dst = flow.path[0].src, flow.path[-1].dst
        try:
            return tuple(self.topology.shortest_path(src, dst))
        except TopologyError as exc:
            raise LinkFailedError(
                f"flow {flow.flow_id} lost link {dead.src}->{dead.dst} "
                f"(id {dead.link_id}) at t={now:g}s and no surviving route "
                f"from {src!r} to {dst!r} exists",
                flow_id=flow.flow_id,
                link_key=dead.key,
            ) from exc

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #

    def _on_batch_start(self, engine: SimulationEngine, start_time: float) -> None:
        now = engine.now
        batch = self._pending_at.pop(start_time, ())
        link_users = self._link_users
        link_id_keys = self._link_id_keys
        active = self._active
        topology = self.topology
        version = topology.version if topology is not None else None
        path_meta = self._path_meta
        dirty: List[Flow] = []
        solo_bw: List[float] = []
        batch_links: Set[LinkKey] = set()
        add_batch_link = batch_links.add
        intra_shared = False
        external_shared = False
        for flow in batch:
            resolver = flow._resolver
            if resolver is not None:
                # Freshly resolved against the live topology; no liveness
                # check needed (see PathResolver).
                flow._resolver = None
                flow.path = tuple(resolver())
            elif version is not None and flow._added_version != version:
                self._check_links_alive(flow, now)
            flow._progress_time = now
            path = flow.path
            if flow.size_bytes <= _BYTES_EPSILON or not path:
                # Zero-size flows and co-located endpoints (empty path =
                # infinite rate) complete after their latency only; no
                # representable transfer time separates start from finish.
                self._complete_flow(flow, now + flow.latency)
                continue
            active.add(flow)
            # Register the flow on every link of its (shared, cached) path
            # via the per-path metadata, and track who shares links with
            # whom — other members of this batch, or flows already on the wire.
            meta = path_meta.get(id(path))
            if meta is None or meta[0] is not path:
                keys = tuple(link.key for link in path)
                meta = (
                    path,
                    keys,
                    min(link.bandwidth for link in path),
                    sum(link.latency for link in path),
                )
                if len(path_meta) >= 65536:
                    path_meta.clear()
                path_meta[id(path)] = meta
            for key in meta[1]:
                users = link_users.get(key)
                if users is None:
                    link_users[key] = flow
                    link_id_keys[key[2]] = key
                    add_batch_link(key)
                else:
                    if type(users) is set:
                        users.add(flow)
                    else:
                        link_users[key] = {users, flow}
                    if key in batch_links:
                        intra_shared = True
                    else:
                        external_shared = True
            flow._path_latency = meta[3]
            dirty.append(flow)
            solo_bw.append(meta[2])
        if not dirty:
            self._sync_completion_event(now)
            return
        if not intra_shared and not external_shared:
            # The whole batch rides dedicated links (the dominant case on
            # provisioned circuits and fully-connected rails): every flow's
            # max-min fair rate is its plain path bottleneck, no progressive
            # filling and no component closure needed.
            self._apply_batch_rates(dirty, solo_bw, now)
            return
        if not external_shared:
            # The batch contends only within itself (e.g. one collective step
            # funneling through shared uplinks, no bystanders): its max-min
            # fair allocation depends only on the batch's paths, so identical
            # re-injections — the same step next iteration, the same-shape
            # collective elsewhere — replay the memoized allocation.
            rates = self._isolated_batch_rates(batch, dirty, version)
            if rates is not None:
                self._apply_batch_rates(dirty, rates, now)
                return
        self._reallocate(dirty, (), now)

    def _apply_batch_rates(
        self, dirty: List[Flow], rates: Sequence[float], now: float
    ) -> None:
        """Assign known rates to a fresh batch and schedule its completions.

        Flows sharing one completion estimate (every transfer of a uniform
        collective step) ride a single heap entry.
        """
        inf = math.inf
        batches: Dict[float, List[Tuple[Flow, int]]] = {}
        for flow, rate in zip(dirty, rates):
            if rate <= 0.0:
                continue  # zero-capacity link; run() reports the stall
            flow.rate = rate
            epoch = flow._epoch + 1
            flow._epoch = epoch
            estimate = now if rate == inf else now + flow.remaining_bytes / rate
            members = batches.get(estimate)
            if members is None:
                batches[estimate] = [(flow, epoch)]
            else:
                members.append((flow, epoch))
        heap = self._completion_heap
        for estimate, members in batches.items():
            # ``epoch -1`` marks a batch entry; the unique first-member
            # flow id keeps tuple comparison away from the payload.
            heapq.heappush(heap, (estimate, members[0][0].flow_id, -1, members))
        self._sync_completion_event(now)

    def _isolated_batch_rates(
        self, batch: Sequence[Flow], dirty: List[Flow], version: Optional[int]
    ) -> Optional[List[float]]:
        """Memoized allocation for a batch that only contends with itself.

        Valid only when the batch is exactly one ``add_flows`` item list (the
        shared, cached per-step list), nothing in it completed early, and the
        topology version matches the memoized run — then the max-min fair
        rates are a pure function of the item list and can be replayed
        positionally.  Returns ``None`` when the memo cannot be used, in
        which case the caller falls back to progressive filling (whose result
        seeds the memo for next time via this same path).
        """
        group = batch[0]._group
        if (
            group is None
            or batch[-1]._group is not group
            or group.items is None
            or len(dirty) != len(batch)
        ):
            return None
        key = id(group.items)
        memo = self._isolated_rates.get(key)
        if (
            memo is not None
            and memo[0] is group.items
            and memo[1] == version
            and len(memo[2]) == len(dirty)
        ):
            return memo[2]
        flows = list(dirty)
        computed = max_min_fair_rates(flows)
        rates = [computed[flow.flow_id] for flow in dirty]
        if len(self._isolated_rates) >= 4096:
            self._isolated_rates.clear()
        self._isolated_rates[key] = (group.items, version, rates)
        return rates

    def _on_completion_check(self, engine: SimulationEngine, _payload: object) -> None:
        self._completion_event = None
        now = engine.now
        heap = self._completion_heap
        pop = heapq.heappop
        push = heapq.heappush
        inf = math.inf
        finished: List[Flow] = []
        while heap and heap[0][0] <= now:
            _estimate, entry_id, epoch, payload = pop(heap)
            members = ((payload, epoch),) if epoch >= 0 else payload
            for flow, flow_epoch in members:
                if flow.finish_time is not None or flow._epoch != flow_epoch:
                    continue  # stale: completed or the rate changed since
                # Lazy progress and drain check, inlined (see _advance_flow /
                # _flow_is_drained for the commented versions).
                rate = flow.rate
                elapsed = now - flow._progress_time
                if elapsed > 0.0:
                    if rate == inf:
                        flow.remaining_bytes = 0.0
                    elif rate > 0.0:
                        left = flow.remaining_bytes - rate * elapsed
                        flow.remaining_bytes = left if left > 0.0 else 0.0
                    flow._progress_time = now
                remaining = flow.remaining_bytes
                if (
                    remaining <= _BYTES_EPSILON
                    or rate == inf
                    or (rate > 0.0 and now + remaining / rate <= now)
                ):
                    finished.append(flow)
                else:
                    # Float roundoff left representable drain time: re-estimate.
                    push(
                        heap,
                        (now + remaining / rate, flow.flow_id, flow_epoch, flow),
                    )
        link_users = self._link_users
        active = self._active
        dirty_links: List[LinkKey] = []
        for flow in finished:
            active.discard(flow)
            for link in flow.path:
                key = link.key
                users = link_users.get(key)
                if users is flow:
                    del link_users[key]
                    del self._link_id_keys[key[2]]
                elif type(users) is set:
                    users.discard(flow)
                    if len(users) == 1:
                        # Collapse back to the lone-survivor representation.
                        (link_users[key],) = users
                    # Only links with surviving users can wake anyone up.
                    dirty_links.append(key)
            self._complete_flow(flow, now + flow._path_latency)
        self._reallocate((), dirty_links, now)

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def _reallocate(
        self,
        dirty_flows: Sequence[Flow],
        dirty_links: Sequence[LinkKey],
        now: float,
    ) -> None:
        """Recompute rates for the component(s) touched by a flow change.

        ``dirty_flows`` are newly-started flows, ``dirty_links`` the links of
        flows that just completed.  The affected set is the transitive
        closure of link sharing starting from those seeds; max–min fair
        allocation decomposes exactly over such components, so every other
        active flow keeps its rate and completion estimate.  Flows that share
        no link with anyone (the dominant case on dedicated circuits and
        fully-provisioned rails) bypass progressive filling entirely: their
        max–min fair rate is the plain path bottleneck.
        """
        link_users = self._link_users
        shared: List[Flow] = []
        for flow in dirty_flows:
            solo_rate = math.inf
            for link in flow.path:
                if type(link_users[link.key]) is set:
                    solo_rate = None
                    break
                bandwidth = link.bandwidth
                if bandwidth < solo_rate:
                    solo_rate = bandwidth
            if solo_rate is None:
                shared.append(flow)
            elif solo_rate != flow.rate:
                self._advance_flow(flow, now)
                flow.rate = solo_rate
                flow._epoch += 1
                self._push_completion(flow, now)
        affected: Set[Flow] = set()
        seen_links: Set[LinkKey] = set(dirty_links)
        stack: List[LinkKey] = list(seen_links)
        for flow in shared:
            affected.add(flow)
            for link in flow.path:
                key = link.key
                if key not in seen_links:
                    seen_links.add(key)
                    stack.append(key)
        while stack:
            key = stack.pop()
            users = link_users.get(key)
            if users is None:
                continue
            for user in users if type(users) is set else (users,):
                if user in affected:
                    continue
                affected.add(user)
                for link in user.path:
                    other = link.key
                    if other not in seen_links:
                        seen_links.add(other)
                        stack.append(other)
        if affected:
            flows = sorted(affected, key=_flow_id_of)
            # The closure above already isolated the sharing component(s), so
            # dispatch straight to a solver instead of re-decomposing.
            if _np is not None and len(flows) >= _VECTORIZE_MIN_FLOWS:
                rates = _max_min_fair_rates_numpy(flows)
            else:
                rates = _max_min_fair_rates_python(flows)
            for flow in flows:
                new_rate = rates[flow.flow_id]
                if new_rate != flow.rate:
                    self._advance_flow(flow, now)
                    flow.rate = new_rate
                    flow._epoch += 1
                    self._push_completion(flow, now)
        self._sync_completion_event(now)

    def _advance_flow(self, flow: Flow, now: float) -> None:
        """Bring ``flow.remaining_bytes`` up to date at ``now`` (lazy progress)."""
        elapsed = now - flow._progress_time
        if elapsed > 0.0:
            if math.isinf(flow.rate):
                flow.remaining_bytes = 0.0
            elif flow.rate > 0.0:
                flow.remaining_bytes = max(
                    0.0, flow.remaining_bytes - flow.rate * elapsed
                )
        flow._progress_time = now

    def _push_completion(self, flow: Flow, now: float) -> None:
        if flow.rate <= 0.0:
            return  # no completion in sight; run() reports the stall
        if math.isinf(flow.rate):
            estimate = now
        else:
            estimate = now + flow.remaining_bytes / flow.rate
        heapq.heappush(
            self._completion_heap, (estimate, flow.flow_id, flow._epoch, flow)
        )

    def _sync_completion_event(self, now: float) -> None:
        """Keep exactly one engine event pointed at the earliest live estimate."""
        heap = self._completion_heap
        while heap:
            _estimate, _entry_id, epoch, payload = heap[0]
            if epoch < 0:
                # Batch entry: treated as live without scanning its members
                # (at worst one spurious, empty completion event fires).
                break
            if payload.finish_time is None and payload._epoch == epoch:
                break
            heapq.heappop(heap)
        if not heap:
            if self._completion_event is not None:
                self._completion_event.cancel()
                self._completion_event = None
            return
        target = max(now, heap[0][0])
        if (
            self._completion_event is not None
            and self._completion_event.time == target
            and not self._completion_event.cancelled
        ):
            return
        if self._completion_event is not None:
            self._completion_event.cancel()
        self._completion_event = self.engine.schedule(
            target, self._on_completion_check, None
        )

    # ------------------------------------------------------------------ #
    # Liveness and completion
    # ------------------------------------------------------------------ #

    def _check_links_alive(self, flow: Flow, now: float) -> None:
        """Validate (and, under ``"reroute"``, repair) a pending flow's path.

        Skipped entirely when the topology version is unchanged since the
        flow was admitted (nothing can have been torn down), which makes the
        check O(1) on static packet fabrics.  When a path link is dead and
        :attr:`link_failure_policy` is ``"reroute"``, the flow is moved onto
        a fresh route over the surviving topology before it registers.

        Raises
        ------
        LinkFailedError
            If a path link was *failed* by fault injection (or no surviving
            route exists under the reroute policy).
        SimulationError
            If a path link is no longer installed for any other reason — on
            circuit fabrics this means a reconfiguration tore the circuit
            down between routing and flow start, and charging the stale
            capacity would silently corrupt the allocation.
        """
        if self.topology is None:
            return
        if flow._added_version == self.topology.version:
            return
        for link in flow.path:
            if self.topology.has_link(link.link_id) and (
                self.topology.link(link.link_id) is link
            ):
                continue
            if self.link_failure_policy == "reroute":
                flow.path = self._reroute_path(flow, link, now)
                flow._added_version = self.topology.version
                return
            if self.topology.link_failed(link.link_id):
                raise LinkFailedError(
                    f"flow {flow.flow_id} starting at t={now:g}s is routed "
                    f"over failed link {link.src}->{link.dst} "
                    f"(id {link.link_id}) (link_failure_policy='fail')",
                    flow_id=flow.flow_id,
                    link_key=link.key,
                )
            raise SimulationError(
                f"flow {flow.flow_id} starting at t={now:g}s is routed over "
                f"torn-down link {link.src}->{link.dst} (id {link.link_id}); "
                "the circuit was reconfigured away before the flow started"
            )

    @staticmethod
    def _flow_is_drained(flow: Flow, now: float) -> bool:
        """Whether ``flow`` counts as finished at ``now``.

        Besides the byte tolerance, a flow whose residual drain time is below
        the floating-point resolution of the clock (``now + time_left == now``)
        must complete *now*: no representable future event could ever drain
        it, and rescheduling a completion check at the same instant would spin
        the engine forever.  Infinite-rate flows (unconstrained routes) drain
        instantly by definition.
        """
        if flow.remaining_bytes <= _BYTES_EPSILON:
            return True
        if math.isinf(flow.rate):
            return True
        if flow.rate > 0:
            return now + flow.remaining_bytes / flow.rate <= now
        return False

    def _complete_flow(self, flow: Flow, finish_time: float) -> None:
        flow.finish_time = finish_time
        flow.remaining_bytes = 0.0
        flow.rate = 0.0
        if flow._on_complete is not None:
            flow._on_complete(flow)
        group = flow._group
        if group is not None:
            if finish_time > group.end:
                group.end = finish_time
            group.outstanding -= 1
            if group.outstanding == 0:
                group.callback(group.end)
