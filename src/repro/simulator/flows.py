"""Flow-level (fluid) network simulation with max–min fair bandwidth sharing.

Each :class:`Flow` moves ``size_bytes`` along a fixed path of links.  Whenever
the set of active flows changes (an arrival or a completion), the simulator
recomputes the max–min fair allocation over all links with the standard
progressive-filling algorithm and reschedules the next completion.  This is
the usual fluid approximation used by datacenter-fabric studies, including the
ones the paper builds on (TopoOpt, Rail-only): no packets, no transport
dynamics, just capacity sharing.

The DAG executor uses this engine when run with a flow-level network model
(:class:`~repro.simulator.flow_network.FlowNetworkModel`, selected with the
``network_mode="flow"`` backend knob): every scale-out collective is expanded
into per-step point-to-point transfers that share one simulator, so
concurrent collectives contend for link capacity.  The analytic mode bypasses
it.  The engine is also usable standalone for micro-studies such as incast on
a shared rail switch versus dedicated circuits.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import SimulationError
from ..topology.base import Link, Topology
from .engine import SimulationEngine

#: Tolerance used when deciding whether a flow has finished transferring.
_BYTES_EPSILON = 1e-6

#: Deferred route: called at the flow's start event to resolve the path.
#: Circuit-switched fabrics install a collective's circuits *after* its flows
#: are scheduled (the switching delay separates the two), so the route over
#: those circuits only exists — and is only looked up — when the flow starts.
PathResolver = Callable[[], Sequence[Link]]


@dataclass
class Flow:
    """One fluid flow over a fixed path.

    Attributes
    ----------
    flow_id:
        Unique identifier assigned by the simulator.
    path:
        The links the flow traverses, in order.  An empty path means the
        source and destination are co-located and the flow completes after
        its latency only.
    size_bytes:
        Bytes to transfer.
    start_time:
        Arrival time of the flow.
    """

    flow_id: int
    path: Tuple[Link, ...]
    size_bytes: float
    start_time: float
    remaining_bytes: float = field(init=False)
    rate: float = field(init=False, default=0.0)
    finish_time: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise SimulationError("flow size must be non-negative")
        self.remaining_bytes = float(self.size_bytes)

    @property
    def latency(self) -> float:
        """Total propagation latency along the flow's path."""
        return sum(link.latency for link in self.path)

    @property
    def done(self) -> bool:
        """Whether the flow has finished transferring."""
        return self.finish_time is not None


def max_min_fair_rates(
    flows: Sequence[Flow], capacities: Optional[Dict[Tuple[str, str, int], float]] = None
) -> Dict[int, float]:
    """Compute the max–min fair rate of each flow by progressive filling.

    Parameters
    ----------
    flows:
        Active flows; flows with an empty path receive infinite rate.
    capacities:
        Optional override of per-link capacities keyed by ``link.key``
        (defaults to each link's ``bandwidth``).

    Returns
    -------
    dict
        Mapping of ``flow_id`` to allocated rate in bytes/second.
    """
    remaining_capacity: Dict[Tuple[str, str, int], float] = {}
    # Per-link set of *still-unallocated* flows; flows are removed as they
    # freeze, so each (flow, link) pair is touched O(1) times overall instead
    # of being re-intersected against the unallocated set every round.
    link_flows: Dict[Tuple[str, str, int], Set[int]] = {}
    flow_by_id: Dict[int, Flow] = {flow.flow_id: flow for flow in flows}
    for flow in flows:
        for link in flow.path:
            key = link.key
            if key not in remaining_capacity:
                capacity = link.bandwidth
                if capacities and key in capacities:
                    capacity = capacities[key]
                remaining_capacity[key] = capacity
                link_flows[key] = set()
            link_flows[key].add(flow.flow_id)

    rates: Dict[int, float] = {}
    num_unallocated = 0
    for flow in flows:
        if not flow.path:
            rates[flow.flow_id] = math.inf
        else:
            num_unallocated += 1

    while num_unallocated:
        # Find the most constrained link: smallest fair share among its
        # still-unallocated flows.
        best_share = None
        for key, users in link_flows.items():
            if not users:
                continue
            share = remaining_capacity[key] / len(users)
            if best_share is None or share < best_share:
                best_share = share
        if best_share is None:
            # Remaining flows traverse only links with no capacity constraint.
            for flow in flows:
                if flow.flow_id not in rates:
                    rates[flow.flow_id] = math.inf
            break
        # Freeze every flow crossing a link whose fair share equals the bottleneck.
        frozen: Set[int] = set()
        for key, users in link_flows.items():
            if not users:
                continue
            share = remaining_capacity[key] / len(users)
            if share <= best_share * (1 + 1e-12):
                frozen.update(users)
        # Subtract the frozen flows' rates from every link they traverse and
        # drop them from the per-link user sets (incremental bookkeeping);
        # links whose last user froze are retired from the scan entirely.
        for flow_id in frozen:
            rates[flow_id] = best_share
            for link in flow_by_id[flow_id].path:
                key = link.key
                users = link_flows.get(key)
                if users is None:
                    continue  # retired in an earlier round; never read again
                remaining_capacity[key] = max(
                    0.0, remaining_capacity[key] - best_share
                )
                users.discard(flow_id)
                if not users:
                    del link_flows[key]
        num_unallocated -= len(frozen)
    return rates


class FlowSimulator:
    """Event-driven fluid simulator over a set of flows.

    Usage::

        sim = FlowSimulator()
        sim.add_flow(path, size_bytes, start_time=0.0, on_complete=callback)
        sim.run()
    """

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self.engine = engine or SimulationEngine()
        #: Optional topology the flows route over.  When set, every flow's
        #: links are checked for liveness at the flow's start event, so a
        #: route over a torn-down circuit fails loudly instead of silently
        #: charging capacity that no longer exists.
        self.topology = topology
        self._flows: Dict[int, Flow] = {}
        self._active: Set[int] = set()
        self._counter = itertools.count()
        self._completion_callbacks: Dict[int, Callable[[Flow], None]] = {}
        self._resolvers: Dict[int, PathResolver] = {}
        self._completion_event = None
        self._last_update = 0.0
        #: Outstanding flow-start events per exact start time, so arrival
        #: batches at one instant trigger a single reallocation.  Counting our
        #: own events (instead of peeking at the engine queue) keeps this
        #: correct when the engine is shared with other event sources.
        self._starts_at: Dict[float, int] = {}

    # ------------------------------------------------------------------ #
    # Flow management
    # ------------------------------------------------------------------ #

    def add_flow(
        self,
        path: Union[Sequence[Link], PathResolver],
        size_bytes: float,
        start_time: float = 0.0,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Register a flow that arrives at ``start_time``.

        ``path`` is either the concrete link sequence or a zero-argument
        callable resolved at the flow's start event (deferred path
        resolution): on circuit-switched fabrics the route only exists once
        the circuits are installed, which happens between scheduling and
        start.  Until a deferred path resolves, the flow reports an empty
        path.
        """
        resolver: Optional[PathResolver] = None
        if callable(path):
            resolver, path = path, ()
        flow = Flow(
            flow_id=next(self._counter),
            path=tuple(path),
            size_bytes=size_bytes,
            start_time=start_time,
        )
        self._flows[flow.flow_id] = flow
        if resolver is not None:
            self._resolvers[flow.flow_id] = resolver
        if on_complete is not None:
            self._completion_callbacks[flow.flow_id] = on_complete
        self.engine.schedule(start_time, self._on_flow_start, flow.flow_id)
        self._starts_at[start_time] = self._starts_at.get(start_time, 0) + 1
        return flow

    def flow(self, flow_id: int) -> Flow:
        """Return the pending or active flow with id ``flow_id``.

        Completed flows are dropped from the simulator's bookkeeping (callers
        hold the :class:`Flow` returned by :meth:`add_flow` or receive it in
        their completion callback), so looking one up here raises.
        """
        if flow_id not in self._flows:
            raise SimulationError(f"unknown (or already completed) flow id {flow_id}")
        return self._flows[flow_id]

    @property
    def active_flows(self) -> List[Flow]:
        """Flows currently transferring."""
        return [self._flows[fid] for fid in sorted(self._active)]

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None) -> float:
        """Run until all flows complete (or ``until``); returns the stop time.

        Raises
        ------
        SimulationError
            If the event queue drains while flows are still active.  This
            happens when a flow is allocated rate 0 forever — e.g. its path
            crosses a link whose capacity was overridden to 0 — so it would
            otherwise never complete and ``run`` would silently return with
            unfinished flows.
        """
        stop = self.engine.run(until=until)
        if self._active and self.engine.pending == 0:
            stalled = ", ".join(
                f"flow {fid} (rate {self._flows[fid].rate:g} B/s, "
                f"{self._flows[fid].remaining_bytes:g} B left)"
                for fid in sorted(self._active)
            )
            raise SimulationError(
                f"simulation stalled at t={stop:g}s with active flows that can "
                f"never complete: {stalled}; check for zero-capacity links"
            )
        return stop

    def _on_flow_start(self, engine: SimulationEngine, flow_id: int) -> None:
        now = engine.now
        siblings = self._starts_at.get(now, 0) - 1
        if siblings > 0:
            self._starts_at[now] = siblings
        else:
            self._starts_at.pop(now, None)
        self._advance_progress(now)
        flow = self._flows[flow_id]
        resolver = self._resolvers.pop(flow_id, None)
        if resolver is not None:
            flow.path = tuple(resolver())
        self._check_links_alive(flow, now)
        if flow.size_bytes <= _BYTES_EPSILON:
            self._complete_flow(flow, now + flow.latency)
        else:
            self._active.add(flow_id)
        if siblings > 0:
            # More of our own arrivals at this same instant (e.g. the sibling
            # transfers of one collective step): the last of them reallocates
            # once for the whole batch.  No time passes in between, so no
            # progress is computed from the stale rates.
            return
        self._reallocate(now)

    def _advance_progress(self, now: float) -> None:
        elapsed = now - self._last_update
        if elapsed > 0.0:
            for flow_id in self._active:
                flow = self._flows[flow_id]
                if math.isinf(flow.rate):
                    flow.remaining_bytes = 0.0
                else:
                    flow.remaining_bytes = max(
                        0.0, flow.remaining_bytes - flow.rate * elapsed
                    )
        self._last_update = now

    def _reallocate(self, now: float) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._active:
            return
        flows = [self._flows[fid] for fid in self._active]
        rates = max_min_fair_rates(flows)
        for flow in flows:
            flow.rate = rates[flow.flow_id]
        next_completion = None
        for flow in flows:
            if flow.rate <= 0:
                continue
            if math.isinf(flow.rate):
                time_left = 0.0
            else:
                time_left = flow.remaining_bytes / flow.rate
            completion = now + time_left
            if next_completion is None or completion < next_completion:
                next_completion = completion
        if next_completion is not None:
            self._completion_event = self.engine.schedule(
                max(now, next_completion), self._on_completion_check, None
            )

    def _on_completion_check(self, engine: SimulationEngine, _payload: object) -> None:
        self._completion_event = None
        self._advance_progress(engine.now)
        finished = [
            self._flows[fid]
            for fid in sorted(self._active)
            if self._flow_is_drained(self._flows[fid], engine.now)
        ]
        for flow in finished:
            self._active.discard(flow.flow_id)
            self._complete_flow(flow, engine.now + flow.latency)
        self._reallocate(engine.now)

    def _check_links_alive(self, flow: Flow, now: float) -> None:
        """Reject a flow whose route references links torn from the topology.

        Raises
        ------
        SimulationError
            If any link of the flow's path is no longer installed (or was
            replaced by a different link under the same id) — on circuit
            fabrics this means a reconfiguration tore the circuit down
            between routing and flow start, and charging the stale capacity
            would silently corrupt the allocation.
        """
        if self.topology is None:
            return
        for link in flow.path:
            if self.topology.has_link(link.link_id) and (
                self.topology.link(link.link_id) is link
            ):
                continue
            raise SimulationError(
                f"flow {flow.flow_id} starting at t={now:g}s is routed over "
                f"torn-down link {link.src}->{link.dst} (id {link.link_id}); "
                "the circuit was reconfigured away before the flow started"
            )

    @staticmethod
    def _flow_is_drained(flow: Flow, now: float) -> bool:
        """Whether ``flow`` counts as finished at ``now``.

        Besides the byte tolerance, a flow whose residual drain time is below
        the floating-point resolution of the clock (``now + time_left == now``)
        must complete *now*: no representable future event could ever drain
        it, and rescheduling a completion check at the same instant would spin
        the engine forever.  Infinite-rate flows (empty paths, unconstrained
        routes) drain instantly by definition — ``_advance_progress`` only
        zeroes them when time actually elapses, which it never does for a
        same-instant completion check.
        """
        if flow.remaining_bytes <= _BYTES_EPSILON:
            return True
        if math.isinf(flow.rate):
            return True
        if flow.rate > 0:
            return now + flow.remaining_bytes / flow.rate <= now
        return False

    def _complete_flow(self, flow: Flow, finish_time: float) -> None:
        flow.finish_time = finish_time
        flow.remaining_bytes = 0.0
        flow.rate = 0.0
        # Drop the flow from the simulator's bookkeeping: a long-lived
        # simulator (one per FlowNetworkModel) would otherwise accumulate
        # every completed flow of every iteration forever.
        self._flows.pop(flow.flow_id, None)
        callback = self._completion_callbacks.pop(flow.flow_id, None)
        if callback is not None:
            callback(flow)
