"""Metrics extracted from simulation traces.

These helpers summarize :class:`~repro.parallelism.trace.IterationTrace` and
:class:`~repro.parallelism.trace.TrainingTrace` objects into the quantities
the paper reports: iteration time, its decomposition into compute /
communication / reconfiguration-exposed time, per-rail traffic, and the
normalized-iteration-time ratio of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import SimulationError
from ..parallelism.trace import IterationTrace, TrainingTrace


@dataclass(frozen=True)
class IterationMetrics:
    """Summary of one simulated iteration."""

    iteration_time: float
    compute_time: float
    scaleout_comm_time: float
    scaleup_comm_time: float
    exposed_reconfig_time: float
    num_reconfigurations: int
    scaleout_bytes: float
    #: Fault-injection events applied during the iteration.
    num_faults: int = 0

    @property
    def comm_time(self) -> float:
        """Total communication busy time (scale-up + scale-out)."""
        return self.scaleout_comm_time + self.scaleup_comm_time


def _busy_time(intervals: Sequence[Tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    if not intervals:
        return 0.0
    ordered = sorted(intervals)
    total = 0.0
    current_start, current_end = ordered[0]
    for start, end in ordered[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    total += current_end - current_start
    return total


def iteration_metrics(trace: IterationTrace) -> IterationMetrics:
    """Summarize one iteration trace."""
    compute = _busy_time([(r.start, r.end) for r in trace.compute_records])
    scaleout = _busy_time(
        [(r.start, r.end) for r in trace.comm_records if r.scaleout]
    )
    scaleup = _busy_time(
        [(r.start, r.end) for r in trace.comm_records if not r.scaleout]
    )
    return IterationMetrics(
        iteration_time=trace.iteration_time,
        compute_time=compute,
        scaleout_comm_time=scaleout,
        scaleup_comm_time=scaleup,
        exposed_reconfig_time=trace.total_reconfiguration_blocking(),
        num_reconfigurations=trace.num_reconfigurations(),
        scaleout_bytes=trace.total_scaleout_bytes(),
        num_faults=trace.num_faults(),
    )


def mean_iteration_time(training: TrainingTrace, skip_first: bool = False) -> float:
    """Mean iteration time, optionally excluding the profiling iteration.

    Opus's first iteration both profiles traffic and reconfigures on demand;
    Fig. 8 reports steady-state iterations, so the Fig. 8 benchmark passes
    ``skip_first=True`` when more than one iteration was simulated.
    """
    iterations = list(training.iterations)
    if skip_first and len(iterations) > 1:
        iterations = iterations[1:]
    if not iterations:
        raise SimulationError(
            "cannot compute the mean iteration time of an empty training "
            "trace (no iterations recorded)"
        )
    return sum(t.iteration_time for t in iterations) / len(iterations)


def normalized_iteration_time(
    candidate: TrainingTrace, baseline: TrainingTrace, skip_first: bool = True
) -> float:
    """Fig. 8's y-axis: candidate iteration time / baseline iteration time."""
    base = mean_iteration_time(baseline, skip_first=skip_first)
    if base <= 0:
        raise SimulationError("baseline iteration time must be positive")
    return mean_iteration_time(candidate, skip_first=skip_first) / base


def per_rail_traffic(trace: IterationTrace) -> Dict[int, float]:
    """Total bytes carried by each rail during one iteration."""
    traffic: Dict[int, float] = {}
    for record in trace.comm_records:
        if not record.scaleout or not record.rails:
            continue
        share = record.total_bytes / len(record.rails)
        for rail in record.rails:
            traffic[rail] = traffic.get(rail, 0.0) + share
    return traffic


def reconfigurations_per_iteration(training: TrainingTrace) -> List[int]:
    """Number of reconfigurations in each simulated iteration."""
    return [trace.num_reconfigurations() for trace in training.iterations]
