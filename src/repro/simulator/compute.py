"""Compute-time model: how long a compute operation occupies its GPUs.

The workload DAG records per-rank FLOP counts; this module converts them into
durations using the GPU's peak throughput and a model FLOPs utilization (MFU)
factor.  Absolute times are calibration, not prediction — the paper's Fig. 8
normalizes iteration time to the zero-reconfiguration baseline, so what
matters is that compute durations land in the realistic range that produces
millisecond-to-second idle windows between parallelism phases (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..parallelism.dag import OpKind, Operation
from ..topology.devices import GPUSpec


@dataclass(frozen=True)
class ComputeTimeModel:
    """Analytic compute-duration model.

    Attributes
    ----------
    gpu:
        The GPU the compute runs on.
    mfu:
        Model FLOPs utilization: the fraction of peak throughput a real
        training step achieves (0.3–0.5 for well-tuned LLM training).
    kernel_launch_overhead:
        Fixed per-operation overhead in seconds (kernel launches, optimizer
        bookkeeping).
    """

    gpu: GPUSpec
    mfu: float = 0.40
    kernel_launch_overhead: float = 50e-6

    def __post_init__(self) -> None:
        if not 0.0 < self.mfu <= 1.0:
            raise ConfigurationError("mfu must be in (0, 1]")
        if self.kernel_launch_overhead < 0:
            raise ConfigurationError("kernel_launch_overhead must be non-negative")

    @property
    def effective_flops(self) -> float:
        """Sustained per-GPU throughput in FLOP/s."""
        return self.gpu.peak_flops * self.mfu

    def duration(self, operation: Operation) -> float:
        """Duration of a compute operation in seconds."""
        if operation.kind != OpKind.COMPUTE:
            raise ConfigurationError("ComputeTimeModel only handles compute operations")
        return self.kernel_launch_overhead + operation.flops / self.effective_flops

    def flops_to_seconds(self, flops: float) -> float:
        """Convert a raw FLOP count to seconds on this GPU."""
        if flops < 0:
            raise ConfigurationError("flops must be non-negative")
        return flops / self.effective_flops
