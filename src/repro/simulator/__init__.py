"""Flow-level discrete-event simulation of ML training on datacenter fabrics.

* :mod:`repro.simulator.compute` — compute-duration model.
* :mod:`repro.simulator.network` — network timing models (electrical baseline,
  ideal network; the photonic model lives in :mod:`repro.core.network`).
* :mod:`repro.simulator.fabric_network` — topology-backed models (fat-tree,
  rail-optimized, bare OCS) with path resolution and oversubscription.
* :mod:`repro.simulator.flow_network` — the flow-level network mode:
  collectives expanded into point-to-point transfers that contend for links.
* :mod:`repro.simulator.executor` — list-scheduling DAG executor (analytic
  and flow-level network modes).
* :mod:`repro.simulator.engine` / :mod:`repro.simulator.flows` — fluid
  max–min fair flow simulation backing the flow-level mode and
  point-to-point studies.
* :mod:`repro.simulator.faults` — fault injection: declarative
  :class:`FaultPlan` schedules of link failures, degradations, OCS port
  failures, and compute slowdowns, applied as first-class simulation events.
* :mod:`repro.simulator.metrics` — trace summaries (iteration time breakdowns,
  normalized iteration time for Fig. 8).
"""

from .compute import ComputeTimeModel
from .engine import Event, SimulationEngine
from .executor import DAGExecutor, SimulationConfig
from .faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from .fabric_network import (
    FatTreeNetworkModel,
    OCSReconfigurableNetworkModel,
    RailOptimizedNetworkModel,
    TopologyNetworkModel,
)
from .flow_network import (
    FlowNetworkModel,
    electrical_flow_network,
    fat_tree_flow_network,
    rail_optimized_flow_network,
)
from .flows import Flow, FlowSimulator, max_min_fair_rates
from .metrics import (
    IterationMetrics,
    iteration_metrics,
    mean_iteration_time,
    normalized_iteration_time,
    per_rail_traffic,
    reconfigurations_per_iteration,
)
from .network import (
    CommTiming,
    ElectricalRailNetworkModel,
    IdealNetworkModel,
    NetworkModel,
)

__all__ = [
    "CommTiming",
    "ComputeTimeModel",
    "DAGExecutor",
    "ElectricalRailNetworkModel",
    "Event",
    "FatTreeNetworkModel",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "Flow",
    "FlowNetworkModel",
    "FlowSimulator",
    "IdealNetworkModel",
    "IterationMetrics",
    "NetworkModel",
    "OCSReconfigurableNetworkModel",
    "RailOptimizedNetworkModel",
    "SimulationConfig",
    "SimulationEngine",
    "TopologyNetworkModel",
    "electrical_flow_network",
    "fat_tree_flow_network",
    "iteration_metrics",
    "max_min_fair_rates",
    "mean_iteration_time",
    "normalized_iteration_time",
    "per_rail_traffic",
    "rail_optimized_flow_network",
    "reconfigurations_per_iteration",
]
