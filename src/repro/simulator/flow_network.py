"""Flow-level network mode: collectives expanded into contending fluid flows.

The analytic models in :mod:`repro.simulator.network` and
:mod:`repro.simulator.fabric_network` price every collective independently
with an alpha–beta formula.  That is exact while collectives never share
fabric links, but it cannot see *cross-collective* contention: two
communication groups whose routes cross the same oversubscribed uplink are
each priced as if they owned it.

:class:`FlowNetworkModel` closes that gap.  Every scale-out collective is
expanded — via :func:`repro.collectives.schedule.expand` — into
barrier-synchronized steps of point-to-point transfers; each transfer is
routed over the topology graph with :meth:`~repro.topology.base.Topology.shortest_path`
and handed to the max–min fair :class:`~repro.simulator.flows.FlowSimulator`.
Transfers of *all* in-flight collectives share one simulator, so concurrent
collectives genuinely contend for link capacity.  The DAG executor drives this
model through the ``begin_comm`` / ``next_event_time`` / ``advance`` interface
(see :class:`~repro.simulator.executor.DAGExecutor`); ``timing`` remains the
analytic fallback used for scale-up collectives and for collective types
without a point-to-point expansion.

:class:`PhotonicFlowNetworkModel` extends the machinery to circuit-switched
fabrics: topology change becomes a first-class, time-domain event.  Every
collective's launch is gated on :meth:`~repro.core.controller.OpusController.ensure`
— the OCS switching delay separates the request from the flow start, routes
are resolved only when the flows actually start (the circuits exist by then),
the per-pair path cache invalidates on topology version bumps, and the real
drain times of completed flows feed the controller's busy bookkeeping instead
of analytic estimates.  The same model with profiling/provisioning/coalescing
disabled is the flow-level twin of the bare-OCS backend.

On contention-free workloads the flow and analytic modes agree: a lone ring
collective's per-step flows each get the bottleneck bandwidth the analytic
model divides out statically, and the per-step launch overhead mirrors the
alpha term.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple, Union

from ..collectives.primitives import CollectiveType
from ..collectives.schedule import Schedule, Transfer, expand_cached
from ..errors import SimulationError, TopologyError
from ..parallelism.dag import Operation
from ..parallelism.mesh import DeviceMesh
from ..parallelism.trace import ReconfigRecord
from ..topology.base import Link, Topology, gpu_node_name
from ..topology.devices import ClusterSpec
from ..topology.electrical import build_fully_connected_rail_topology
from ..topology.fattree import build_fat_tree_fabric
from ..topology.ocs import Circuit
from ..topology.photonic import PhotonicRailFabric, build_photonic_rail_fabric
from ..topology.railopt import build_rail_optimized_fabric
from .fabric_network import TopologyNetworkModel
from .flows import AllocatorStats, FlowSimulator
from .network import CommTiming
from .routing import ROUTING_POLICIES, PolicyRouter
from .telemetry import HotspotDetector, LinkTelemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..core.circuits import RailConfiguration
    from ..core.controller import OpusController
    from ..core.shim import OpusShim, ShimOptions
    from ..parallelism.groups import GroupRegistry
    from ..topology.devices import OCSTechnology
    from ..topology.ocs import CircuitConfiguration
    from ..topology.photonic import CircuitChangeEvent

#: Called with the completion time when an expanded collective finishes.
CompletionCallback = Callable[[float], None]

#: Collective types with a point-to-point expansion whose total wire traffic
#: matches the analytic ring/pairwise accounting.  Broadcast and Reduce ride
#: the analytic fallback (their ring schedules forward the full payload every
#: hop, which the alpha-beta model deliberately does not charge), and Barrier
#: is latency-only.
EXPANDABLE_COLLECTIVES = frozenset(
    {
        CollectiveType.ALL_REDUCE,
        CollectiveType.ALL_GATHER,
        CollectiveType.REDUCE_SCATTER,
        CollectiveType.ALL_TO_ALL,
        CollectiveType.SEND_RECV,
    }
)


class _RouteResolver:
    """Deferred route lookup for one (src, dst) rank pair.

    A picklable callable class rather than a lambda: resolvers live inside
    the model's cached step items *across* iterations, so a snapshot must
    serialize them and a fork must rebind them (through the deepcopy/pickle
    memo) to the fork's own model — a closure would silently keep resolving
    against the parent simulation's topology.
    """

    __slots__ = ("model", "src", "dst")

    def __init__(self, model: "FlowNetworkModel", src: int, dst: int) -> None:
        self.model = model
        self.src = src
        self.dst = dst

    def __call__(self) -> Tuple[Link, ...]:
        return self.model.path_between(self.src, self.dst)

    def __getstate__(self):
        return (self.model, self.src, self.dst)

    def __setstate__(self, state):
        self.model, self.src, self.dst = state


class _DeferredLaunch:
    """A collective launch waiting for conflicting circuits to drain."""

    __slots__ = ("pending", "operation", "start", "on_complete")

    def __init__(
        self,
        pending: Set[Tuple[int, Circuit]],
        operation: Operation,
        start: float,
        on_complete: CompletionCallback,
    ) -> None:
        self.pending = pending
        self.operation = operation
        self.start = start
        self.on_complete = on_complete


class _InFlightCollective:
    """Progress tracker for one collective expanded into per-step flows.

    Launches one step at a time: when the last flow of step ``k`` completes,
    step ``k+1`` is injected after the per-step software overhead (the alpha
    term's launch cost).  Each step is injected through the simulator's bulk
    interface — one engine event and one completion callback for the whole
    step.  When the final step drains, the owner's completion callback fires
    with the collective's end time.
    """

    __slots__ = ("_model", "_steps", "_on_complete", "_step_index", "_step_end")

    def __init__(
        self,
        model: "FlowNetworkModel",
        steps: List[List[Tuple[object, float]]],
        on_complete: CompletionCallback,
    ) -> None:
        self._model = model
        self._steps = steps
        self._on_complete = on_complete
        self._step_index = -1
        self._step_end = 0.0

    def launch(self, start_time: float) -> None:
        """Inject the first step; completes immediately for empty schedules."""
        self._step_end = start_time
        self._advance(start_time)

    def _advance(self, ready_time: float) -> None:
        self._step_index += 1
        if self._step_index >= len(self._steps):
            self._on_complete(self._step_end)
            return
        launch_at = ready_time + self._model.per_step_overhead
        # On circuit fabrics the items carry resolvers called at the flow's
        # start instant (the circuits only exist by then); static packet
        # fabrics carry the concrete route-table entries directly.  Either
        # way the per-step item lists are built once per schedule and reused
        # across steps, iterations, and collectives with the same shape.
        self._model.simulator.add_flows(
            self._steps[self._step_index], launch_at, self._step_done
        )

    def _step_done(self, end: float) -> None:
        if end > self._step_end:
            self._step_end = end
        self._advance(self._step_end)


class FlowNetworkModel(TopologyNetworkModel):
    """Topology-routed network model timed by max–min fair flow simulation.

    Inherits the analytic path resolution of :class:`TopologyNetworkModel`
    (used by :meth:`timing` as the fallback for scale-up collectives and
    non-expandable collective types) and adds the flow-mode interface the
    executor drives:

    * :meth:`can_expand` — whether an operation is simulated at flow level;
    * :meth:`begin_comm` — inject a collective's step schedule at its start
      time and register a completion callback;
    * :attr:`next_event_time` / :meth:`advance` — expose the shared flow
      simulator's event clock so the executor can interleave scheduling
      decisions with network progress.
    """

    #: Marks this model as driving the executor's flow-mode scheduling loop.
    flow_mode = True

    #: Whether routes are handed to the simulator as deferred resolvers
    #: (circuit fabrics, where the route only exists once the switching event
    #: completes) or as concrete route-table entries (static packet fabrics).
    deferred_routes = False

    #: A source with at least this many unresolved destinations in one
    #: collective schedule is routed with a single multi-target BFS instead
    #: of per-pair shortest-path calls (the AllToAll pattern).  The BFS only
    #: pays off when the destination set is a sizable fraction of the fabric:
    #: settling even one cross-pod target forces the level-synchronous search
    #: through entire switch tiers (~the whole graph), while a bidirectional
    #: per-pair search meets in the middle and explores orders of magnitude
    #: less.  Both resolve identical routes (same min-hop, same min-link-id
    #: tie-breaks), so the choice is purely a cost model: use the BFS when
    #: ``len(dsts)`` rivals ``num_nodes / _MULTI_TARGET_NODE_RATIO``.
    _MULTI_TARGET_MIN = 4
    _MULTI_TARGET_NODE_RATIO = 256

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        topology: Topology,
        allocator_epsilon: float = 0.0,
        coarsen_quantum: float = 0.0,
        fill_workers: int = 0,
        routing_policy: str = "single",
    ) -> None:
        super().__init__(cluster, mesh, topology)
        #: Contention-scaling knobs, handed to every simulator this model
        #: builds (see :class:`~repro.simulator.flows.FlowSimulator`); the
        #: defaults keep the exact engine, bit-for-bit.
        self.allocator_epsilon = float(allocator_epsilon)
        self.coarsen_quantum = float(coarsen_quantum)
        self.fill_workers = int(fill_workers)
        #: Multipath routing policy (see :mod:`repro.simulator.routing`).
        #: ``single`` — the default — takes exactly the pre-policy code path:
        #: no router is built and every route goes through the plain
        #: shortest-path table, bit-for-bit.
        policy = str(routing_policy)
        if policy not in ROUTING_POLICIES:
            from ..errors import ConfigurationError

            raise ConfigurationError(
                f"unknown routing_policy {policy!r}; expected one of "
                f"{', '.join(ROUTING_POLICIES)}"
            )
        self.routing_policy = policy
        self._router: Optional[PolicyRouter] = (
            PolicyRouter(self, policy) if policy != "single" else None
        )
        #: Allocation counters, shared across simulator rebuilds so a whole
        #: training run reports one consistent set of totals.
        self.flow_stats = AllocatorStats()
        self.simulator = self._fresh_simulator()
        #: Per-step software launch overhead, matching the analytic alpha term.
        self.per_step_overhead = self._scaleout_link.per_message_overhead
        self._pair_paths: Dict[Tuple[int, int], Tuple[Link, ...]] = {}
        #: Set when an installed fault plan mutates links: routes are then
        #: handed to the simulator as deferred resolvers even on static
        #: packet fabrics, so every flow resolves against the live topology
        #: at its start instant instead of embedding a route a fault may
        #: have invalidated.
        self._fault_deferred = False
        #: Topology version the path cache was built at; a mismatch (circuits
        #: installed or torn since) drops every cached route.
        self._paths_version = topology.version
        #: Per-schedule flow-item lists (route/resolver + size per transfer),
        #: keyed by schedule identity; rebuilt when the route table drops.
        self._step_items: Dict[int, Tuple[Schedule, List[List[Tuple[object, float]]]]] = {}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Schedule-identity cache: re-key on the anchored schedule objects,
        # whose identity pickle/deepcopy preserve while their id() changes
        # (see FlowSimulator.__setstate__ for the full rationale).
        self._step_items = {
            id(cached[0]): cached for cached in self._step_items.values()
        }

    # ------------------------------------------------------------------ #
    # Flow-mode interface
    # ------------------------------------------------------------------ #

    def on_iteration_start(self, iteration: int, time: float) -> None:
        """Reset the simulator clock when a fresh run rewinds simulated time.

        Within one training run iterations start monotonically later, but a
        reused model (a second ``run_training``, or a second executor sharing
        the model) restarts at an earlier time than the previous run's end —
        which the event engine would reject.  Between iterations every
        collective has drained, so swapping in a fresh simulator is safe —
        except under a fault plan, whose one-shot events and accumulated
        topology damage cannot be replayed into a fresh clock.
        """
        if time < self.simulator.engine.now:
            if self.fault_injector is not None:
                raise SimulationError(
                    "cannot rewind a flow simulation with a fault plan "
                    "installed; build a fresh network model per training run"
                )
            if self.simulator.active_flows or self.simulator.engine.pending:
                raise SimulationError(
                    "cannot rewind the flow simulator while flows are in flight"
                )
            self.simulator = self._fresh_simulator()

    def _fresh_simulator(self) -> FlowSimulator:
        """A simulator carrying this model's knobs and shared counters."""
        simulator = FlowSimulator(
            topology=self.topology,
            allocator_epsilon=self.allocator_epsilon,
            coarsen_quantum=self.coarsen_quantum,
            fill_workers=self.fill_workers,
            stats=self.flow_stats,
        )
        if self._router is not None:
            # Fault reroutes must stay under the run's routing policy — and
            # the hook must survive simulator rebuilds (a rewound clock swaps
            # in a fresh simulator), so it is installed here, not in __init__.
            simulator.route_policy = self._router.reroute
        return simulator

    def on_iteration_end(self, iteration: int, time: float) -> None:
        if self.fault_injector is not None:
            # Settle fault events inside the iteration window even when every
            # collective drained before they fired, so fault application (and
            # its trace records) stays deterministic per iteration.
            self.simulator.engine.run(until=time)

    def install_fault_plan(self, plan) -> None:
        """Bind a fault plan, scheduling its events on the flow engine.

        Faults interrupt the simulation at their exact instants: link events
        mutate the topology (bumping the version, which invalidates the
        route tables and step-item caches), and the simulator re-rates the
        affected components and re-routes — or fails, per the plan's
        ``on_link_fail`` policy — the flows whose paths died.
        """
        from .faults import FaultInjector

        injector = FaultInjector(plan, topology=self.topology)
        simulator = self.simulator
        simulator.link_failure_policy = plan.on_link_fail
        injector.on_links_failed = simulator.fail_links
        injector.on_links_changed = simulator.apply_link_change
        if plan.has_link_events:
            self._fault_deferred = True
        injector.schedule_on(simulator.engine)
        self.fault_injector = injector

    def extend_fault_plan(self, plan) -> None:
        """Install additional fault events on a live (possibly mid-run) model.

        Fork-sweep branches call this right after copying the shared prefix:
        the branch keeps the prefix's injector state and gains its own tail
        of events.  With no plan installed yet this is a mid-run
        ``install_fault_plan``.  When link events flip the model from eager
        to deferred route resolution, the step-item lists are dropped: they
        embed concrete pre-fault routes that nothing would ever invalidate
        once ``_prefetch_routes`` stops running.  The per-pair route table
        survives the switch — it is keyed on the topology version (faults
        bump it when they *fire*), and the eager and deferred resolvers
        return identical paths — so the allocator's identity-anchored rate
        memos keep hitting exactly as a straight deferred run's would.
        """
        if plan.is_empty:
            return
        was_deferred = self.deferred_routes or self._fault_deferred
        if self.fault_injector is None:
            self.install_fault_plan(plan)
        else:
            if self.fault_injector.plan.on_link_fail != plan.on_link_fail:
                raise SimulationError(
                    "extended fault events carry a different on_link_fail "
                    f"policy ({plan.on_link_fail!r}) than the installed plan "
                    f"({self.fault_injector.plan.on_link_fail!r})"
                )
            self.fault_injector.extend(plan.events, engine=self.simulator.engine)
            if plan.has_link_events:
                self._fault_deferred = True
        if not was_deferred and (self.deferred_routes or self._fault_deferred):
            self._step_items.clear()

    def can_expand(self, operation: Operation) -> bool:
        """Whether ``operation`` is expanded into flows (vs priced analytically)."""
        if operation.collective is None:
            raise SimulationError(
                f"operation {operation.op_id} has no collective to expand"
            )
        return (
            self.is_scaleout(operation)
            and operation.collective.collective in EXPANDABLE_COLLECTIVES
        )

    def path_between(self, src_rank: int, dst_rank: int) -> Tuple[Link, ...]:
        """Route between two ranks' GPUs (cached; includes scale-up hops).

        The cache is keyed on the topology version: circuit fabrics mutate
        connectivity mid-simulation, and a route resolved before a
        reconfiguration must not be served afterwards.
        """
        version = self.topology.version
        if version != self._paths_version:
            self._pair_paths.clear()
            self._paths_version = version
        key = (src_rank, dst_rank)
        path = self._pair_paths.get(key)
        if path is None:
            try:
                path = tuple(
                    self.topology.shortest_path(
                        gpu_node_name(self.mesh.gpu_of(src_rank)),
                        gpu_node_name(self.mesh.gpu_of(dst_rank)),
                    )
                )
            except TopologyError as exc:
                raise SimulationError(
                    f"no route from rank {src_rank} to rank {dst_rank} on "
                    f"{self.topology.name!r}: {exc}"
                ) from exc
            self._pair_paths[key] = path
        return path

    def transfer_path(
        self, transfer: Transfer
    ) -> Union[Tuple[Link, ...], Callable[[], Tuple[Link, ...]]]:
        """Route of one expanded transfer.

        Static packet fabrics return the concrete route-table entry; circuit
        fabrics (``deferred_routes``) return a resolver called at the flow's
        start instant, when the circuits actually exist.
        """
        if self.deferred_routes or self._fault_deferred:
            return _RouteResolver(self, transfer.src, transfer.dst)
        return self.path_between(transfer.src, transfer.dst)

    def _prefetch_routes(self, steps: Schedule) -> None:
        """Fill the route table for a schedule's unresolved (src, dst) pairs.

        Sources that talk to many destinations across the schedule (the
        AllToAll pattern) are resolved with one early-terminating multi-target
        BFS instead of one shortest-path call per pair; ring-style sources
        (one or two destinations) stay on the per-pair path, which explores
        far less of the graph.
        """
        version = self.topology.version
        if version != self._paths_version:
            self._pair_paths.clear()
            self._step_items.clear()  # item lists embed concrete routes
            self._paths_version = version
        cache = self._pair_paths
        by_src: Dict[int, Set[int]] = {}
        for step in steps:
            for transfer in step.transfers:
                if (transfer.src, transfer.dst) not in cache:
                    by_src.setdefault(transfer.src, set()).add(transfer.dst)
        multi_target_min = max(
            self._MULTI_TARGET_MIN,
            self.topology.num_nodes // self._MULTI_TARGET_NODE_RATIO,
        )
        for src, dsts in by_src.items():
            if len(dsts) < multi_target_min:
                continue  # per-pair resolution explores less of the graph
            node_to_rank = {
                gpu_node_name(self.mesh.gpu_of(dst)): dst for dst in dsts
            }
            found = self.topology.paths_from(
                gpu_node_name(self.mesh.gpu_of(src)), node_to_rank
            )
            for node, path in found.items():
                cache[(src, node_to_rank[node])] = tuple(path)
        # Pairs still missing (few-destination sources, unreachable targets)
        # resolve lazily through path_between, which also raises the proper
        # SimulationError for genuinely unroutable pairs.

    def begin_comm(
        self,
        operation: Operation,
        start_time: float,
        on_complete: CompletionCallback,
    ) -> None:
        """Inject ``operation``'s step schedule starting at ``start_time``.

        ``on_complete`` fires (possibly synchronously for degenerate empty
        schedules) with the collective's completion time once its last step
        drains.
        """
        steps = self._expanded_schedule(operation)
        if not (self.deferred_routes or self._fault_deferred):
            if self._router is None:
                self._prefetch_routes(steps)
            else:
                # Policy-routed runs keep their path sets in the router
                # (version-keyed there), but the cached step items embed the
                # chosen concrete routes and must drop on a version bump.
                self._refresh_route_version()
        items = self.step_items(steps)
        _InFlightCollective(self, items, on_complete).launch(start_time)

    def _refresh_route_version(self) -> None:
        """Drop route-embedding caches when the topology version moved."""
        version = self.topology.version
        if version != self._paths_version:
            self._pair_paths.clear()
            self._step_items.clear()
            self._paths_version = version

    def step_items(
        self, steps: Schedule
    ) -> List[List[Tuple[object, float]]]:
        """Per-step ``(route, size)`` item lists for a schedule, memoized.

        Built once per schedule object and reused across steps, iterations,
        and repeated collectives: route resolution (or resolver construction,
        on circuit fabrics) happens once instead of once per flow injection.
        Entries hold a reference to their schedule so the ``id`` key stays
        valid for the cache's lifetime.
        """
        key = id(steps)
        cached = self._step_items.get(key)
        if cached is not None and cached[0] is steps:
            return cached[1]
        if self._router is not None:
            items = self._router.step_items_for(
                steps, self.deferred_routes or self._fault_deferred
            )
        else:
            transfer_path = self.transfer_path
            items = [
                [(transfer_path(t), t.size_bytes) for t in step.transfers]
                for step in steps
            ]
        if len(self._step_items) >= 1024:
            self._step_items.clear()
        self._step_items[key] = (steps, items)
        return items

    def pop_reconfig_records(self, op_id: int) -> Tuple[ReconfigRecord, ...]:
        """Reconfigurations performed on behalf of collective ``op_id``.

        Called by the executor when the collective completes; packet fabrics
        never reconfigure, circuit fabrics override this.
        """
        return ()

    def _expanded_schedule(self, operation: Operation) -> Schedule:
        if operation.collective is None:
            raise SimulationError(
                f"operation {operation.op_id} has no collective to expand"
            )
        # Shared across models and iterations: expansions are pure functions
        # of (collective type, group, size), which is the cache key.
        return expand_cached(operation.collective)

    @property
    def next_event_time(self) -> Optional[float]:
        """Time of the network's next event, or ``None`` when idle."""
        return self.simulator.engine.next_event_time

    def advance(self) -> bool:
        """Process one network event; returns ``False`` when idle."""
        return self.simulator.engine.step()


class PhotonicFlowNetworkModel(FlowNetworkModel):
    """Flow-level photonic rails: circuit switching as time-domain events.

    The analytic :class:`~repro.core.network.PhotonicRailNetworkModel` and
    this model share the entire Opus control plane — the shim intercepts every
    scale-out collective, the planner maps it to per-rail circuits, and
    :meth:`~repro.core.controller.OpusController.ensure` performs the
    switching-time arithmetic.  What changes at flow level is *when things
    are known*:

    * a collective's flows are scheduled at the circuit-ready time the
      controller grants, so the switching delay manifests as simulator events
      separating request from transfer;
    * flow routes resolve at flow start (deferred), over whatever circuits
      the crossbar holds at that instant, and torn circuits fail loudly;
    * circuit busy times are fed back from *actual* flow drains — a
      reconfiguration behind a contended collective waits for the real drain,
      not an analytic estimate;
    * speculative (provisioned) requests fire from the completion hook, i.e.
      when the prior phase's flows have actually drained, and are skipped
      entirely when they would tear a circuit that still carries flows.

    With ``profile_first_iteration=False``, ``provisioning=False`` and
    ``coalesce_axis=False`` the same model serves as the flow-level twin of
    the bare-OCS backend: every group reconfigures on demand.
    """

    #: Routes resolve at flow start, over whatever circuits exist by then.
    deferred_routes = True

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        fabric: Optional[PhotonicRailFabric] = None,
        reconfiguration_delay: Optional[float] = None,
        shim_options: Optional["ShimOptions"] = None,
        registry: Optional["GroupRegistry"] = None,
        allocator_epsilon: float = 0.0,
        coarsen_quantum: float = 0.0,
        fill_workers: int = 0,
    ) -> None:
        # Imported lazily: repro.core pulls repro.experiments (through
        # core.system) which imports this module back at its own module level.
        from ..core.controller import OpusController
        from ..errors import ConfigurationError

        fabric = fabric or build_photonic_rail_fabric(cluster)
        if fabric.cluster is not cluster:
            raise ConfigurationError(
                "the photonic fabric must be built from the same cluster "
                "specification as the network model"
            )
        super().__init__(
            cluster,
            mesh,
            fabric.topology,
            allocator_epsilon=allocator_epsilon,
            coarsen_quantum=coarsen_quantum,
            fill_workers=fill_workers,
        )
        self.fabric = fabric
        self._shim_options = shim_options
        self._registry = registry
        self.controller: "OpusController" = OpusController(
            fabric, reconfiguration_delay=reconfiguration_delay
        )
        #: In-flight flow count per installed circuit, keyed by (rail, circuit).
        self._circuit_load: Dict[Tuple[int, Circuit], int] = {}
        #: Collectives whose launch waits for conflicting circuits to drain.
        self._waiters: Dict[Tuple[int, Circuit], List[_DeferredLaunch]] = {}
        #: Reconfiguration records awaiting pickup, keyed by DAG op id.
        self._op_records: Dict[int, List[ReconfigRecord]] = {}
        self.shim: "OpusShim" = self._build_shim()
        #: Telemetry loop (reactive mode only): per-link utilization samples
        #: feeding an EWMA hotspot detector, whose findings arm the
        #: controller's reactive reconfigurator.
        self._telemetry: Optional[LinkTelemetry] = None
        self._hotspots: Optional[HotspotDetector] = None
        if shim_options is not None and shim_options.reactive:
            self._attach_reactive()
        fabric.add_circuit_listener(self._on_circuit_change)

    def _attach_reactive(self) -> None:
        """Build the telemetry loop and hand the controller its reactive state."""
        from ..core.controller import ReactiveReconfigurator

        self.controller.reactive = ReactiveReconfigurator()
        self._telemetry = LinkTelemetry(self.simulator)
        self._hotspots = HotspotDetector(self._telemetry)

    def _observe_telemetry(self, now: float) -> None:
        """Sample link telemetry and feed hotspot evidence to the controller.

        Driven from collective completions — deterministic, replayable
        instants when the allocator has just settled — never from periodic
        wall-clock events.
        """
        if self._telemetry is None:
            return
        self._telemetry.sample(now)
        assert self._hotspots is not None
        hot = self._hotspots.hotspots()
        if hot and self.controller.reactive is not None:
            self.controller.reactive.note_hotspots(hot)

    def _on_circuit_change(self, event: "CircuitChangeEvent") -> None:
        """React to a circuit install or tear on the fabric.

        Installs and tears drop the route cache eagerly (the topology
        version check would catch them too; this keeps the cache from
        holding torn Link objects between version probes).  A tear
        additionally confronts the flows *riding* the torn links: the
        circuit-hold bookkeeping prevents a collective's own circuits from
        being torn under it, but a flow detoured over another rail's
        circuits (e.g. around a failed link) is invisible to that
        accounting — previously it silently kept charging capacity that no
        longer existed.  Such flows now re-route over the surviving fabric
        or raise the typed :class:`~repro.errors.LinkFailedError`, per the
        simulator's failure policy.
        """
        self._pair_paths.clear()
        if not event.installed:
            self.simulator.fail_link_ids(event.link_ids)

    def _build_shim(self) -> "OpusShim":
        from ..core.shim import OpusShim

        shim = OpusShim(
            fabric=self.fabric,
            mesh=self.mesh,
            controller=self.controller,
            registry=self._registry,
            options=self._shim_options,
        )
        shim.circuit_guard = self._circuits_idle
        return shim

    # ------------------------------------------------------------------ #
    # Flow-mode interface (circuit-gated)
    # ------------------------------------------------------------------ #

    def begin_comm(
        self,
        operation: Operation,
        start_time: float,
        on_complete: CompletionCallback,
    ) -> None:
        """Gate ``operation`` on its circuits, then inject its flows.

        The circuit request is issued at ``start_time`` (the instant the
        ranks' NICs are ready); the flows are scheduled at the ready time the
        controller grants, so an exposed switching delay appears in the
        simulation as a gap between the two.  If the request would tear a
        circuit whose flows are still on the wire, the whole launch is
        deferred until those flows drain — the drain event re-issues the
        request at the drain time.
        """
        op = operation.collective
        if op is None:
            raise SimulationError(
                f"operation {operation.op_id} has no collective to expand"
            )
        target = self.shim.target_for(op)
        live = self._live_conflicts(target)
        if live:
            self._defer_launch(live, operation, start_time, on_complete)
            return
        grant = self.shim.request_circuits(op, start_time)
        if grant.records:
            self._op_records.setdefault(operation.op_id, []).extend(grant.records)
        launch_at = max(start_time, grant.ready_time)
        held = self._hold_circuits(target)

        def _finished(end: float) -> None:
            # Real drain feedback: the controller learns when the circuits
            # actually emptied (notify_transfer marks them busy until then),
            # and only afterwards may waiters / provisioning touch them.
            self._observe_telemetry(end)
            self.shim.notify_transfer(op, launch_at, end)
            self._release_circuits(held, end)
            on_complete(end)

        steps = self._expanded_schedule(operation)
        _InFlightCollective(self, self.step_items(steps), _finished).launch(launch_at)

    def pop_reconfig_records(self, op_id: int) -> Tuple[ReconfigRecord, ...]:
        records = self._op_records.pop(op_id, None)
        return tuple(records) if records else ()

    # ------------------------------------------------------------------ #
    # Analytic fallback + lifecycle hooks
    # ------------------------------------------------------------------ #

    def _scaleout_duration(self, operation: Operation) -> float:
        # Circuits give every cross-domain hop the full port line rate — the
        # paper's equal-bandwidth assumption (§4.2) — so the analytic fallback
        # prices at the plain scale-out link instead of routing through the
        # mutable circuit graph, matching PhotonicRailNetworkModel exactly.
        if operation.collective is None:
            raise SimulationError(
                f"operation {operation.op_id} has no collective to price"
            )
        return self._ring.collective_time(operation.collective, self._scaleout_link)

    def timing(self, operation: Operation, ready_time: float) -> CommTiming:
        op = operation.collective
        if op is None:
            raise SimulationError(
                f"operation {operation.op_id} has no collective to price"
            )
        duration = self.transfer_duration(operation)
        if not self.is_scaleout(operation):
            return CommTiming(start=ready_time, end=ready_time + duration)
        live = self._live_conflicts(self.shim.target_for(op))
        if live:
            # timing() must answer synchronously, so unlike begin_comm it
            # cannot defer until the conflicting flows drain — and letting
            # ensure() tear circuits that still carry flows would silently
            # keep stale capacity allocated.  Fail loudly instead; no bundled
            # workload emits non-expandable scale-out collectives.
            conflicts = ", ".join(
                f"rail {rail} circuit {circuit}" for rail, circuit in sorted(
                    live, key=lambda item: (item[0], item[1].ports)
                )
            )
            raise SimulationError(
                f"analytically-priced collective {op} needs circuits that "
                f"conflict with live flows ({conflicts}); only expanded "
                "collectives can wait for in-flight circuits to drain"
            )
        grant = self.shim.request_circuits(op, ready_time)
        start = max(ready_time, grant.ready_time)
        end = start + duration
        self.shim.notify_transfer(op, start, end)
        return CommTiming(start=start, end=end, reconfigs=grant.records)

    def on_comm_end(self, operation: Operation, end_time: float) -> None:
        if operation.collective is not None and self.is_scaleout(operation):
            self.shim.notify_completion(operation.collective, end_time)

    def on_iteration_start(self, iteration: int, time: float) -> None:
        rewound = time < self.simulator.engine.now
        super().on_iteration_start(iteration, time)
        if rewound:
            self._reset_control_plane()
        self.shim.start_iteration(iteration, time)

    def on_iteration_end(self, iteration: int, time: float) -> None:
        super().on_iteration_end(iteration, time)
        self.shim.end_iteration(iteration, time)

    def install_fault_plan(self, plan) -> None:
        """Bind a fault plan; adds OCS port failures to the link machinery."""
        super().install_fault_plan(plan)
        self.fault_injector.on_port_failed = self._apply_port_failure

    def _apply_port_failure(self, event, now: float) -> None:
        """Kill one OCS port: tear its circuit, reroute riders, replan.

        The controller marks the port permanently conflicting and tears the
        circuit it carried through the fabric, whose circuit-change event
        lands in :meth:`_on_circuit_change` — re-routing or failing any
        flows on the wire.  Dropping the planner caches makes every future
        configuration route around the failed port.
        """
        self.controller.fail_port(event.rail, event.port)
        self.shim.planner.clear_cache()

    def _reset_control_plane(self) -> None:
        """Fresh control plane for a rewound clock (a second training run)."""
        if self._circuit_load or self._waiters:
            raise SimulationError(
                "cannot rewind the photonic flow model while collectives hold "
                "circuits"
            )
        self.controller.reset()
        self._op_records.clear()
        self.shim = self._build_shim()
        if self._telemetry is not None:
            # Rebind the telemetry loop to the (possibly rebuilt) simulator
            # and start the reactive state from scratch — a rewound clock is
            # a new job as far as learned phase structure is concerned.
            self._attach_reactive()

    # ------------------------------------------------------------------ #
    # Live-circuit bookkeeping
    # ------------------------------------------------------------------ #

    def _live_conflicts(
        self, target: "RailConfiguration"
    ) -> Set[Tuple[int, Circuit]]:
        """Installed circuits that carry flows and conflict with ``target``."""
        live: Set[Tuple[int, Circuit]] = set()
        for rail in target.rails():
            state = self.controller.rail_state(rail)
            for circuit in target.configuration(rail).circuits:
                if circuit in state.installed:
                    continue
                for existing in state.conflicts_with(circuit):
                    if self._circuit_load.get((rail, existing), 0) > 0:
                        live.add((rail, existing))
        return live

    def _circuits_idle(self, rail: int, configuration: "CircuitConfiguration") -> bool:
        """Shim guard: may ``configuration`` be installed without tearing live circuits?"""
        state = self.controller.rail_state(rail)
        for circuit in configuration.circuits:
            if circuit in state.installed:
                continue
            for existing in state.conflicts_with(circuit):
                if self._circuit_load.get((rail, existing), 0) > 0:
                    return False
        return True

    def _defer_launch(
        self,
        live: Set[Tuple[int, Circuit]],
        operation: Operation,
        start_time: float,
        on_complete: CompletionCallback,
    ) -> None:
        waiter = _DeferredLaunch(set(live), operation, start_time, on_complete)
        for key in live:
            self._waiters.setdefault(key, []).append(waiter)

    def _hold_circuits(
        self, target: "RailConfiguration"
    ) -> List[Tuple[int, Circuit]]:
        held: List[Tuple[int, Circuit]] = []
        for rail in target.rails():
            for circuit in target.configuration(rail).circuits:
                key = (rail, circuit)
                self._circuit_load[key] = self._circuit_load.get(key, 0) + 1
                held.append(key)
        return held

    def _release_circuits(
        self, held: List[Tuple[int, Circuit]], end: float
    ) -> None:
        ready: List[_DeferredLaunch] = []
        for key in held:
            count = self._circuit_load.get(key, 0) - 1
            if count > 0:
                self._circuit_load[key] = count
                continue
            self._circuit_load.pop(key, None)
            for waiter in self._waiters.pop(key, []):
                waiter.pending.discard(key)
                if not waiter.pending:
                    ready.append(waiter)
        for waiter in ready:
            self.begin_comm(
                waiter.operation, max(waiter.start, end), waiter.on_complete
            )

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #

    @property
    def total_reconfigurations(self) -> int:
        """Total switching events performed across all rails so far."""
        return self.controller.total_reconfigurations()

    @property
    def reconfiguration_delay(self) -> float:
        """The (possibly overridden) per-event switching delay in seconds."""
        return self.controller.reconfiguration_delay(next(iter(self.fabric.rails)))


# --------------------------------------------------------------------------- #
# Per-fabric constructors
# --------------------------------------------------------------------------- #


def electrical_flow_network(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    allocator_epsilon: float = 0.0,
    coarsen_quantum: float = 0.0,
    fill_workers: int = 0,
    routing_policy: str = "single",
) -> FlowNetworkModel:
    """Flow-level twin of the fully-connected electrical rail baseline."""
    return FlowNetworkModel(
        cluster,
        mesh,
        build_fully_connected_rail_topology(cluster),
        allocator_epsilon=allocator_epsilon,
        coarsen_quantum=coarsen_quantum,
        fill_workers=fill_workers,
        routing_policy=routing_policy,
    )


def fat_tree_flow_network(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    oversubscription: float = 1.0,
    allocator_epsilon: float = 0.0,
    coarsen_quantum: float = 0.0,
    fill_workers: int = 0,
    routing_policy: str = "single",
) -> FlowNetworkModel:
    """Flow-level twin of the fat-tree fabric (optionally oversubscribed)."""
    fabric = build_fat_tree_fabric(cluster, oversubscription=oversubscription)
    return FlowNetworkModel(
        cluster,
        mesh,
        fabric.topology,
        allocator_epsilon=allocator_epsilon,
        coarsen_quantum=coarsen_quantum,
        fill_workers=fill_workers,
        routing_policy=routing_policy,
    )


def rail_optimized_flow_network(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    always_spine: bool = True,
    allocator_epsilon: float = 0.0,
    coarsen_quantum: float = 0.0,
    fill_workers: int = 0,
    routing_policy: str = "single",
) -> FlowNetworkModel:
    """Flow-level twin of the leaf/spine rail-optimized fabric."""
    fabric = build_rail_optimized_fabric(cluster, always_spine=always_spine)
    return FlowNetworkModel(
        cluster,
        mesh,
        fabric.topology,
        allocator_epsilon=allocator_epsilon,
        coarsen_quantum=coarsen_quantum,
        fill_workers=fill_workers,
        routing_policy=routing_policy,
    )


def shim_options_for_provisioning(provisioning: object) -> "ShimOptions":
    """Map the ``provisioning`` knob onto shim options.

    Booleans keep their historical meaning (``True`` = profile-driven
    speculative provisioning, ``False`` = profile but reconfigure on
    demand); the string values spell the full mode space out:

    * ``"profile"`` — profile the first iteration, then provision from it;
    * ``"none"`` — profile but never provision (every phase change pays its
      switching delay on demand);
    * ``"reactive"`` — no profiling iteration at all: phase structure is
      learned online and speculation is driven by telemetry (blocking +
      hotspot evidence).
    """
    from ..core.shim import ShimOptions
    from ..errors import ConfigurationError

    if not isinstance(provisioning, str):
        return ShimOptions(provisioning=bool(provisioning))
    if provisioning == "profile":
        return ShimOptions(provisioning=True)
    if provisioning == "none":
        return ShimOptions(provisioning=False)
    if provisioning == "reactive":
        return ShimOptions(
            provisioning=False,
            profile_first_iteration=False,
            reactive=True,
        )
    raise ConfigurationError(
        f"unknown provisioning mode {provisioning!r}; expected a boolean or "
        "one of 'profile', 'none', 'reactive'"
    )


def photonic_flow_network(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    reconfiguration_delay: Optional[float] = None,
    provisioning: Union[bool, str] = True,
    technology: Optional["OCSTechnology"] = None,
    registry: Optional["GroupRegistry"] = None,
    allocator_epsilon: float = 0.0,
    coarsen_quantum: float = 0.0,
    fill_workers: int = 0,
) -> PhotonicFlowNetworkModel:
    """Flow-level photonic rails under the full Opus control plane."""
    fabric = build_photonic_rail_fabric(cluster, technology=technology)
    return PhotonicFlowNetworkModel(
        cluster,
        mesh,
        fabric=fabric,
        reconfiguration_delay=reconfiguration_delay,
        shim_options=shim_options_for_provisioning(provisioning),
        registry=registry,
        allocator_epsilon=allocator_epsilon,
        coarsen_quantum=coarsen_quantum,
        fill_workers=fill_workers,
    )


def bare_ocs_flow_network(
    cluster: ClusterSpec,
    mesh: DeviceMesh,
    reconfiguration_delay: Optional[float] = None,
    technology: Optional["OCSTechnology"] = None,
    registry: Optional["GroupRegistry"] = None,
    allocator_epsilon: float = 0.0,
    coarsen_quantum: float = 0.0,
    fill_workers: int = 0,
) -> PhotonicFlowNetworkModel:
    """Flow-level bare OCS rails: on-demand per-group switching, no Opus.

    Profiling, provisioning, and axis coalescing are disabled, so every
    communication group pays its own switching event whenever its circuits
    are missing — the flow-level counterpart of the analytic
    :class:`~repro.simulator.fabric_network.OCSReconfigurableNetworkModel`
    envelope.
    """
    from ..core.shim import ShimOptions

    fabric = build_photonic_rail_fabric(cluster, technology=technology)
    return PhotonicFlowNetworkModel(
        cluster,
        mesh,
        fabric=fabric,
        reconfiguration_delay=reconfiguration_delay,
        shim_options=ShimOptions(
            provisioning=False,
            profile_first_iteration=False,
            coalesce_axis=False,
        ),
        registry=registry,
        allocator_epsilon=allocator_epsilon,
        coarsen_quantum=coarsen_quantum,
        fill_workers=fill_workers,
    )
