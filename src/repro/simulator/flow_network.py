"""Flow-level network mode: collectives expanded into contending fluid flows.

The analytic models in :mod:`repro.simulator.network` and
:mod:`repro.simulator.fabric_network` price every collective independently
with an alpha–beta formula.  That is exact while collectives never share
fabric links, but it cannot see *cross-collective* contention: two
communication groups whose routes cross the same oversubscribed uplink are
each priced as if they owned it.

:class:`FlowNetworkModel` closes that gap.  Every scale-out collective is
expanded — via :func:`repro.collectives.schedule.expand` — into
barrier-synchronized steps of point-to-point transfers; each transfer is
routed over the topology graph with :meth:`~repro.topology.base.Topology.shortest_path`
and handed to the max–min fair :class:`~repro.simulator.flows.FlowSimulator`.
Transfers of *all* in-flight collectives share one simulator, so concurrent
collectives genuinely contend for link capacity instead of being priced
independently.  The DAG executor drives this model through the
``begin_comm`` / ``next_event_time`` / ``advance`` interface (see
:class:`~repro.simulator.executor.DAGExecutor`); ``timing`` remains the
analytic fallback used for scale-up collectives and for collective types
without a point-to-point expansion.

On contention-free workloads the two modes agree: a lone ring collective's
per-step flows each get the bottleneck bandwidth the analytic model divides
out statically, and the per-step launch overhead mirrors the alpha term.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..collectives.primitives import CollectiveType
from ..collectives.schedule import Schedule, expand
from ..errors import SimulationError
from ..parallelism.dag import Operation
from ..parallelism.mesh import DeviceMesh
from ..topology.base import Link, Topology, gpu_node_name
from ..topology.devices import ClusterSpec
from ..topology.electrical import build_fully_connected_rail_topology
from ..topology.fattree import build_fat_tree_fabric
from ..topology.railopt import build_rail_optimized_fabric
from .fabric_network import TopologyNetworkModel
from .flows import Flow, FlowSimulator

#: Called with the completion time when an expanded collective finishes.
CompletionCallback = Callable[[float], None]

#: Collective types with a point-to-point expansion whose total wire traffic
#: matches the analytic ring/pairwise accounting.  Broadcast and Reduce ride
#: the analytic fallback (their ring schedules forward the full payload every
#: hop, which the alpha-beta model deliberately does not charge), and Barrier
#: is latency-only.
EXPANDABLE_COLLECTIVES = frozenset(
    {
        CollectiveType.ALL_REDUCE,
        CollectiveType.ALL_GATHER,
        CollectiveType.REDUCE_SCATTER,
        CollectiveType.ALL_TO_ALL,
        CollectiveType.SEND_RECV,
    }
)


class _InFlightCollective:
    """Progress tracker for one collective expanded into per-step flows.

    Launches one step at a time: when the last flow of step ``k`` completes,
    step ``k+1`` is injected after the per-step software overhead (the alpha
    term's launch cost).  When the final step drains, the owner's completion
    callback fires with the collective's end time.
    """

    def __init__(
        self,
        model: "FlowNetworkModel",
        steps: Schedule,
        on_complete: CompletionCallback,
    ) -> None:
        self._model = model
        self._steps = steps
        self._on_complete = on_complete
        self._step_index = -1
        self._outstanding = 0
        self._step_end = 0.0

    def launch(self, start_time: float) -> None:
        """Inject the first step; completes immediately for empty schedules."""
        self._step_end = start_time
        self._advance(start_time)

    def _advance(self, ready_time: float) -> None:
        self._step_index += 1
        if self._step_index >= len(self._steps):
            self._on_complete(self._step_end)
            return
        transfers = self._steps[self._step_index].transfers
        self._outstanding = len(transfers)
        launch_at = ready_time + self._model.per_step_overhead
        for transfer in transfers:
            path = self._model.path_between(transfer.src, transfer.dst)
            self._model.simulator.add_flow(
                path,
                transfer.size_bytes,
                start_time=launch_at,
                on_complete=self._flow_done,
            )

    def _flow_done(self, flow: Flow) -> None:
        self._outstanding -= 1
        assert flow.finish_time is not None
        if flow.finish_time > self._step_end:
            self._step_end = flow.finish_time
        if self._outstanding == 0:
            self._advance(self._step_end)


class FlowNetworkModel(TopologyNetworkModel):
    """Topology-routed network model timed by max–min fair flow simulation.

    Inherits the analytic path resolution of :class:`TopologyNetworkModel`
    (used by :meth:`timing` as the fallback for scale-up collectives and
    non-expandable collective types) and adds the flow-mode interface the
    executor drives:

    * :meth:`can_expand` — whether an operation is simulated at flow level;
    * :meth:`begin_comm` — inject a collective's step schedule at its start
      time and register a completion callback;
    * :attr:`next_event_time` / :meth:`advance` — expose the shared flow
      simulator's event clock so the executor can interleave scheduling
      decisions with network progress.
    """

    #: Marks this model as driving the executor's flow-mode scheduling loop.
    flow_mode = True

    def __init__(
        self,
        cluster: ClusterSpec,
        mesh: DeviceMesh,
        topology: Topology,
    ) -> None:
        super().__init__(cluster, mesh, topology)
        self.simulator = FlowSimulator()
        #: Per-step software launch overhead, matching the analytic alpha term.
        self.per_step_overhead = self._scaleout_link.per_message_overhead
        self._pair_paths: Dict[Tuple[int, int], Tuple[Link, ...]] = {}
        #: Expanded step schedules keyed by collective op id — the DAG reuses
        #: the same CollectiveOp across iterations, and expand() is pure.
        self._schedules: Dict[int, Schedule] = {}

    # ------------------------------------------------------------------ #
    # Flow-mode interface
    # ------------------------------------------------------------------ #

    def on_iteration_start(self, iteration: int, time: float) -> None:
        """Reset the simulator clock when a fresh run rewinds simulated time.

        Within one training run iterations start monotonically later, but a
        reused model (a second ``run_training``, or a second executor sharing
        the model) restarts at an earlier time than the previous run's end —
        which the event engine would reject.  Between iterations every
        collective has drained, so swapping in a fresh simulator is safe.
        """
        if time < self.simulator.engine.now:
            if self.simulator.active_flows or self.simulator.engine.pending:
                raise SimulationError(
                    "cannot rewind the flow simulator while flows are in flight"
                )
            self.simulator = FlowSimulator()

    def can_expand(self, operation: Operation) -> bool:
        """Whether ``operation`` is expanded into flows (vs priced analytically)."""
        assert operation.collective is not None
        return (
            self.is_scaleout(operation)
            and operation.collective.collective in EXPANDABLE_COLLECTIVES
        )

    def path_between(self, src_rank: int, dst_rank: int) -> Tuple[Link, ...]:
        """Route between two ranks' GPUs (cached; includes scale-up hops)."""
        key = (src_rank, dst_rank)
        path = self._pair_paths.get(key)
        if path is None:
            path = tuple(
                self.topology.shortest_path(
                    gpu_node_name(self.mesh.gpu_of(src_rank)),
                    gpu_node_name(self.mesh.gpu_of(dst_rank)),
                )
            )
            self._pair_paths[key] = path
        return path

    def begin_comm(
        self,
        operation: Operation,
        start_time: float,
        on_complete: CompletionCallback,
    ) -> None:
        """Inject ``operation``'s step schedule starting at ``start_time``.

        ``on_complete`` fires (possibly synchronously for degenerate empty
        schedules) with the collective's completion time once its last step
        drains.
        """
        assert operation.collective is not None
        steps = self._schedules.get(operation.collective.op_id)
        if steps is None:
            steps = expand(operation.collective)
            self._schedules[operation.collective.op_id] = steps
        _InFlightCollective(self, steps, on_complete).launch(start_time)

    @property
    def next_event_time(self) -> Optional[float]:
        """Time of the network's next event, or ``None`` when idle."""
        return self.simulator.engine.next_event_time

    def advance(self) -> bool:
        """Process one network event; returns ``False`` when idle."""
        return self.simulator.engine.step()


# --------------------------------------------------------------------------- #
# Per-fabric constructors
# --------------------------------------------------------------------------- #


def electrical_flow_network(
    cluster: ClusterSpec, mesh: DeviceMesh
) -> FlowNetworkModel:
    """Flow-level twin of the fully-connected electrical rail baseline."""
    return FlowNetworkModel(
        cluster, mesh, build_fully_connected_rail_topology(cluster)
    )


def fat_tree_flow_network(
    cluster: ClusterSpec, mesh: DeviceMesh, oversubscription: float = 1.0
) -> FlowNetworkModel:
    """Flow-level twin of the fat-tree fabric (optionally oversubscribed)."""
    fabric = build_fat_tree_fabric(cluster, oversubscription=oversubscription)
    return FlowNetworkModel(cluster, mesh, fabric.topology)


def rail_optimized_flow_network(
    cluster: ClusterSpec, mesh: DeviceMesh, always_spine: bool = True
) -> FlowNetworkModel:
    """Flow-level twin of the leaf/spine rail-optimized fabric."""
    fabric = build_rail_optimized_fabric(cluster, always_spine=always_spine)
    return FlowNetworkModel(cluster, mesh, fabric.topology)
