"""Fault injection: declarative fabric-fault plans applied as simulation events.

Real fabrics lose links, degrade optics, and straggle; this module makes those
conditions first-class scheduled events instead of hand-edited topologies.  A
:class:`FaultPlan` is a declarative, picklable list of timed
:class:`FaultEvent` entries — link failure / recovery, bandwidth degradation
to a fraction, OCS port failure, per-device compute slowdown — that every
fabric backend accepts through its ``faults=`` knob (and the ``repro-sim``
CLI through ``--fault-plan``).

A :class:`FaultInjector` binds one plan to one simulation and applies the
events in time order:

* **flow mode** — the network model schedules every event on the shared
  :class:`~repro.simulator.engine.SimulationEngine`, so a fault interrupts
  in-flight flows at its exact instant: the topology mutates, the version
  counter bumps (invalidating every route table and cache for free), and the
  :class:`~repro.simulator.flows.FlowSimulator` re-rates the affected
  component or re-routes/fails the flows whose paths died;
* **analytic mode** — the injector runs *inline*: the network model advances
  it to each collective's ready time before pricing, so degraded capacities
  and failed links reshape the bottleneck arithmetic from that instant on;
* **compute slowdowns** — pure time-indexed queries answered to the DAG
  executor, which stretches compute durations of the affected ranks.

Applied events are recorded as :class:`~repro.parallelism.trace.FaultRecord`
entries in the iteration trace, so fault timelines land next to the
communication and reconfiguration records they perturb.

Link events target links by ``fnmatch`` patterns over endpoint node names
(``src="edge.sw0", dst="agg.*"``) and/or by link kind (``link_kind="host"``);
matching is evaluated against the live topology when the event fires, and an
event that matches nothing raises :class:`~repro.errors.FaultError` — a
silent no-op fault is almost always a typo'd pattern.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from fnmatch import fnmatchcase
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ConfigurationError, FaultError
from ..parallelism.trace import FaultRecord
from ..topology.base import Link, Topology

LinkKey = Tuple[str, str, int]


class FaultKind(str, Enum):
    """The kind of fabric fault an event injects."""

    LINK_FAIL = "link_fail"
    LINK_DEGRADE = "link_degrade"
    LINK_RESTORE = "link_restore"
    OCS_PORT_FAIL = "ocs_port_fail"
    COMPUTE_SLOWDOWN = "compute_slowdown"


#: Event kinds that mutate topology links.
LINK_FAULT_KINDS = frozenset(
    {FaultKind.LINK_FAIL, FaultKind.LINK_DEGRADE, FaultKind.LINK_RESTORE}
)

#: Event kinds that mutate fabric state (links or OCS crossbars).
TOPOLOGY_FAULT_KINDS = LINK_FAULT_KINDS | {FaultKind.OCS_PORT_FAIL}


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the fault strikes.
    kind:
        What happens (see :class:`FaultKind`).
    src, dst:
        ``fnmatch`` patterns over the endpoint node names of the links to
        affect (link events only).  ``None`` matches anything; with
        ``bidirectional`` (the default) a link also matches with its
        endpoints swapped, so one event takes out both directions of a
        bidirectional link pair.
    link_kind:
        Optional :class:`~repro.topology.base.LinkKind` value filter
        (``"host"``, ``"electrical"``, ...) for link events.
    fraction:
        ``LINK_DEGRADE`` only: the remaining capacity fraction in ``(0, 1]``
        relative to the link's original bandwidth (``0.9`` = degraded by 10%,
        ``1.0`` = restored to full health).
    rail, port:
        ``OCS_PORT_FAIL`` only: the rail index and OCS port that dies.
    rank, factor:
        ``COMPUTE_SLOWDOWN`` only: the affected rank (``None`` = every rank)
        and the compute-duration multiplier (``>= 1``; ``1.0`` clears an
        earlier slowdown).  The latest event at or before a compute
        operation's start governs its ranks.
    """

    time: float
    kind: FaultKind
    src: Optional[str] = None
    dst: Optional[str] = None
    link_kind: Optional[str] = None
    bidirectional: bool = True
    fraction: Optional[float] = None
    rail: Optional[int] = None
    port: Optional[int] = None
    rank: Optional[int] = None
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("fault events cannot happen before t=0")
        kind = FaultKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if kind in LINK_FAULT_KINDS:
            if self.src is None and self.dst is None and self.link_kind is None:
                raise ConfigurationError(
                    f"{kind.value} event needs a target: src/dst patterns "
                    "and/or a link_kind filter"
                )
            if kind == FaultKind.LINK_DEGRADE:
                if self.fraction is None or not 0.0 < self.fraction <= 1.0:
                    raise ConfigurationError(
                        "link_degrade needs a fraction in (0, 1] "
                        f"(got {self.fraction!r})"
                    )
            elif self.fraction is not None:
                raise ConfigurationError(
                    f"{kind.value} does not take a fraction"
                )
        elif kind == FaultKind.OCS_PORT_FAIL:
            if self.rail is None or self.port is None:
                raise ConfigurationError(
                    "ocs_port_fail needs both a rail and a port"
                )
        elif kind == FaultKind.COMPUTE_SLOWDOWN:
            if self.factor is None or self.factor < 1.0:
                raise ConfigurationError(
                    f"compute_slowdown needs a factor >= 1 (got {self.factor!r})"
                )

    def describe(self) -> str:
        """Short human-readable target description for trace records."""
        if self.kind in LINK_FAULT_KINDS:
            parts = [f"{self.src or '*'}<->{self.dst or '*'}"]
            if self.link_kind is not None:
                parts.append(f"kind={self.link_kind}")
            if self.kind == FaultKind.LINK_DEGRADE:
                parts.append(f"fraction={self.fraction:g}")
            return " ".join(parts)
        if self.kind == FaultKind.OCS_PORT_FAIL:
            return f"rail{self.rail}.port{self.port}"
        target = "all ranks" if self.rank is None else f"rank{self.rank}"
        return f"{target} x{self.factor:g}"

    def matches_link(self, link: Link) -> bool:
        """Whether a link event's target patterns select ``link``."""
        if self.link_kind is not None and link.kind.value != self.link_kind:
            return False
        src_pat = self.src if self.src is not None else "*"
        dst_pat = self.dst if self.dst is not None else "*"
        if fnmatchcase(link.src, src_pat) and fnmatchcase(link.dst, dst_pat):
            return True
        if self.bidirectional:
            return fnmatchcase(link.src, dst_pat) and fnmatchcase(
                link.dst, src_pat
            )
        return False

    def to_dict(self) -> dict:
        """JSON-serializable representation (``None`` fields omitted)."""
        payload: Dict[str, object] = {"time": self.time, "kind": self.kind.value}
        for name in ("src", "dst", "link_kind", "fraction", "rail", "port", "rank", "factor"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if not self.bidirectional:
            payload["bidirectional"] = False
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        known = {
            "time", "kind", "src", "dst", "link_kind", "bidirectional",
            "fraction", "rail", "port", "rank", "factor",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault event fields {unknown}; known: {sorted(known)}"
            )
        if "time" not in data or "kind" not in data:
            raise ConfigurationError("a fault event needs 'time' and 'kind'")
        return cls(**data)


#: Values of :attr:`FaultPlan.on_link_fail`.
LINK_FAIL_POLICIES = ("fail", "reroute")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative list of timed fault events plus the failure policy.

    ``on_link_fail`` selects what happens to a flow whose path crosses a
    link the plan kills while the flow is pending or on the wire:
    ``"reroute"`` (the default) resolves a fresh route over the surviving
    fabric, ``"fail"`` raises :class:`~repro.errors.LinkFailedError`.

    A plan with no events is exactly equivalent to no plan at all — it is
    asserted bit-for-bit identical in the test suite.
    """

    events: Tuple[FaultEvent, ...] = ()
    on_link_fail: str = "reroute"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.on_link_fail not in LINK_FAIL_POLICIES:
            raise ConfigurationError(
                f"on_link_fail must be one of {LINK_FAIL_POLICIES}, "
                f"got {self.on_link_fail!r}"
            )

    @property
    def is_empty(self) -> bool:
        """Whether the plan carries no events (equivalent to no plan)."""
        return not self.events

    def kinds(self) -> FrozenSet[FaultKind]:
        """The distinct event kinds the plan contains."""
        return frozenset(event.kind for event in self.events)

    @property
    def has_link_events(self) -> bool:
        """Whether any event mutates topology links (incl. OCS port kills)."""
        return bool(self.kinds() & TOPOLOGY_FAULT_KINDS)

    def require_supported(
        self, supported: Iterable[FaultKind], context: str
    ) -> None:
        """Raise :class:`ConfigurationError` for event kinds ``context`` lacks."""
        unsupported = sorted(
            kind.value for kind in self.kinds() - frozenset(supported)
        )
        if unsupported:
            raise ConfigurationError(
                f"{context} does not support fault kinds {unsupported}; "
                f"supported: {sorted(k.value for k in supported)}"
            )

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "on_link_fail": self.on_link_fail,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        if not isinstance(data, dict) or "events" not in data:
            raise ConfigurationError(
                "a fault plan is a JSON object with an 'events' list "
                "(and an optional 'on_link_fail' policy)"
            )
        unknown = sorted(set(data) - {"events", "on_link_fail"})
        if unknown:
            # A typo'd policy key silently running with the default would
            # invert failure semantics; reject like FaultEvent.from_dict.
            raise ConfigurationError(
                f"unknown fault plan fields {unknown}; known: "
                "['events', 'on_link_fail']"
            )
        events = tuple(FaultEvent.from_dict(event) for event in data["events"])
        return cls(
            events=events,
            on_link_fail=data.get("on_link_fail", "reroute"),
        )

    def to_file(self, path: "Path | str") -> None:
        """Write the plan to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_file(cls, path: "Path | str") -> "FaultPlan":
        """Load a plan written by :meth:`to_file` (the CLI's ``--fault-plan``)."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read fault plan {path!r}: {exc}"
            ) from exc
        return cls.from_dict(data)


def as_fault_plan(value: object) -> FaultPlan:
    """Coerce a ``faults=`` knob value into a :class:`FaultPlan`.

    Accepts a plan, a :meth:`FaultPlan.to_dict`-shaped mapping, or a bare
    sequence of event dicts.
    """
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, dict):
        return FaultPlan.from_dict(value)
    if isinstance(value, (list, tuple)):
        return FaultPlan(
            events=tuple(
                event if isinstance(event, FaultEvent) else FaultEvent.from_dict(event)
                for event in value
            )
        )
    raise ConfigurationError(
        f"faults must be a FaultPlan, a plan dict, or a list of events; "
        f"got {type(value).__name__}"
    )


class FaultInjector:
    """Applies one :class:`FaultPlan` to one simulation, in time order.

    The owner (a network model) wires the hooks below and chooses the drive
    mode: ``inline=True`` (analytic models — :meth:`advance_to` is called
    with each collective's ready time) or engine-driven
    (:meth:`schedule_on`, used by the flow models so faults interrupt flows
    at their exact instant).  Either way every event is applied exactly once
    and produces one :class:`~repro.parallelism.trace.FaultRecord`.
    """

    def __init__(self, plan: FaultPlan, topology: Optional[Topology] = None) -> None:
        self.plan = plan
        self.topology = topology
        #: Whether the owner advances the injector inline (analytic mode)
        #: instead of scheduling events on a simulation engine (flow mode).
        self.inline = True
        #: Called after links were *failed* (removed from service) with their
        #: keys — the flow simulator re-routes or fails the flows riding them.
        self.on_links_failed: Optional[Callable[[List[LinkKey], float], None]] = None
        #: Called after link capacities changed (degrade/restore) with the
        #: affected keys — the flow simulator re-rates the touched components.
        self.on_links_changed: Optional[Callable[[List[LinkKey], float], None]] = None
        #: Called for OCS port failures; owners with a control plane tear the
        #: port's circuit, mark the port dead, and drop planner caches here.
        self.on_port_failed: Optional[Callable[[FaultEvent, float], None]] = None
        self._events: List[FaultEvent] = sorted(
            plan.events, key=lambda event: event.time
        )
        self._applied = [False] * len(self._events)
        self._records: List[FaultRecord] = []
        # Compute slowdowns are pure time-indexed queries (no state to
        # mutate): per-rank override lists plus the all-ranks default, each
        # sorted by time.  The latest matching event at or before a query
        # time wins; a rank-specific event overrides the global one only if
        # it is later.
        self._compute_events: List[FaultEvent] = [
            event
            for event in self._events
            if event.kind == FaultKind.COMPUTE_SLOWDOWN
        ]

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Number of events not applied yet."""
        return self._applied.count(False)

    def advance_to(self, time: float) -> None:
        """Apply every unapplied event with ``event.time <= time`` (inline mode)."""
        for index, event in enumerate(self._events):
            if event.time > time:
                break
            if not self._applied[index]:
                self._apply(index, event.time)

    def schedule_on(self, engine) -> None:
        """Schedule every unapplied event on a simulation engine (flow mode)."""
        self.inline = False
        for index, event in enumerate(self._events):
            if self._applied[index]:
                continue
            engine.schedule(
                max(event.time, engine.now), self._on_engine_event, index
            )

    def _on_engine_event(self, engine, index: int) -> None:
        # Engine callback: a bound method (not a closure) so a snapshot taken
        # while fault events are pending serializes — and a fork's events
        # apply to the fork's injector, not the parent's.
        self._apply(index, engine.now)

    def extend(self, events: Iterable[FaultEvent], engine=None) -> None:
        """Append later fault events to a live injector.

        This is how a forked simulation diverges from the shared prefix it
        was copied from: the branch keeps the prefix's already-applied (and
        pending) events and gains its own tail.  New events must not precede
        the existing plan's events — the injector's event list stays
        time-sorted, so the applied-event cursor semantics are unchanged.
        In engine-driven mode (``schedule_on`` was called) the owning engine
        must be passed so the new events get scheduled.
        """
        new = sorted(events, key=lambda event: event.time)
        if not new:
            return
        if self._events and new[0].time < self._events[-1].time:
            raise FaultError(
                f"extended fault events must not precede the installed "
                f"plan's events (new event at t={new[0].time:g}s, installed "
                f"plan ends at t={self._events[-1].time:g}s)"
            )
        base = len(self._events)
        self._events.extend(new)
        self._applied.extend([False] * len(new))
        self._compute_events = [
            event
            for event in self._events
            if event.kind == FaultKind.COMPUTE_SLOWDOWN
        ]
        self.plan = FaultPlan(
            events=tuple(self.plan.events) + tuple(new),
            on_link_fail=self.plan.on_link_fail,
        )
        if not self.inline:
            if engine is None:
                raise FaultError(
                    "an engine-driven injector needs the engine to schedule "
                    "extended events on"
                )
            for offset, event in enumerate(new):
                engine.schedule(
                    max(event.time, engine.now),
                    self._on_engine_event,
                    base + offset,
                )

    def pop_records(self) -> List[FaultRecord]:
        """Records of events applied since the last pop (for the trace)."""
        records = self._records
        self._records = []
        return records

    def compute_factor(self, ranks: Sequence[int], time: float) -> float:
        """Compute-duration multiplier for ``ranks`` at ``time`` (>= 1)."""
        factor = 1.0
        if not self._compute_events:
            return factor
        for rank in ranks:
            rank_factor = 1.0
            for event in self._compute_events:
                if event.time > time:
                    break
                if event.rank is None or event.rank == rank:
                    rank_factor = event.factor  # latest matching event wins
            if rank_factor > factor:
                factor = rank_factor
        return factor

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #

    def _apply(self, index: int, now: float) -> None:
        if self._applied[index]:
            return
        self._applied[index] = True
        event = self._events[index]
        num_links = 0
        if event.kind == FaultKind.LINK_FAIL:
            num_links = self._apply_link_fail(event, now)
        elif event.kind == FaultKind.LINK_DEGRADE:
            num_links = self._apply_link_change(event, now)
        elif event.kind == FaultKind.LINK_RESTORE:
            num_links = self._apply_link_restore(event, now)
        elif event.kind == FaultKind.OCS_PORT_FAIL:
            if self.on_port_failed is None:
                raise FaultError(
                    "this network model cannot apply OCS port failures"
                )
            self.on_port_failed(event, now)
        self._records.append(
            FaultRecord(
                time=now,
                kind=event.kind.value,
                target=event.describe(),
                num_links=num_links,
            )
        )

    def _require_topology(self, event: FaultEvent) -> Topology:
        if self.topology is None:
            raise FaultError(
                f"{event.kind.value} event needs a routed topology; this "
                "network model has none"
            )
        return self.topology

    def _matching_links(self, event: FaultEvent, links: Iterable[Link]) -> List[Link]:
        return [link for link in links if event.matches_link(link)]

    def _apply_link_fail(self, event: FaultEvent, now: float) -> int:
        topology = self._require_topology(event)
        victims = self._matching_links(event, topology.links())
        if not victims:
            raise FaultError(
                f"link_fail at t={event.time:g}s matched no installed link "
                f"({event.describe()})"
            )
        keys = [link.key for link in victims]
        for link in victims:
            topology.fail_link(link.link_id)
        if self.on_links_failed is not None:
            self.on_links_failed(keys, now)
        return len(victims)

    def _apply_link_change(self, event: FaultEvent, now: float) -> int:
        topology = self._require_topology(event)
        victims = self._matching_links(event, topology.links())
        if not victims:
            raise FaultError(
                f"link_degrade at t={event.time:g}s matched no installed "
                f"link ({event.describe()})"
            )
        keys = [link.key for link in victims]
        for link in victims:
            topology.degrade_link(link.link_id, event.fraction)
        if self.on_links_changed is not None:
            self.on_links_changed(keys, now)
        return len(victims)

    def _apply_link_restore(self, event: FaultEvent, now: float) -> int:
        topology = self._require_topology(event)
        failed = self._matching_links(event, topology.failed_links())
        degraded = self._matching_links(event, topology.degraded_links())
        if not failed and not degraded:
            raise FaultError(
                f"link_restore at t={event.time:g}s matched no failed or "
                f"degraded link ({event.describe()})"
            )
        keys = [link.key for link in failed + degraded]
        for link in failed:
            topology.restore_link(link.link_id)
        for link in degraded:
            topology.degrade_link(link.link_id, 1.0)
        if self.on_links_changed is not None:
            self.on_links_changed(keys, now)
        return len(failed) + len(degraded)
