"""Minimal discrete-event engine used by the flow-level simulator.

The engine is a time-ordered priority queue of events with stable FIFO
ordering among events scheduled for the same instant.  It is deliberately
small: the DAG executor uses list scheduling (it needs resource reasoning, not
arbitrary events), and only the fluid flow simulator drives this queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """One scheduled event: a callback invoked at ``time`` with ``payload``."""

    time: float
    callback: Callable[["SimulationEngine", Any], None]
    payload: Any = None
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when dequeued."""
        self.cancelled = True


class SimulationEngine:
    """A time-ordered event queue with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """The current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self,
        time: float,
        callback: Callable[["SimulationEngine", Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback(engine, payload)`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event = Event(time=time, callback=callback, payload=payload)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._sequence), event))
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[["SimulationEngine", Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule(self._now + delay, callback, payload)

    def step(self) -> bool:
        """Execute the next non-cancelled event; return False when idle."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.event.cancelled:
                continue
            self._now = entry.time
            entry.event.callback(self, entry.event.payload)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or ``until`` / ``max_events`` is hit).

        Returns the simulation time when the run stopped.
        """
        executed = 0
        while self._queue:
            next_time = self._queue[0].time
            if until is not None and next_time > until:
                self._now = until
                break
            if not self.step():
                break
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exceeded; likely a runaway loop"
                )
        return self._now
