"""Minimal discrete-event engine used by the flow-level simulator.

The engine is a time-ordered priority queue of events with stable FIFO
ordering among events scheduled for the same instant.  It is deliberately
small: the DAG executor uses list scheduling (it needs resource reasoning, not
arbitrary events), and only the fluid flow simulator drives this queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from .snapshot import SimState, Snapshottable, decode_callback, encode_callback


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """One scheduled event: a callback invoked at ``time`` with ``payload``."""

    time: float
    callback: Callable[["SimulationEngine", Any], None]
    payload: Any = None
    cancelled: bool = False
    #: Set by the owning engine so it can keep its live-event count accurate.
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when dequeued."""
        if not self.cancelled:
            self.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()


class SimulationEngine(Snapshottable):
    """A time-ordered event queue with a monotonically advancing clock.

    The engine is snapshottable: its state (heap, clock, sequence counter,
    processed/cancelled counters) captures into a :class:`SimState` and
    restores bit-for-bit.  Pending event callbacks must be bound methods of
    objects inside the captured graph or module-level functions registered
    via :func:`~repro.simulator.snapshot.register_continuation`; raw
    closures are rejected at snapshot/fork time (see ``snapshot.py``).
    """

    def __init__(self) -> None:
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0

    def _note_cancel(self) -> None:
        self._cancelled += 1

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict:
        # Events are flattened to plain tuples with callbacks run through the
        # continuation encoder; _on_cancel (always this engine's bound
        # _note_cancel) is dropped and rewired on restore.
        entries = [
            (
                entry.time,
                entry.sequence,
                encode_callback(entry.event.callback),
                entry.event.payload,
                entry.event.cancelled,
            )
            for entry in self._queue
        ]
        return {
            "entries": entries,
            "sequence": self._sequence,
            "now": self._now,
            "processed": self._processed,
            "cancelled": self._cancelled,
        }

    def __setstate__(self, state: dict) -> None:
        self._queue = []
        for time, sequence, callback, payload, cancelled in state["entries"]:
            event = Event(
                time=time,
                callback=decode_callback(callback),
                payload=payload,
                cancelled=cancelled,
                _on_cancel=None if cancelled else self._note_cancel,
            )
            # The entries were serialized in heap order, so appending
            # preserves the heap invariant without a heapify pass.
            self._queue.append(_QueueEntry(time, sequence, event))
        self._sequence = state["sequence"]
        self._now = state["now"]
        self._processed = state["processed"]
        self._cancelled = state["cancelled"]

    @property
    def now(self) -> float:
        """The current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Cancelled events stay in the heap until they surface (removing them
        eagerly would be O(n) per cancel), but they are invisible here so
        callers checking for outstanding work are not misled.
        """
        self._purge_cancelled_head()
        return len(self._queue) - self._cancelled

    @property
    def next_event_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when the queue is idle."""
        self._purge_cancelled_head()
        return self._queue[0].time if self._queue else None

    def _purge_cancelled_head(self) -> None:
        """Drop cancelled events sitting at the top of the heap."""
        while self._queue and self._queue[0].event.cancelled:
            heapq.heappop(self._queue)
            self._cancelled -= 1

    def schedule(
        self,
        time: float,
        callback: Callable[["SimulationEngine", Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback(engine, payload)`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event = Event(
            time=time, callback=callback, payload=payload, _on_cancel=self._note_cancel
        )
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._queue, _QueueEntry(time, sequence, event))
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[["SimulationEngine", Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule(self._now + delay, callback, payload)

    def step(self) -> bool:
        """Execute the next non-cancelled event; return False when idle."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.event.cancelled:
                self._cancelled -= 1
                continue
            # The event leaves the queue here: a late cancel() (the common
            # "cancel a possibly-fired timeout" pattern) must no longer touch
            # the live-event counter.
            entry.event._on_cancel = None
            self._now = entry.time
            entry.event.callback(self, entry.event.payload)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or ``until`` / ``max_events`` is hit).

        Returns the simulation time when the run stopped.
        """
        executed = 0
        while self._queue:
            next_time = self.next_event_time
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if not self.step():
                break
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exceeded; likely a runaway loop"
                )
        if until is not None and until > self._now:
            # The clock advances to `until` whether the loop stopped at a
            # later event, drained the queue, or never entered (empty queue):
            # an idle or restored engine reports the time it was run to, not
            # a stale instant.  An `until` in the past never rewinds time.
            self._now = until
        return self._now
