"""Hardware device profiles used by the photonic-rails reproduction.

This module is the single place where per-device constants live: GPUs,
scale-up domains (DGX/HGX/GB200 NVL72), NICs, optical transceivers, electrical
packet switches, and the optical circuit switch (OCS) technologies the paper
surveys in Table 3.

The cost and power constants are *calibrated estimates* assembled from public
price lists and datasheets referenced by the paper ([15, 16, 44, 48, 53]); the
paper itself does not publish absolute per-device numbers.  The Fig. 7
reproduction depends on the *counting methodology* (how many of each device a
fabric needs), and the constants here only set the scale of the y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..units import GBPS, MILLISECONDS, TFLOPS


# --------------------------------------------------------------------------- #
# GPUs
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class GPUSpec:
    """A GPU accelerator model.

    Attributes
    ----------
    name:
        Marketing name (e.g. ``"H200"``).
    peak_flops:
        Peak dense throughput in FLOP/s for the training precision assumed by
        the compute-time model (BF16 with FP32 accumulate, no sparsity).
    memory_bytes:
        HBM capacity in bytes.
    memory_bandwidth:
        HBM bandwidth in bytes/second.
    nvlink_bandwidth:
        Per-GPU aggregate NVLink (scale-up) bandwidth, bytes/second,
        unidirectional.
    nic_bandwidth:
        Per-GPU scale-out (backend network) bandwidth, bytes/second,
        unidirectional — one 400 Gbps NIC per GPU in DGX H100/H200 systems.
    """

    name: str
    peak_flops: float
    memory_bytes: float
    memory_bandwidth: float
    nvlink_bandwidth: float
    nic_bandwidth: float


A100_40GB = GPUSpec(
    name="A100-40GB",
    peak_flops=312 * TFLOPS,
    memory_bytes=40e9,
    memory_bandwidth=1.555e12,
    nvlink_bandwidth=300e9,
    nic_bandwidth=200 * GBPS,
)

A100_80GB = GPUSpec(
    name="A100-80GB",
    peak_flops=312 * TFLOPS,
    memory_bytes=80e9,
    memory_bandwidth=2.039e12,
    nvlink_bandwidth=300e9,
    nic_bandwidth=200 * GBPS,
)

H100 = GPUSpec(
    name="H100",
    peak_flops=989 * TFLOPS,
    memory_bytes=80e9,
    memory_bandwidth=3.35e12,
    nvlink_bandwidth=450e9,
    nic_bandwidth=400 * GBPS,
)

H200 = GPUSpec(
    name="H200",
    peak_flops=989 * TFLOPS,
    memory_bytes=141e9,
    memory_bandwidth=4.8e12,
    nvlink_bandwidth=450e9,
    nic_bandwidth=400 * GBPS,
)

B200 = GPUSpec(
    name="B200",
    peak_flops=2250 * TFLOPS,
    memory_bytes=192e9,
    memory_bandwidth=8.0e12,
    nvlink_bandwidth=900e9,
    nic_bandwidth=400 * GBPS,
)

GPU_CATALOG: Dict[str, GPUSpec] = {
    spec.name: spec for spec in (A100_40GB, A100_80GB, H100, H200, B200)
}


# --------------------------------------------------------------------------- #
# Scale-up domains
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScaleUpDomainSpec:
    """A scale-up (high-bandwidth) domain: one DGX/HGX node or NVL72 rack.

    The number of GPUs per scale-up domain equals the number of rails in a
    rail-optimized fabric built from these domains (paper §2.1).
    """

    name: str
    gpu: GPUSpec
    gpus_per_domain: int
    #: Effective per-GPU bandwidth of the scale-up interconnect for collective
    #: traffic (bytes/s, unidirectional).  NVSwitch within a node is assumed
    #: non-blocking.
    interconnect_bandwidth: float
    #: Fixed per-hop latency of the scale-up interconnect, seconds.
    interconnect_latency: float = 2e-6

    def __post_init__(self) -> None:
        if self.gpus_per_domain <= 0:
            raise ConfigurationError(
                f"scale-up domain {self.name!r} must contain at least one GPU"
            )


DGX_H200 = ScaleUpDomainSpec(
    name="DGX-H200",
    gpu=H200,
    gpus_per_domain=8,
    interconnect_bandwidth=450e9,
)

DGX_H100 = ScaleUpDomainSpec(
    name="DGX-H100",
    gpu=H100,
    gpus_per_domain=8,
    interconnect_bandwidth=450e9,
)

DGX_A100 = ScaleUpDomainSpec(
    name="DGX-A100",
    gpu=A100_80GB,
    gpus_per_domain=8,
    interconnect_bandwidth=300e9,
)

#: The Perlmutter GPU nodes used for the paper's §3.1 trace: 4× A100-40GB per
#: node, NVLink 3.0, Slingshot-11 scale-out (4× 200 Gbps NICs per node).
PERLMUTTER_NODE = ScaleUpDomainSpec(
    name="Perlmutter-A100",
    gpu=A100_40GB,
    gpus_per_domain=4,
    interconnect_bandwidth=300e9,
)

GB200_NVL72 = ScaleUpDomainSpec(
    name="GB200-NVL72",
    gpu=B200,
    gpus_per_domain=72,
    interconnect_bandwidth=900e9,
)

SCALEUP_CATALOG: Dict[str, ScaleUpDomainSpec] = {
    spec.name: spec
    for spec in (DGX_H200, DGX_H100, DGX_A100, PERLMUTTER_NODE, GB200_NVL72)
}


# --------------------------------------------------------------------------- #
# NICs
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class NICPortConfig:
    """One logical port configuration of a scale-out NIC.

    The ConnectX-7 400G adapter (paper §3, [44, 48]) can be split into one
    400 Gbps port, two 200 Gbps ports, or four 100 Gbps ports.  The number of
    logical ports bounds the number of *simultaneous* optical circuits a GPU
    can terminate, i.e. its node degree in the photonic rail.
    """

    num_ports: int
    port_bandwidth: float

    @property
    def total_bandwidth(self) -> float:
        """Aggregate NIC bandwidth across all logical ports (bytes/s)."""
        return self.num_ports * self.port_bandwidth


@dataclass(frozen=True)
class NICSpec:
    """A scale-out NIC model with its supported port configurations."""

    name: str
    total_bandwidth: float
    port_configs: Tuple[NICPortConfig, ...]

    def config_with_ports(self, num_ports: int) -> NICPortConfig:
        """Return the port configuration exposing ``num_ports`` logical ports."""
        for config in self.port_configs:
            if config.num_ports == num_ports:
                return config
        supported = sorted(c.num_ports for c in self.port_configs)
        raise ConfigurationError(
            f"NIC {self.name!r} has no {num_ports}-port configuration; "
            f"supported: {supported}"
        )


CONNECTX7 = NICSpec(
    name="ConnectX-7",
    total_bandwidth=400 * GBPS,
    port_configs=(
        NICPortConfig(num_ports=1, port_bandwidth=400 * GBPS),
        NICPortConfig(num_ports=2, port_bandwidth=200 * GBPS),
        NICPortConfig(num_ports=4, port_bandwidth=100 * GBPS),
    ),
)

NIC_CATALOG: Dict[str, NICSpec] = {CONNECTX7.name: CONNECTX7}


# --------------------------------------------------------------------------- #
# Transceivers and electrical switches (cost / power constants for Fig. 7)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TransceiverSpec:
    """A pluggable optical transceiver (one fiber end)."""

    name: str
    bandwidth: float
    cost_dollars: float
    power_watts: float


#: 400GBASE-DR4/XDR4 QSFP-DD module (paper reference [15]).
TRANSCEIVER_400G = TransceiverSpec(
    name="400G-QSFP-DD",
    bandwidth=400 * GBPS,
    cost_dollars=550.0,
    power_watts=9.0,
)


@dataclass(frozen=True)
class ElectricalSwitchSpec:
    """An electrical packet switch (e.g. Tomahawk-4 based 64×400GbE, [16])."""

    name: str
    radix: int
    port_bandwidth: float
    cost_dollars: float
    power_watts: float


TOMAHAWK4_64X400G = ElectricalSwitchSpec(
    name="Tomahawk4-64x400G",
    radix=64,
    port_bandwidth=400 * GBPS,
    cost_dollars=26_000.0,
    power_watts=1_747.0,
)


# --------------------------------------------------------------------------- #
# Optical circuit switch technologies (paper Table 3)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class OCSTechnology:
    """An optical circuit switch technology surveyed in the paper's Table 3.

    Attributes
    ----------
    name:
        Technology family (e.g. ``"3D MEMS"``).
    vendor:
        Example vendor the paper cites.
    reconfiguration_time:
        Time to tear down and set up circuits, in seconds.
    radix:
        Number of duplex ports.
    cost_per_port:
        Estimated cost per port, dollars.
    power_per_port:
        Estimated power per port, watts.  OCSes have no per-packet processing
        so this is orders of magnitude below electrical switch ports.
    """

    name: str
    vendor: str
    reconfiguration_time: float
    radix: int
    cost_per_port: float = 300.0
    power_per_port: float = 0.15

    def max_gpus(self, scaleup: ScaleUpDomainSpec, nic_ports_per_gpu: int = 2) -> int:
        """Maximum GPU count of a photonic rail fabric built from this OCS.

        Reproduces Table 3's scaling rule: with the 2-port NIC configuration
        and bidirectional transceivers, each GPU terminates
        ``nic_ports_per_gpu`` ports on its rail OCS, so each rail can span
        ``radix / nic_ports_per_gpu`` scale-up domains and the fabric holds
        ``gpus_per_domain * radix / nic_ports_per_gpu`` GPUs.
        """
        if nic_ports_per_gpu <= 0:
            raise ConfigurationError("nic_ports_per_gpu must be positive")
        return scaleup.gpus_per_domain * (self.radix // nic_ports_per_gpu)


PLZT_EPIPHOTONICS = OCSTechnology(
    name="PLZT",
    vendor="EpiPhotonics",
    reconfiguration_time=0.00001 * MILLISECONDS,
    radix=16,
)

SIP_LIGHTMATTER = OCSTechnology(
    name="SiP",
    vendor="Lightmatter",
    reconfiguration_time=0.007 * MILLISECONDS,
    radix=32,
)

ROTORNET_INFOCUS = OCSTechnology(
    name="RotorNet",
    vendor="InFocus",
    reconfiguration_time=0.01 * MILLISECONDS,
    radix=128,
)

MEMS_3D_CALIENT = OCSTechnology(
    name="3D MEMS",
    vendor="Calient",
    reconfiguration_time=15 * MILLISECONDS,
    radix=320,
)

PIEZO_POLATIS = OCSTechnology(
    name="Piezo",
    vendor="Polatis",
    reconfiguration_time=25 * MILLISECONDS,
    radix=576,
)

LIQUID_CRYSTAL_COHERENT = OCSTechnology(
    name="Liquid crystal",
    vendor="Coherent",
    reconfiguration_time=100 * MILLISECONDS,
    radix=512,
)

ROBOTIC_TELESCENT = OCSTechnology(
    name="Robotic",
    vendor="Telescent",
    reconfiguration_time=120_000 * MILLISECONDS,
    radix=1008,
)

#: The Table 3 rows, in the paper's order.
OCS_TECHNOLOGIES: Tuple[OCSTechnology, ...] = (
    PLZT_EPIPHOTONICS,
    SIP_LIGHTMATTER,
    ROTORNET_INFOCUS,
    MEMS_3D_CALIENT,
    PIEZO_POLATIS,
    LIQUID_CRYSTAL_COHERENT,
    ROBOTIC_TELESCENT,
)

OCS_CATALOG: Dict[str, OCSTechnology] = {tech.name: tech for tech in OCS_TECHNOLOGIES}


# --------------------------------------------------------------------------- #
# Cluster specification
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ClusterSpec:
    """A GPU cluster: a number of identical scale-up domains plus NIC choice.

    This is the hardware-side input to topology builders, the cost/power
    models, and the simulator.
    """

    scaleup: ScaleUpDomainSpec
    num_domains: int
    nic: NICSpec = CONNECTX7
    nic_ports_per_gpu: int = 1
    transceiver: TransceiverSpec = TRANSCEIVER_400G
    electrical_switch: ElectricalSwitchSpec = TOMAHAWK4_64X400G
    ocs: OCSTechnology = PIEZO_POLATIS

    def __post_init__(self) -> None:
        if self.num_domains <= 0:
            raise ConfigurationError("a cluster needs at least one scale-up domain")
        if self.nic_ports_per_gpu not in {c.num_ports for c in self.nic.port_configs}:
            raise ConfigurationError(
                f"NIC {self.nic.name!r} does not support a "
                f"{self.nic_ports_per_gpu}-port configuration"
            )

    @property
    def num_gpus(self) -> int:
        """Total number of GPUs in the cluster."""
        return self.num_domains * self.scaleup.gpus_per_domain

    @property
    def num_rails(self) -> int:
        """Number of rails (= GPUs per scale-up domain, paper §2.1)."""
        return self.scaleup.gpus_per_domain

    @property
    def nic_port_config(self) -> NICPortConfig:
        """The active NIC port configuration."""
        return self.nic.config_with_ports(self.nic_ports_per_gpu)

    @property
    def scaleout_port_bandwidth(self) -> float:
        """Bandwidth of one scale-out NIC port (bytes/s)."""
        return self.nic_port_config.port_bandwidth

    def gpu_id(self, domain: int, local_rank: int) -> int:
        """Return the global GPU id of ``local_rank`` within ``domain``."""
        if not 0 <= domain < self.num_domains:
            raise ConfigurationError(f"domain {domain} out of range")
        if not 0 <= local_rank < self.scaleup.gpus_per_domain:
            raise ConfigurationError(f"local rank {local_rank} out of range")
        return domain * self.scaleup.gpus_per_domain + local_rank

    def domain_of(self, gpu_id: int) -> int:
        """Return the scale-up domain index hosting ``gpu_id``."""
        self._check_gpu(gpu_id)
        return gpu_id // self.scaleup.gpus_per_domain

    def local_rank_of(self, gpu_id: int) -> int:
        """Return the local rank (= rail index) of ``gpu_id`` inside its domain."""
        self._check_gpu(gpu_id)
        return gpu_id % self.scaleup.gpus_per_domain

    def rail_of(self, gpu_id: int) -> int:
        """Return the rail a GPU attaches to (identical to its local rank)."""
        return self.local_rank_of(gpu_id)

    def gpus_on_rail(self, rail: int) -> Tuple[int, ...]:
        """Return the global ids of all GPUs attached to ``rail``."""
        if not 0 <= rail < self.num_rails:
            raise ConfigurationError(f"rail {rail} out of range")
        return tuple(
            self.gpu_id(domain, rail) for domain in range(self.num_domains)
        )

    def _check_gpu(self, gpu_id: int) -> None:
        if not 0 <= gpu_id < self.num_gpus:
            raise ConfigurationError(
                f"GPU id {gpu_id} out of range for cluster of {self.num_gpus}"
            )


def perlmutter_testbed(num_nodes: int = 4) -> ClusterSpec:
    """The 4-node Perlmutter testbed used for the paper's §3.1 trace study."""
    return ClusterSpec(scaleup=PERLMUTTER_NODE, num_domains=num_nodes)


def dgx_h200_cluster(num_gpus: int, nic_ports_per_gpu: int = 1) -> ClusterSpec:
    """A DGX H200 cluster with ``num_gpus`` GPUs (must be a multiple of 8)."""
    gpus_per_domain = DGX_H200.gpus_per_domain
    if num_gpus % gpus_per_domain != 0:
        raise ConfigurationError(
            f"num_gpus must be a multiple of {gpus_per_domain}, got {num_gpus}"
        )
    return ClusterSpec(
        scaleup=DGX_H200,
        num_domains=num_gpus // gpus_per_domain,
        nic_ports_per_gpu=nic_ports_per_gpu,
    )
