"""Generic topology graph used by all fabric builders.

A :class:`Topology` is a directed multigraph of named nodes and unidirectional
:class:`Link` objects.  GPUs, NIC ports, electrical switches, and OCS ports are
all nodes; the per-fabric builders (`railopt`, `fattree`, `photonic`,
`scaleup`) decide how to wire them.

Two features matter for the rest of the library:

* **capacity accounting** — each link knows its bandwidth and propagation
  latency; the flow-level simulator shares link bandwidth among concurrent
  flows.
* **routing** — ``shortest_path`` provides hop-by-hop routes for packet
  fabrics; circuit fabrics install explicit circuits instead (see
  :mod:`repro.topology.photonic`).

Circuit fabrics mutate their topology *during* simulation (installing and
tearing optical circuits), so the graph carries a :attr:`Topology.version`
counter that is bumped on every link change.  Consumers that cache anything
derived from connectivity (per-pair routes, group link parameters) key their
caches on the version instead of assuming a static graph.
"""

from __future__ import annotations

import copy
import pickle
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import SnapshotError, TopologyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.snapshot import SimState


_NATURAL_SPLIT = re.compile(r"(\d+)")


def _natural_key(name: str) -> Tuple:
    """Sort key that orders embedded integers numerically (``sw2`` < ``sw10``).

    Route searches expand neighbors in this order, so tie-breaking is a
    property of the node *names* rather than of dict insertion order — two
    topologies with the same nodes and links route identically no matter how
    they were built.  Numeric runs compare as integers so the order matches
    the index order every fabric builder already adds nodes in.
    """
    parts = _NATURAL_SPLIT.split(name)
    return tuple(int(part) if part.isdigit() else part for part in parts)


class NodeKind(str, Enum):
    """The role a topology node plays in the fabric."""

    GPU = "gpu"
    NIC_PORT = "nic_port"
    ELECTRICAL_SWITCH = "electrical_switch"
    OCS = "ocs"
    NVSWITCH = "nvswitch"


class LinkKind(str, Enum):
    """The medium / tier a link belongs to."""

    SCALE_UP = "scale_up"
    HOST = "host"
    ELECTRICAL = "electrical"
    OPTICAL_CIRCUIT = "optical_circuit"


@dataclass(frozen=True)
class Node:
    """A vertex of the fabric graph."""

    name: str
    kind: NodeKind
    #: Free-form attributes (e.g. ``{"gpu_id": 12, "rail": 3}``).
    attrs: Dict[str, object] = field(default_factory=dict, compare=False, hash=False)


@dataclass
class Link:
    """A unidirectional link between two nodes.

    Attributes
    ----------
    src, dst:
        Endpoint node names.
    bandwidth:
        Capacity in bytes/second.
    latency:
        Propagation plus fixed per-hop processing latency, seconds.
    kind:
        Medium / tier of the link.
    link_id:
        Unique integer assigned by the owning topology.
    """

    src: str
    dst: str
    bandwidth: float
    latency: float
    kind: LinkKind
    link_id: int = -1
    #: A hashable identity for the link, precomputed because the flow-level
    #: simulator reads it on every allocation pass (``src``, ``dst`` and
    #: ``link_id`` are fixed at construction).
    key: Tuple[str, str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise TopologyError(
                f"link {self.src}->{self.dst} must have positive bandwidth"
            )
        if self.latency < 0:
            raise TopologyError(
                f"link {self.src}->{self.dst} must have non-negative latency"
            )
        self.key = (self.src, self.dst, self.link_id)


class Topology:
    """A directed multigraph of nodes and links with simple routing helpers."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[int, Link] = {}
        self._graph = nx.MultiDiGraph()
        # Plain int rather than itertools.count so id allocation is explicit
        # snapshot state (a count object cannot be rewound or compared).
        self._link_counter = 0
        self._version = 0
        #: Flattened routing adjacency (node -> [(neighbor, link), ...]) with
        #: parallel links pre-resolved to min link_id; rebuilt lazily when
        #: the version moves.  A whole-fabric BFS visits every edge, so the
        #: per-edge cost of the multigraph's nested dicts dominates at 10k
        #: endpoints without this.
        self._routing_adjacency: Optional[Dict[str, List[Tuple[str, Link]]]] = None
        self._routing_adjacency_version = -1
        #: Natural-sorted successor/predecessor name lists for the search
        #: routines, rebuilt lazily when the version moves.
        self._search_succ: Optional[Dict[str, List[str]]] = None
        self._search_pred: Optional[Dict[str, List[str]]] = None
        self._search_adjacency_version = -1
        #: Links taken out of service by fault injection, restorable by id.
        self._failed_links: Dict[int, Link] = {}
        #: Original bandwidth of links currently degraded below capacity.
        self._original_bandwidth: Dict[int, float] = {}

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every link change.

        Route caches built on top of this topology (see
        :meth:`repro.simulator.flow_network.FlowNetworkModel.path_between`)
        compare the version they were built at against the current one instead
        of assuming the graph is static — circuit fabrics add and remove
        ``OPTICAL_CIRCUIT`` links while a simulation is running.
        """
        return self._version

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_node(self, name: str, kind: NodeKind, **attrs: object) -> Node:
        """Add a node; re-adding an existing name raises :class:`TopologyError`."""
        if name in self._nodes:
            raise TopologyError(f"node {name!r} already exists in {self.name!r}")
        node = Node(name=name, kind=kind, attrs=dict(attrs))
        self._nodes[name] = node
        self._graph.add_node(name, kind=kind, **attrs)
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        bandwidth: float,
        latency: float,
        kind: LinkKind,
    ) -> Link:
        """Add a unidirectional link from ``src`` to ``dst``."""
        self._require_node(src)
        self._require_node(dst)
        link_id = self._link_counter
        self._link_counter = link_id + 1
        link = Link(
            src=src,
            dst=dst,
            bandwidth=bandwidth,
            latency=latency,
            kind=kind,
            link_id=link_id,
        )
        self._links[link.link_id] = link
        self._graph.add_edge(src, dst, key=link.link_id, link=link)
        self._version += 1
        return link

    def add_bidirectional_link(
        self,
        a: str,
        b: str,
        bandwidth: float,
        latency: float,
        kind: LinkKind,
    ) -> Tuple[Link, Link]:
        """Add a pair of opposite unidirectional links between ``a`` and ``b``."""
        forward = self.add_link(a, b, bandwidth, latency, kind)
        backward = self.add_link(b, a, bandwidth, latency, kind)
        return forward, backward

    def remove_link(self, link_id: int) -> None:
        """Remove a link by id (used when tearing down optical circuits)."""
        link = self._links.pop(link_id, None)
        if link is None:
            raise TopologyError(f"link id {link_id} does not exist")
        self._graph.remove_edge(link.src, link.dst, key=link_id)
        self._original_bandwidth.pop(link_id, None)
        self._version += 1

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #

    def fail_link(self, link_id: int) -> Link:
        """Take a link out of service, remembering it for :meth:`restore_link`.

        Unlike :meth:`remove_link` (a permanent tear-down), a failed link
        keeps its :class:`Link` object registered under ``link_id`` so it can
        be restored with its identity — and so consumers holding a route over
        it can distinguish "failed" (:meth:`link_failed`) from "never
        existed".  Bumps the topology version, which invalidates every
        version-keyed route table and cache.
        """
        link = self._links.pop(link_id, None)
        if link is None:
            raise TopologyError(f"link id {link_id} does not exist")
        self._graph.remove_edge(link.src, link.dst, key=link_id)
        self._failed_links[link_id] = link
        self._version += 1
        return link

    def restore_link(self, link_id: int) -> Link:
        """Return a previously failed link to service (same id and object)."""
        link = self._failed_links.pop(link_id, None)
        if link is None:
            raise TopologyError(f"link id {link_id} is not failed")
        self._links[link_id] = link
        self._graph.add_edge(link.src, link.dst, key=link_id, link=link)
        self._version += 1
        return link

    def link_failed(self, link_id: int) -> bool:
        """Whether ``link_id`` is currently failed (out of service but known)."""
        return link_id in self._failed_links

    def failed_links(self) -> List[Link]:
        """Every currently failed link."""
        return list(self._failed_links.values())

    def degrade_link(self, link_id: int, fraction: float) -> Link:
        """Scale a link's capacity to ``fraction`` of its *original* bandwidth.

        ``fraction`` must be in ``(0, 1]``; repeated degradations compose
        against the original capacity (not each other), and ``fraction=1.0``
        restores the link to full health.  Bumps the topology version so the
        analytic models' group parameters and the flow-level route tables
        recompute from the degraded capacity.
        """
        if not 0.0 < fraction <= 1.0:
            raise TopologyError(
                f"degrade fraction must be in (0, 1], got {fraction!r}"
            )
        link = self.link(link_id)
        original = self._original_bandwidth.setdefault(link_id, link.bandwidth)
        link.bandwidth = original * fraction
        if fraction == 1.0:
            del self._original_bandwidth[link_id]
        self._version += 1
        return link

    def link_degradation(self, link_id: int) -> float:
        """The remaining capacity fraction of a link (1.0 when healthy).

        Answers for failed links too: a link can be degraded *and* failed,
        and it keeps its degraded capacity across fail/restore cycles.
        """
        link = self._links.get(link_id) or self._failed_links.get(link_id)
        if link is None:
            raise TopologyError(f"link id {link_id} does not exist")
        original = self._original_bandwidth.get(link_id)
        return 1.0 if original is None else link.bandwidth / original

    def degraded_links(self) -> List[Link]:
        """Every link currently running below its original capacity.

        Includes degraded links that are currently *failed* — their reduced
        capacity survives a restore, so consumers undoing degradations must
        see them.
        """
        return [
            self._links.get(link_id) or self._failed_links[link_id]
            for link_id in self._original_bandwidth
        ]

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #

    @property
    def snapshot_kind(self) -> str:
        return "Topology"

    def snapshot(self) -> "SimState":
        """Capture the link *health* state (failures, degradations).

        A topology snapshot is deliberately lightweight: it records which
        links are failed and every link's current bandwidth, not the graph
        structure.  That makes it only valid for fabrics whose link set is
        fixed for the life of the run (electrical fat-trees, rail-optimized
        fabrics under fault injection).  Circuit fabrics add and tear
        optical links mid-run; they are captured through the full session
        snapshot instead, which pickles the whole object graph.
        """
        from ..simulator.snapshot import SimState

        bandwidth = {link.link_id: link.bandwidth for link in self._links.values()}
        bandwidth.update(
            (link.link_id, link.bandwidth) for link in self._failed_links.values()
        )
        payload = {
            "structure": frozenset(bandwidth),
            "failed": frozenset(self._failed_links),
            "bandwidth": bandwidth,
            "original": dict(self._original_bandwidth),
            "link_counter": self._link_counter,
            "version": self._version,
        }
        return SimState(
            kind=self.snapshot_kind,
            payload=pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def restore(self, state: "SimState") -> None:
        """Reapply a captured health state onto this topology's own links.

        Restoring preserves :class:`Link` object identity — consumers holding
        references to this topology's links (route caches, installed flow
        paths) see the snapshot's bandwidths through the objects they already
        hold.  The version counter is *not* rewound: it moves strictly
        forward past both the live and the captured value, so any cache keyed
        on a version between the snapshot and now is invalidated rather than
        spuriously revalidated.
        """
        state.require(self.snapshot_kind)
        payload = pickle.loads(state.payload)
        current = frozenset(self._links) | frozenset(self._failed_links)
        if payload["structure"] != current:
            raise SnapshotError(
                f"topology {self.name!r} has a different link set than the "
                "snapshot; structurally dynamic (circuit) fabrics must be "
                "restored through the owning session, not link-by-link"
            )
        failed = payload["failed"]
        for link_id in sorted(frozenset(self._failed_links) - failed):
            self.restore_link(link_id)
        for link_id in sorted(failed - frozenset(self._failed_links)):
            self.fail_link(link_id)
        for link_id, bandwidth in payload["bandwidth"].items():
            link = self._links.get(link_id) or self._failed_links[link_id]
            link.bandwidth = bandwidth
        self._original_bandwidth = dict(payload["original"])
        self._link_counter = max(self._link_counter, payload["link_counter"])
        self._version = max(self._version, payload["version"]) + 1
        self._routing_adjacency = None
        self._routing_adjacency_version = -1
        self._search_succ = None
        self._search_pred = None
        self._search_adjacency_version = -1

    def fork(self) -> "Topology":
        """An independent deep copy (links, graph, and health state)."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def node(self, name: str) -> Node:
        """Return the node called ``name``."""
        self._require_node(name)
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        """Return whether a node called ``name`` exists."""
        return name in self._nodes

    def link(self, link_id: int) -> Link:
        """Return the link with id ``link_id``."""
        if link_id not in self._links:
            raise TopologyError(f"link id {link_id} does not exist")
        return self._links[link_id]

    def has_link(self, link_id: int) -> bool:
        """Return whether a link with id ``link_id`` is currently installed.

        Torn-down circuit links keep their ``Link`` objects alive in whoever
        still holds a reference, so flow-level consumers use this to detect
        routes that reference links no longer part of the fabric.
        """
        return link_id in self._links

    def nodes(self, kind: Optional[NodeKind] = None) -> List[Node]:
        """Return all nodes, optionally filtered by kind."""
        if kind is None:
            return list(self._nodes.values())
        return [node for node in self._nodes.values() if node.kind == kind]

    def links(self, kind: Optional[LinkKind] = None) -> List[Link]:
        """Return all links, optionally filtered by kind."""
        if kind is None:
            return list(self._links.values())
        return [link for link in self._links.values() if link.kind == kind]

    def links_between(self, src: str, dst: str) -> List[Link]:
        """Return every link from ``src`` to ``dst`` (may be empty)."""
        if not self._graph.has_edge(src, dst):
            return []
        return [data["link"] for data in self._graph[src][dst].values()]

    def out_links(self, node: str) -> List[Link]:
        """Return all links leaving ``node``."""
        self._require_node(node)
        return [
            data["link"]
            for _, _, data in self._graph.out_edges(node, data=True)
        ]

    def in_links(self, node: str) -> List[Link]:
        """Return all links entering ``node``."""
        self._require_node(node)
        return [
            data["link"]
            for _, _, data in self._graph.in_edges(node, data=True)
        ]

    def degree(self, node: str) -> int:
        """Return the number of outgoing links of ``node``."""
        return len(self.out_links(node))

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the topology."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Number of unidirectional links in the topology."""
        return len(self._links)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def shortest_path(self, src: str, dst: str) -> List[Link]:
        """Return one minimum-hop path from ``src`` to ``dst`` as a link list.

        Ties are broken deterministically as a property of the graph itself:
        the bidirectional search visits neighbors in natural-sorted name
        order (see :func:`_natural_key`), and parallel links between one node
        pair resolve to the smallest ``link_id``.  Raises
        :class:`TopologyError` if no path exists.

        The search runs over flattened, version-cached neighbor lists — it
        is on the route-resolution hot path of the flow-level simulator,
        where the networkx view wrappers would dominate.
        """
        self._require_node(src)
        self._require_node(dst)
        if src == dst:
            return []
        graph_succ, graph_pred = self._search_lists()
        # Bidirectional BFS, same expansion policy as networkx's
        # bidirectional_shortest_path except for the sorted neighbor order.
        pred: Dict[str, Optional[str]] = {src: None}
        succ: Dict[str, Optional[str]] = {dst: None}
        forward_fringe = [src]
        reverse_fringe = [dst]
        meet: Optional[str] = None
        while forward_fringe and reverse_fringe and meet is None:
            if len(forward_fringe) <= len(reverse_fringe):
                this_level = forward_fringe
                forward_fringe = []
                for node in this_level:
                    for neighbor in graph_succ[node]:
                        if neighbor not in pred:
                            forward_fringe.append(neighbor)
                            pred[neighbor] = node
                        if neighbor in succ:
                            meet = neighbor
                            break
                    if meet is not None:
                        break
            else:
                this_level = reverse_fringe
                reverse_fringe = []
                for node in this_level:
                    for neighbor in graph_pred[node]:
                        if neighbor not in succ:
                            succ[neighbor] = node
                            reverse_fringe.append(neighbor)
                        if neighbor in pred:
                            meet = neighbor
                            break
                    if meet is not None:
                        break
        if meet is None:
            raise TopologyError(f"no path from {src!r} to {dst!r}")
        node_path: List[str] = []
        cursor: Optional[str] = meet
        while cursor is not None:
            node_path.append(cursor)
            cursor = pred[cursor]
        node_path.reverse()
        cursor = succ[meet]
        while cursor is not None:
            node_path.append(cursor)
            cursor = succ[cursor]
        adjacency = self._graph._adj
        links: List[Link] = []
        for hop_src, hop_dst in zip(node_path, node_path[1:]):
            edges = adjacency[hop_src][hop_dst]
            if len(edges) == 1:
                (data,) = edges.values()
            else:
                data = edges[min(edges)]
            links.append(data["link"])
        return links

    def paths_from(
        self, src: str, dsts: Optional[Iterable[str]] = None
    ) -> Dict[str, List[Link]]:
        """Minimum-hop routes from ``src`` to many destinations in one BFS.

        Returns a mapping of destination node name to link path for every
        requested destination that is reachable (all reachable nodes when
        ``dsts`` is ``None``); unreachable destinations are simply absent, so
        callers decide whether that is an error.  The search terminates as
        soon as every requested destination has been settled, and parallel
        links between a node pair are broken by minimum ``link_id`` exactly
        like :meth:`shortest_path`.  This is the bulk primitive behind the
        network models' route tables: resolving a source's entire destination
        set (e.g. one AllToAll participant's ``n - 1`` peers) costs one
        traversal instead of ``n - 1``.
        """
        self._require_node(src)
        targets: Optional[set] = None
        result: Dict[str, List[Link]] = {}
        if dsts is not None:
            targets = set(dsts)
            if src in targets:
                result[src] = []
                targets.discard(src)
            if not targets:
                return result
        adjacency = self._routing_lists()
        parent: Dict[str, Tuple[str, Link]] = {src: ("", None)}  # type: ignore[dict-item]
        frontier = [src]
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for neighbor, link in adjacency[node]:
                    if neighbor in parent:
                        continue
                    parent[neighbor] = (node, link)
                    next_frontier.append(neighbor)
                    if targets is not None:
                        targets.discard(neighbor)
            if targets is not None and not targets:
                break
            frontier = next_frontier
        wanted = (
            (name for name in parent if name != src)
            if dsts is None
            else (name for name in dsts if name in parent and name != src)
        )
        for name in wanted:
            path: List[Link] = []
            node = name
            while node != src:
                node, link = parent[node]
                path.append(link)
            path.reverse()
            result[name] = path
        return result

    def _routing_lists(self) -> Dict[str, List[Tuple[str, Link]]]:
        """The flattened, version-cached adjacency used by route searches.

        Neighbor lists are natural-sorted so BFS parent selection — and with
        it every tie-break in :meth:`paths_from` — depends only on node
        names, never on the order links happened to be added.
        """
        if (
            self._routing_adjacency is None
            or self._routing_adjacency_version != self._version
        ):
            adjacency: Dict[str, List[Tuple[str, Link]]] = {
                name: [] for name in self._nodes
            }
            for node, neighbors in self._graph._adj.items():
                out = adjacency[node]
                for neighbor in sorted(neighbors, key=_natural_key):
                    edges = neighbors[neighbor]
                    if len(edges) == 1:
                        (data,) = edges.values()
                    else:
                        data = edges[min(edges)]
                    out.append((neighbor, data["link"]))
            self._routing_adjacency = adjacency
            self._routing_adjacency_version = self._version
        return self._routing_adjacency

    def _search_lists(self) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
        """Natural-sorted successor/predecessor name lists, version-cached."""
        if (
            self._search_succ is None
            or self._search_adjacency_version != self._version
        ):
            self._search_succ = {
                name: sorted(neighbors, key=_natural_key)
                for name, neighbors in self._graph._succ.items()
            }
            self._search_pred = {
                name: sorted(neighbors, key=_natural_key)
                for name, neighbors in self._graph._pred.items()
            }
            self._search_adjacency_version = self._version
        assert self._search_pred is not None
        return self._search_succ, self._search_pred

    def equal_cost_paths(
        self, src: str, dst: str, max_paths: Optional[int] = None
    ) -> List[Tuple[Link, ...]]:
        """Every minimum-hop path from ``src`` to ``dst``, in a stable order.

        The equal-cost set is enumerated from the shortest-path DAG (an edge
        ``u -> v`` lies on a minimum-hop path iff
        ``dist(src, u) + 1 + dist(v, dst)`` equals the shortest distance),
        walking neighbors in natural-sorted order so the result — including
        which paths survive a ``max_paths`` truncation — is a deterministic
        function of the graph.  Parallel links between a node pair resolve to
        the smallest ``link_id`` exactly like :meth:`shortest_path`, so only
        distinct node sequences count as distinct paths.  Raises
        :class:`TopologyError` if no path exists; ``src == dst`` yields the
        single empty path.

        This is the path-set primitive behind the multipath routing policies
        (ECMP hashing, adaptive least-congested choice, spray): their
        determinism rests on this ordering being stable across runs and
        insertion orders.
        """
        self._require_node(src)
        self._require_node(dst)
        if src == dst:
            return [()]
        succ, pred = self._search_lists()
        dist_forward: Dict[str, int] = {src: 0}
        frontier = [src]
        depth = 0
        while frontier and dst not in dist_forward:
            depth += 1
            next_frontier: List[str] = []
            for node in frontier:
                for neighbor in succ[node]:
                    if neighbor not in dist_forward:
                        dist_forward[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        if dst not in dist_forward:
            raise TopologyError(f"no path from {src!r} to {dst!r}")
        total = dist_forward[dst]
        dist_back: Dict[str, int] = {dst: 0}
        frontier = [dst]
        depth = 0
        while frontier and depth < total:
            depth += 1
            next_frontier = []
            for node in frontier:
                for neighbor in pred[node]:
                    if neighbor not in dist_back:
                        dist_back[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        adjacency = self._routing_lists()
        paths: List[Tuple[Link, ...]] = []
        stack: List[Link] = []

        def descend(node: str, remaining: int) -> bool:
            if remaining == 0:
                paths.append(tuple(stack))
                return max_paths is not None and len(paths) >= max_paths
            for neighbor, link in adjacency[node]:
                if dist_back.get(neighbor) == remaining - 1:
                    stack.append(link)
                    if descend(neighbor, remaining - 1):
                        return True
                    stack.pop()
            return False

        descend(src, total)
        return paths

    def path_latency(self, path: Sequence[Link]) -> float:
        """Sum of link latencies along ``path``."""
        return sum(link.latency for link in path)

    def path_bottleneck_bandwidth(self, path: Sequence[Link]) -> float:
        """Minimum link bandwidth along ``path`` (``inf`` for an empty path)."""
        if not path:
            return float("inf")
        return min(link.bandwidth for link in path)

    def connected(self, src: str, dst: str) -> bool:
        """Return whether a directed path from ``src`` to ``dst`` exists."""
        self._require_node(src)
        self._require_node(dst)
        return nx.has_path(self._graph, src, dst)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> nx.MultiDiGraph:
        """Return a copy of the underlying networkx graph."""
        return self._graph.copy()

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )

    def _require_node(self, name: str) -> None:
        if name not in self._nodes:
            raise TopologyError(f"node {name!r} does not exist in {self.name!r}")


def gpu_node_name(gpu_id: int) -> str:
    """Canonical node name for a GPU."""
    return f"gpu{gpu_id}"


def nic_port_node_name(gpu_id: int, port: int) -> str:
    """Canonical node name for one logical NIC port of a GPU."""
    return f"gpu{gpu_id}.nic{port}"


def switch_node_name(tier: str, index: int) -> str:
    """Canonical node name for an electrical switch (e.g. ``rail0.leaf2``)."""
    return f"{tier}.sw{index}"


def ocs_node_name(rail: int, index: int = 0) -> str:
    """Canonical node name for a rail OCS."""
    return f"rail{rail}.ocs{index}"
